//! The paper's second application: person-mention extraction from news
//! articles (structured prediction over unstructured text, §3).
//!
//! Walks the feature-engineering loop a data scientist would — as one
//! named session over a shared engine: start with lexical features only,
//! then progressively wire in context, gazetteer, and shape features,
//! watching F1 climb while Helix reuses the expensive text pre-processing
//! (sentence splitting, tokenization, candidate extraction) across every
//! iteration.
//!
//! ```text
//! cargo run --release --example information_extraction
//! ```

use helix::baselines::SystemKind;
use helix::core::session::Session;
use helix::workloads::ie::{ie_workflow, IeParams};
use helix::workloads::news::{generate_news, NewsDataSpec};

fn main() {
    let dir = std::env::temp_dir().join("helix-ie-example");
    let spec = NewsDataSpec {
        docs: 600,
        ..Default::default()
    };
    let data = generate_news(&dir, &spec).expect("generate corpus");
    println!(
        "generated {} news documents with {} gold person mentions\n",
        spec.docs, data.mentions
    );

    let _ = std::fs::remove_dir_all(dir.join("store"));
    let engine = SystemKind::Helix
        .build_shared(&dir.join("store"))
        .expect("engine");
    let mut params = IeParams::initial(&dir);
    params.metrics = vec![
        helix::core::ops::MetricKind::F1,
        helix::core::ops::MetricKind::Precision,
        helix::core::ops::MetricKind::Recall,
    ];

    type Step<'a> = (&'a str, Box<dyn Fn(&mut IeParams)>);
    let steps: Vec<Step> = vec![
        ("lexical features only", Box::new(|_| {})),
        ("+ context words", Box::new(|p| p.feat_context = true)),
        (
            "+ gazetteer membership",
            Box::new(|p| p.feat_gazetteer = true),
        ),
        ("+ word shapes", Box::new(|p| p.feat_shape = true)),
        ("+ honorific-title cue", Box::new(|p| p.feat_title = true)),
    ];

    let mut session = Session::new(
        engine,
        "ie-analyst",
        ie_workflow(&params).expect("workflow"),
    );
    println!(
        "{:<28} {:>7} {:>10} {:>8} {:>9} {:>8}",
        "feature set", "F1", "precision", "recall", "runtime", "reuse"
    );
    for (i, (label, apply)) in steps.iter().enumerate() {
        apply(&mut params);
        if i > 0 {
            session.replace_workflow(ie_workflow(&params).expect("workflow"));
        }
        let report = session.iterate().expect("run");
        println!(
            "{:<28} {:>7.3} {:>10.3} {:>8.3} {:>8.3}s {:>7.0}%",
            label,
            report.metric("f1").unwrap_or(0.0),
            report.metric("precision").unwrap_or(0.0),
            report.metric("recall").unwrap_or(0.0),
            report.total_secs,
            report.reuse_rate() * 100.0
        );
    }

    println!(
        "\nEvery iteration after the first reuses the sentence-splitting,\n\
         tokenization, and candidate-extraction results from disk — only the\n\
         newly wired feature extractor and the learner run."
    );
    println!("\nBest version by F1:");
    if let Some(best) = session.versions().best_by_metric("f1") {
        println!(
            "  version {} (F1 = {:.3}): {}",
            best.id,
            best.metrics
                .iter()
                .find(|(m, _)| m == "f1")
                .map(|(_, v)| *v)
                .unwrap_or(0.0),
            best.change_summary
        );
    }
}
