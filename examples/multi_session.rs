//! Multi-tenant serving smoke: three analysts iterate **concurrently** as
//! named sessions over one shared engine, each applying a different typed
//! edit, while the engine's sharded store lets them reuse each other's
//! materialized intermediates and the atomic budget ledger keeps the
//! storage budget intact.
//!
//! CI runs this (at every parallelism matrix setting) as the runtime
//! proof that `Engine::run` really is `&self`: the three `iterate` calls
//! overlap in time on plain `std::thread` workers with no outer locking.
//!
//! ```text
//! cargo run --release --example multi_session
//! ```

use helix::core::ops::{EvalSpec, MetricKind, OperatorKind};
use helix::core::session::{LearnerParam, SessionHandle, SessionManager};
use helix::core::{Engine, EngineConfig};
use helix::workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use std::sync::Arc;

/// One analyst's script: a cold iteration, a typed edit, an edited rerun.
fn drive(session: &SessionHandle, edit: impl FnOnce(&SessionHandle)) {
    let name = session.name();
    let first = session.iterate().expect("first iteration");
    edit(session);
    let second = session.iterate().expect("second iteration");
    println!("[{name}] iter 0: {}", first.summary());
    println!(
        "[{name}] iter 1: {}  (edit: {})",
        second.summary(),
        second.change_summary
    );
    assert!(
        first.metric("accuracy").is_some(),
        "{name} lost its metrics"
    );
}

fn main() {
    let dir = std::env::temp_dir().join("helix-multi-session-example");
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 3_000,
            test_rows: 800,
            ..Default::default()
        },
    )
    .expect("generate data");

    let _ = std::fs::remove_dir_all(dir.join("store"));
    let engine = Arc::new(Engine::new(EngineConfig::helix(dir.join("store"))).expect("engine"));
    let manager = SessionManager::new(Arc::clone(&engine));

    let params = CensusParams::initial(&dir);
    let workflow = || census_workflow(&params).expect("workflow");

    // Each analyst's second iteration applies a different typed edit.
    let alice = manager.create("alice", workflow()).expect("session");
    let bob = manager.create("bob", workflow()).expect("session");
    let carol = manager.create("carol", workflow()).expect("session");

    println!("driving 3 concurrent sessions over one shared engine…\n");
    std::thread::scope(|scope| {
        scope.spawn(|| {
            drive(&alice, |s| {
                s.set_learner_param("predictions", LearnerParam::RegParam(0.02))
                    .expect("edit")
            })
        });
        scope.spawn(|| {
            drive(&bob, |s| {
                s.set_learner_param("predictions", LearnerParam::Epochs(6))
                    .expect("edit")
            })
        });
        scope.spawn(|| {
            drive(&carol, |s| {
                s.replace_operator(
                    "checked",
                    OperatorKind::Evaluate(EvalSpec {
                        metrics: vec![MetricKind::F1, MetricKind::Accuracy],
                        split: helix::core::SPLIT_TEST.into(),
                    }),
                )
                .expect("edit")
            })
        });
    });

    // A fourth analyst joining *after* the burst starts from a warm
    // store: the first iteration of the same program is nearly all loads.
    let dave = manager.create("dave", workflow()).expect("session");
    let warm = dave.iterate().expect("warm start");
    println!("\n[dave] warm first iteration: {}", warm.summary());
    assert!(
        warm.loaded() > 0,
        "a new session must reuse the intermediates its peers materialized"
    );

    let history = engine.with_versions(|v| v.len());
    assert_eq!(history, 7, "3 sessions × 2 iterations + dave's warm start");
    let used = engine.store().used_bytes();
    let budget = engine.store().budget_bytes();
    assert!(used <= budget, "budget violated: {used} > {budget}");
    println!(
        "\nglobal history: {history} versions from {} sessions; store {used} / {budget} bytes",
        manager.len()
    );
    println!("multi-session smoke OK");
}
