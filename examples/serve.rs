//! Serve Helix sessions over HTTP: the remote-analyst front end.
//!
//! Binds the [`helix::server`] front end over one shared engine with the
//! census workflow registered as a template, prints copy-pasteable
//! `curl` commands (the same ones documented in `docs/API.md`), and
//! serves until interrupted.
//!
//! ```text
//! cargo run --release --example serve                   # ephemeral port
//! HELIX_SERVE_ADDR=127.0.0.1:7878 cargo run --release --example serve
//! cargo run --release --example serve -- --demo         # CI smoke: self-drive, then exit
//! ```
//!
//! With `--demo`, the process also acts as its own remote analyst: it
//! drives the create → edit → iterate → history loop through the client
//! module over real sockets, prints what the wire returned, and shuts
//! the server down — the runtime smoke CI runs at every parallelism
//! setting.

use helix::core::{Engine, EngineConfig, SessionManager};
use helix::server::client;
use helix::server::routes::{Api, WorkflowRegistry};
use helix::server::server::{Server, ServerConfig};
use helix::workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use std::sync::Arc;

fn main() {
    let demo = std::env::args().any(|a| a == "--demo");
    let dir = std::env::temp_dir().join("helix-serve-example");
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 3_000,
            test_rows: 800,
            ..Default::default()
        },
    )
    .expect("generate data");

    // Durability comes from HELIX_DURABILITY (default: volatile). A
    // volatile store is wiped for a clean demo; a durable one is kept so
    // a restarted server resumes every session below.
    let config = EngineConfig::from_env(dir.join("store"));
    if !config.durability.is_durable() {
        let _ = std::fs::remove_dir_all(dir.join("store"));
    }
    let engine = Arc::new(Engine::new(config).expect("engine"));
    let manager = Arc::new(SessionManager::new(engine));
    let mut registry = WorkflowRegistry::new();
    let params = CensusParams::initial(&dir);
    registry.register("census", move || census_workflow(&params));

    let api = Api::new(manager, registry);
    let recovered = api.recover_sessions();
    if recovered > 0 {
        println!("recovered {recovered} durable session(s) from a previous run");
    }

    let addr = std::env::var("HELIX_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:0".into());
    let mut server =
        Server::bind(addr.as_str(), api, ServerConfig::default()).expect("bind server");
    let addr = server.addr();

    println!("helix-server listening on http://{addr}");
    println!("registered workflow templates: census\n");
    println!("try it (full protocol in docs/API.md):");
    println!("  curl http://{addr}/healthz");
    println!(
        "  curl -X POST http://{addr}/sessions -d '{{\"name\":\"alice\",\"workflow\":\"census\"}}'"
    );
    println!("  curl -X POST http://{addr}/sessions/alice/iterate");
    println!("  curl -X POST http://{addr}/sessions/alice/edits \\");
    println!("       -d '{{\"kind\":\"set_learner_param\",\"learner\":\"predictions\",\"param\":\"reg_param\",\"value\":0.01}}'");
    println!("  curl -X POST http://{addr}/sessions/alice/iterate");
    println!("  curl http://{addr}/sessions/alice/versions");
    println!("  curl 'http://{addr}/sessions/alice/diff?from=0&to=1'");

    if demo {
        println!("\n--demo: driving the analyst loop over the wire…\n");
        run_demo(addr);
        server.shutdown();
        println!("server drained and shut down; demo OK");
        return;
    }

    println!("\nserving; Ctrl-C to stop");
    loop {
        std::thread::park();
    }
}

/// One remote analyst's loop, entirely over sockets.
fn run_demo(addr: std::net::SocketAddr) {
    let created = client::post(addr, "/sessions", r#"{"name":"alice","workflow":"census"}"#)
        .expect("create")
        .expect_ok();
    println!("created session: {created}");

    let first = client::post(addr, "/sessions/alice/iterate", "")
        .expect("iterate")
        .expect_ok();
    println!(
        "iteration 0: total {:.3}s, computed {}, metrics {}",
        first.get("total_secs").unwrap().as_f64().unwrap(),
        first.get("computed").unwrap().as_u64().unwrap(),
        first.get("metrics").unwrap()
    );

    let edit =
        r#"{"kind":"set_learner_param","learner":"predictions","param":"reg_param","value":0.01}"#;
    let pending = client::post(addr, "/sessions/alice/edits", edit)
        .expect("edit")
        .expect_ok();
    println!("recorded edit: {pending}");

    let second = client::post(addr, "/sessions/alice/iterate", "")
        .expect("iterate")
        .expect_ok();
    let loaded = second.get("loaded").unwrap().as_u64().unwrap();
    println!(
        "iteration 1: total {:.3}s, loaded {loaded}, reuse {:.0}%  ({})",
        second.get("total_secs").unwrap().as_f64().unwrap(),
        second.get("reuse_rate").unwrap().as_f64().unwrap() * 100.0,
        second.get("change_summary").unwrap().as_str().unwrap(),
    );
    assert!(
        loaded > 0,
        "the ML-only edit must reuse materialized pre-processing"
    );

    let versions = client::get(addr, "/sessions/alice/versions")
        .expect("versions")
        .expect_ok();
    let count = versions.get("versions").unwrap().as_array().unwrap().len();
    println!("version history: {count} entries");
    assert_eq!(count, 2);

    let diff = client::get(addr, "/sessions/alice/diff?from=0&to=1")
        .expect("diff")
        .expect_ok();
    println!("diff v0→v1: {diff}");

    let closed = client::delete(addr, "/sessions/alice")
        .expect("close")
        .expect_ok();
    println!("closed: {closed}");
}
