//! The paper's Census application (Fig. 1a), including the Fig. 1b
//! optimized-plan visualization after the paper's exact iterative edit:
//! `+ msExt` (add the marital-status extractor to `has_extractors`).
//!
//! The edit is applied the way a session user applies it: the `ms`
//! extractor is already declared (the program slicer prunes it while
//! unwired), so "adding" it is one typed `rewire` of the `income` node on
//! the live workflow — no rebuilding.
//!
//! ```text
//! cargo run --release --example census
//! ```

use helix::baselines::SystemKind;
use helix::core::session::SessionManager;
use helix::core::viz;
use helix::workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};

fn main() {
    let dir = std::env::temp_dir().join("helix-census-example");
    let spec = CensusDataSpec {
        train_rows: 8_000,
        test_rows: 2_000,
        ..Default::default()
    };
    generate_census(&dir, &spec).expect("generate census data");
    println!(
        "generated {} train / {} test census rows\n",
        spec.train_rows, spec.test_rows
    );

    let _ = std::fs::remove_dir_all(dir.join("store"));
    let engine = SystemKind::Helix
        .build_shared(&dir.join("store"))
        .expect("engine");
    let manager = SessionManager::new(engine);

    // Version 1: the paper's initial program.
    let params = CensusParams::initial(&dir);
    let session = manager
        .create("analyst", census_workflow(&params).expect("workflow v1"))
        .expect("session");
    let r1 = session.iterate().expect("run v1");
    println!("v1: {}", r1.summary());
    println!("v1 accuracy = {:?}\n", r1.metric("accuracy"));

    // Version 2: the paper's `+ msExt` edit (Fig. 1a, line 14) — wire the
    // declared-but-unused marital-status extractor into `income`. The
    // parent list is derived from the live workflow (current parents with
    // `ms` slotted in ahead of the trailing label column) so the example
    // stays in lockstep with `census_workflow`'s wiring.
    let mut parents: Vec<String> = session.with(|s| {
        let w = s.workflow();
        let income = w.by_name("income").expect("income node");
        w.node(income)
            .parents
            .iter()
            .map(|&p| w.node(p).name.clone())
            .collect()
    });
    let label = parents.pop().expect("income has a label parent");
    parents.push("ms".to_string());
    parents.push(label);
    let parent_refs: Vec<&str> = parents.iter().map(String::as_str).collect();
    session.rewire("income", &parent_refs).expect("+msExt edit");
    let r2 = session.iterate().expect("run v2");
    println!("v2 (+msExt): {}", r2.summary());
    println!("v2 accuracy = {:?}\n", r2.metric("accuracy"));

    // Fig. 1b: the optimized execution plan for the modified workflow —
    // loaded nodes marked [disk→], newly materialized [→disk], pruned
    // operators grayed out.
    println!("=== optimized plan for v2 (Fig. 1b) ===");
    session.with(|s| println!("{}", viz::ascii_plan(s.workflow(), &r2)));

    // Graphviz output for the DAG pane.
    let annotations: Vec<viz::NodeAnnotation> = r2
        .nodes
        .iter()
        .map(|n| viz::NodeAnnotation {
            state: Some(n.state),
            materialized: n.materialized,
        })
        .collect();
    let dot_path = dir.join("census_v2.dot");
    let dot = session.with(|s| viz::to_dot(s.workflow(), Some(&annotations)));
    std::fs::write(&dot_path, dot).expect("write dot");
    println!("wrote {} (render with `dot -Tsvg`)\n", dot_path.display());

    // Version comparison (Fig. 3's diff view) from the session's own
    // lineage; the recorded change is the typed edit itself.
    let diff = session
        .with(|s| s.versions().diff(0, 1))
        .expect("both versions exist");
    println!("=== version 1 → 2 diff ===\n{}", viz::diff_text(&diff));
    let change = session.with(|s| s.versions().get(1).unwrap().change_summary.clone());
    println!("recorded edit: {change}");
}
