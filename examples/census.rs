//! The paper's Census application (Fig. 1a), including the Fig. 1b
//! optimized-plan visualization after the paper's exact iterative edit:
//! `+ msExt` (add the marital-status extractor to `has_extractors`).
//!
//! ```text
//! cargo run --release --example census
//! ```

use helix::baselines::SystemKind;
use helix::core::viz;
use helix::workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};

fn main() {
    let dir = std::env::temp_dir().join("helix-census-example");
    let spec = CensusDataSpec {
        train_rows: 8_000,
        test_rows: 2_000,
        ..Default::default()
    };
    generate_census(&dir, &spec).expect("generate census data");
    println!(
        "generated {} train / {} test census rows\n",
        spec.train_rows, spec.test_rows
    );

    let _ = std::fs::remove_dir_all(dir.join("store"));
    let mut engine = SystemKind::Helix
        .build_engine(&dir.join("store"))
        .expect("engine");

    // Version 1: the paper's initial program.
    let mut params = CensusParams::initial(&dir);
    let v1 = census_workflow(&params).expect("workflow v1");
    let r1 = engine.run(&v1).expect("run v1");
    println!("v1: {}", r1.summary());
    println!("v1 accuracy = {:?}\n", r1.metric("accuracy"));

    // Version 2: the paper's `+ msExt` edit (Fig. 1a, line 14).
    params.include_marital_status = true;
    let v2 = census_workflow(&params).expect("workflow v2");
    let r2 = engine.run(&v2).expect("run v2");
    println!("v2 (+msExt): {}", r2.summary());
    println!("v2 accuracy = {:?}\n", r2.metric("accuracy"));

    // Fig. 1b: the optimized execution plan for the modified workflow —
    // loaded nodes marked [disk→], newly materialized [→disk], pruned
    // operators grayed out.
    println!("=== optimized plan for v2 (Fig. 1b) ===");
    println!("{}", viz::ascii_plan(&v2, &r2));

    // Graphviz output for the DAG pane.
    let annotations: Vec<viz::NodeAnnotation> = r2
        .nodes
        .iter()
        .map(|n| viz::NodeAnnotation {
            state: Some(n.state),
            materialized: n.materialized,
        })
        .collect();
    let dot_path = dir.join("census_v2.dot");
    std::fs::write(&dot_path, viz::to_dot(&v2, Some(&annotations))).expect("write dot");
    println!("wrote {} (render with `dot -Tsvg`)\n", dot_path.display());

    // Version comparison (Fig. 3's diff view).
    let diff = engine.versions().diff(0, 1).expect("both versions exist");
    println!("=== version 1 → 2 diff ===\n{}", viz::diff_text(&diff));
}
