//! Quickstart: open a session on a shared engine, run the workflow, turn
//! one typed knob, run again, and watch Helix reuse everything the change
//! did not touch.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use helix::core::ops::{EvalSpec, ExtractorKind, LearnerSpec, MetricKind};
use helix::core::session::{LearnerParam, SessionManager};
use helix::core::workflow::Workflow;
use helix::core::{Engine, EngineConfig};
use std::sync::Arc;

fn build_workflow(dir: &std::path::Path, reg_param: f64) -> Workflow {
    use helix::dataflow::DataType;
    let mut w = Workflow::new("quickstart");
    // data refers_to FileSource(train, test)
    let data = w
        .csv_source("data", dir.join("train.csv"), Some(dir.join("test.csv")))
        .expect("source");
    // data is_read_into rows using CSVScanner(...)
    let rows = w
        .csv_scanner(
            "rows",
            &data,
            &[
                ("color", DataType::Str),
                ("size", DataType::Int),
                ("target", DataType::Int),
            ],
        )
        .expect("scanner");
    let color = w
        .field_extractor("color", &rows, "color", ExtractorKind::Categorical)
        .unwrap();
    let size = w
        .field_extractor("size", &rows, "size", ExtractorKind::Numeric)
        .unwrap();
    let size_bucket = w.bucketizer("sizeBucket", &size, 4).unwrap();
    let target = w
        .field_extractor("target", &rows, "target", ExtractorKind::Numeric)
        .unwrap();
    // examples results_from rows with_labels target
    let examples = w
        .assemble("examples", &rows, &[&color, &size_bucket], &target)
        .unwrap();
    // predictions results_from Learner(logreg, regParam) on examples
    let predictions = w
        .learner(
            "predictions",
            &examples,
            LearnerSpec {
                reg_param,
                ..Default::default()
            },
        )
        .unwrap();
    let checked = w
        .evaluate(
            "checked",
            &predictions,
            EvalSpec {
                metrics: vec![MetricKind::Accuracy, MetricKind::F1],
                ..Default::default()
            },
        )
        .unwrap();
    w.output(&predictions);
    w.output(&checked);
    w
}

fn main() {
    // Tiny synthetic dataset: red things are positive.
    let dir = std::env::temp_dir().join("helix-quickstart");
    std::fs::create_dir_all(&dir).unwrap();
    let mut train = String::new();
    let mut test = String::new();
    for i in 0..600 {
        let (color, label) = if i % 2 == 0 { ("red", 1) } else { ("blue", 0) };
        let line = format!("{color},{},{label}\n", i % 50);
        if i < 500 {
            train.push_str(&line);
        } else {
            test.push_str(&line);
        }
    }
    std::fs::write(dir.join("train.csv"), train).unwrap();
    std::fs::write(dir.join("test.csv"), test).unwrap();

    let _ = std::fs::remove_dir_all(dir.join("store"));
    // One shared engine (any number of sessions could run over it — see
    // examples/multi_session.rs); one named session for this analyst.
    let engine = Arc::new(Engine::new(EngineConfig::helix(dir.join("store"))).expect("engine"));
    let manager = SessionManager::new(engine);
    let session = manager
        .create("analyst", build_workflow(&dir, 0.1))
        .expect("session");

    println!("--- iteration 0: initial version ---");
    let report = session.iterate().expect("run");
    println!("{}", report.summary());
    println!("accuracy = {:?}\n", report.metric("accuracy"));

    println!("--- iteration 1: change regularization (ML-only change) ---");
    // The human-in-the-loop edit is one typed knob turn on the live
    // workflow — no rebuilding, and the version history records the edit.
    session
        .set_learner_param("predictions", LearnerParam::RegParam(0.01))
        .expect("edit");
    let report = session.iterate().expect("run");
    println!("{}", report.summary());
    for node in &report.nodes {
        println!(
            "  {:<18} {:?}{}",
            node.name,
            node.state,
            if node.materialized { "  [→disk]" } else { "" }
        );
    }
    println!(
        "\nNote: pre-processing nodes were loaded or pruned — only the model\n\
         retrained, exactly the behaviour the Helix paper promises for\n\
         \"changing the regularization parameter\" (§1)."
    );

    println!("\n--- iteration 2: identical rerun (everything reused) ---");
    let report = session.iterate().expect("run");
    println!("{}", report.summary());
    println!(
        "\nVersion history:\n{}",
        session.with(|s| helix::core::viz::version_log(s.versions()))
    );
}
