//! The active-learning loop over the Census application: rank the test
//! predictions the model is least sure about, have the ground-truth
//! oracle label a fresh batch, append the labels to the training split as
//! a durable data delta, and retrain — reusing every partition the delta
//! did not touch.
//!
//! Each retrain prints the partition-reuse count (`chunks_reused`) the
//! incremental-data subsystem extracted: only the chunk the append landed
//! in recomputes; the rest of the pipeline's row space is served from the
//! intermediate store.
//!
//! ```text
//! cargo run --release --example active_learning
//! ```

use helix::core::session::SessionManager;
use helix::core::{Engine, EngineConfig};
use helix::workloads::active_learning::{run_active_learning, ActiveLearningSpec};
use helix::workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join("helix-active-learning-example");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = CensusDataSpec {
        train_rows: 6_000,
        test_rows: 1_500,
        ..Default::default()
    };
    generate_census(&dir, &spec).expect("generate census data");
    println!(
        "generated {} train / {} test census rows\n",
        spec.train_rows, spec.test_rows
    );

    let engine = Arc::new(Engine::new(EngineConfig::helix(dir.join("store"))).expect("engine"));
    let manager = SessionManager::new(engine);
    let workflow = census_workflow(&CensusParams::initial(&dir)).expect("workflow");
    let session = manager.create("oracle", workflow).expect("session");

    let first = session.iterate().expect("initial training run");
    println!("warm-up: {}", first.summary());
    println!("warm-up accuracy = {:?}\n", first.metric("accuracy"));

    let loop_spec = ActiveLearningSpec {
        rounds: 4,
        batch: 64,
        seed: 11,
    };
    let rounds = run_active_learning(&session, "data", &loop_spec).expect("active-learning loop");
    println!("=== label-and-retrain rounds ===");
    for r in &rounds {
        println!(
            "round {}: {} candidates (widest margin {:.3}), appended {} labels, \
             accuracy {:?}, {} partitions reused, {} nodes loaded",
            r.round, r.candidates, r.max_margin, r.appended, r.accuracy, r.chunks_reused, r.loaded
        );
    }

    let reused: usize = rounds.iter().map(|r| r.chunks_reused).sum();
    println!(
        "\n{} partitions served from the store across {} retrains — \
         the delta runs recomputed only what the appended labels touched",
        reused,
        rounds.len()
    );
}
