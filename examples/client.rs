//! A standalone remote analyst: drives a running `serve` instance over
//! the wire protocol from another process (or another machine).
//!
//! ```text
//! # terminal 1
//! HELIX_SERVE_ADDR=127.0.0.1:7878 cargo run --release --example serve
//! # terminal 2
//! cargo run --release --example client -- 127.0.0.1:7878 bob
//! ```
//!
//! The analyst loop is the paper's: run, inspect the report, turn one
//! learner knob, rerun (watching reuse climb), then browse the version
//! history and the v0→v1 diff.

use helix::server::client;
use std::net::SocketAddr;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr: SocketAddr = args
        .next()
        .unwrap_or_else(|| "127.0.0.1:7878".into())
        .parse()
        .expect("first argument must be host:port");
    let name = args.next().unwrap_or_else(|| "bob".into());

    let health = client::get(addr, "/healthz").expect("is the serve example running?");
    assert_eq!(health.status, 200, "server unhealthy");

    let create = client::post(
        addr,
        "/sessions",
        &format!(r#"{{"name":"{name}","workflow":"census"}}"#),
    )
    .expect("create session");
    if create.status == 409 {
        println!("session `{name}` already exists; reusing it");
    } else {
        create.expect_ok();
    }

    let first = client::post(addr, &format!("/sessions/{name}/iterate"), "")
        .expect("iterate")
        .expect_ok();
    println!(
        "[{name}] iteration {}: {} computed, accuracy {:?}",
        first.get("iteration").unwrap().as_u64().unwrap(),
        first.get("computed").unwrap().as_u64().unwrap(),
        first
            .get("metrics")
            .unwrap()
            .get("accuracy")
            .and_then(|m| m.as_f64()),
    );

    client::post(
        addr,
        &format!("/sessions/{name}/edits"),
        r#"{"kind":"set_learner_param","learner":"predictions","param":"epochs","value":6}"#,
    )
    .expect("edit")
    .expect_ok();

    let second = client::post(addr, &format!("/sessions/{name}/iterate"), "")
        .expect("iterate")
        .expect_ok();
    println!(
        "[{name}] iteration {}: reuse {:.0}% after `{}`",
        second.get("iteration").unwrap().as_u64().unwrap(),
        second.get("reuse_rate").unwrap().as_f64().unwrap() * 100.0,
        second.get("change_summary").unwrap().as_str().unwrap(),
    );

    let versions = client::get(addr, &format!("/sessions/{name}/versions"))
        .expect("versions")
        .expect_ok();
    for v in versions.get("versions").unwrap().as_array().unwrap() {
        println!(
            "[{name}] v{}: {} ({:.3}s)",
            v.get("id").unwrap().as_u64().unwrap(),
            v.get("change_summary").unwrap().as_str().unwrap(),
            v.get("total_secs").unwrap().as_f64().unwrap(),
        );
    }
    let diff = client::get(addr, &format!("/sessions/{name}/diff?from=0&to=1"))
        .expect("diff")
        .expect_ok();
    println!("[{name}] diff v0→v1: {diff}");
}
