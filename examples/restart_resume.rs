//! Kill the engine, reopen the directory, keep iterating: the durable
//! tier end to end in one self-contained demo.
//!
//! ```text
//! cargo run --release --example restart_resume
//! ```
//!
//! Phase 1 opens a WAL-backed engine, runs the census analyst loop for
//! two iterations, and drops everything — simulating a process exit with
//! work in the store. Phase 2 reopens the same directory, recovers the
//! session (template + replayed edit log), and runs a third iteration
//! that reuses the intermediates materialized before the "crash".

use helix::core::{Durability, Engine, EngineConfig, LearnerParam, SessionManager};
use helix::workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join("helix-restart-resume-example");
    let _ = std::fs::remove_dir_all(&dir);
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 3_000,
            test_rows: 800,
            ..Default::default()
        },
    )
    .expect("generate data");
    let params = CensusParams::initial(&dir);
    let store = dir.join("store");
    let durable = EngineConfig::helix(&store).with_durability(Durability::wal());

    // -- phase 1: a durable engine does some work, then "crashes" -----------
    println!("phase 1: WAL-backed engine at {}", store.display());
    {
        let engine = Arc::new(Engine::new(durable.clone()).expect("engine"));
        let manager = SessionManager::new(Arc::clone(&engine));
        let session = manager
            .create_with_template("alice", census_workflow(&params).unwrap(), Some("census"))
            .expect("create session");
        let first = session.iterate().expect("iterate");
        println!(
            "  iteration 0: computed {}, total {:.3}s",
            first.computed(),
            first.total_secs
        );
        session
            .set_learner_param("predictions", LearnerParam::RegParam(0.01))
            .expect("edit");
        let second = session.iterate().expect("iterate");
        println!(
            "  iteration 1: loaded {}, computed {} ({})",
            second.loaded(),
            second.computed(),
            second.change_summary
        );
        println!(
            "  wal holds {} bytes; dropping the engine without ceremony…",
            engine.store().wal_bytes()
        );
    } // everything dropped: the only survivor is the store directory

    // -- phase 2: reopen the directory, recover, resume ---------------------
    println!("phase 2: reopening the same directory");
    let engine = Arc::new(Engine::new(durable).expect("reopen"));
    let recovery = engine.recovery();
    println!(
        "  store recovery: {} entries replayed from the WAL",
        recovery.store.recovered_entries
    );
    println!(
        "  engine meta: {} versions, {} cost observations",
        recovery.recovered_versions, recovery.recovered_cost_observations
    );
    let manager = SessionManager::new(Arc::clone(&engine));
    let recovered = manager
        .recover(|template| (template == "census").then(|| census_workflow(&params).unwrap()));
    println!("  recovered {recovered} session(s)");

    let session = manager.get("alice").expect("alice survived the restart");
    println!(
        "  alice resumes at iteration {} with {} versions of history",
        session.iteration(),
        session.versions().len()
    );
    session
        .set_learner_param("predictions", LearnerParam::Epochs(8))
        .expect("edit");
    let resumed = session.iterate().expect("iterate");
    println!(
        "  iteration {}: loaded {}, computed {} ({})",
        resumed.iteration,
        resumed.loaded(),
        resumed.computed(),
        resumed.change_summary
    );
    assert!(
        resumed.loaded() > 0,
        "the post-restart iteration must reuse pre-crash intermediates"
    );
    println!("restart was invisible to the analyst; demo OK");
}
