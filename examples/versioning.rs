//! The demo's Versions and Metrics tabs (§3.1) as a CLI session: run a
//! few scripted iterations through a named session, browse the
//! git-log-style history, plot the accuracy trend, and diff two versions.
//!
//! ```text
//! cargo run --release --example versioning
//! ```

use helix::baselines::SystemKind;
use helix::core::session::Session;
use helix::core::viz;
use helix::workloads::census::{
    census_iterations, census_workflow, generate_census, CensusDataSpec, CensusParams,
};

fn main() {
    let dir = std::env::temp_dir().join("helix-versioning-example");
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 4_000,
            test_rows: 1_000,
            ..Default::default()
        },
    )
    .expect("generate data");

    let _ = std::fs::remove_dir_all(dir.join("store"));
    let engine = SystemKind::Helix
        .build_shared(&dir.join("store"))
        .expect("engine");
    let mut params = CensusParams::initial(&dir);
    let mut session = Session::new(
        engine,
        "versioning",
        census_workflow(&params).expect("workflow"),
    );

    session.iterate().expect("run");
    for spec in census_iterations().into_iter().take(5) {
        (spec.apply)(&mut params);
        session.replace_workflow(census_workflow(&params).expect("workflow"));
        session.iterate().expect("run");
    }

    // Versions tab: commit-log browser with best/latest shortcuts, over
    // this session's own lineage.
    println!("=== Versions ===\n{}", viz::version_log(session.versions()));

    // Metrics tab: accuracy trend across iterations.
    println!("=== Metrics: accuracy trend ===");
    let trend = session.versions().metric_trend("accuracy");
    let (min, max) = trend.iter().fold((f64::MAX, f64::MIN), |(lo, hi), (_, v)| {
        (lo.min(*v), hi.max(*v))
    });
    for (version, value) in &trend {
        let width = if max > min {
            ((value - min) / (max - min) * 40.0) as usize
        } else {
            20
        };
        println!(
            "  v{version} |{}{}| {value:.4}",
            "▪".repeat(width),
            " ".repeat(40 - width)
        );
    }

    // Comparison view: select two versions, see the git-style DAG diff.
    println!("\n=== Compare version 0 and version 2 ===");
    let diff = session.versions().diff(0, 2).expect("versions exist");
    print!("{}", viz::diff_text(&diff));

    println!("\n=== Compare version 2 and version 3 ===");
    let diff = session.versions().diff(2, 3).expect("versions exist");
    print!("{}", viz::diff_text(&diff));
}
