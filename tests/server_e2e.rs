//! End-to-end acceptance: the full analyst loop — create session →
//! typed edit → run → report → version history — driven entirely over a
//! real TCP socket, at parallelism 1 and at the default, with the wire
//! report checked field-by-field against an in-process [`SessionHandle`]
//! running the identical workload on an identically configured engine.
//!
//! Determinism note: both engines use `MaterializationPolicyKind::All`,
//! the one policy whose store/load decisions are timing-independent, so
//! per-node states must match exactly between the two (the same setup
//! the core engine's sequential-vs-parallel parity test relies on).

use helix::core::ops::ExtractorKind;
use helix::core::session::LearnerParam;
use helix::core::{
    Durability, Engine, EngineConfig, MaterializationPolicyKind, SessionManager, Workflow,
};
use helix::dataflow::DataType;
use helix::server::client::{self, Client};
use helix::server::json::Json;
use helix::server::routes::{Api, WorkflowRegistry};
use helix::server::server::{Server, ServerConfig};
use helix::server::wire;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-e2e-srv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The census-mini workflow both sides run. Row counts match the core
/// session tests: large enough that load-vs-compute decisions are stable.
fn workflow(dir: &Path) -> helix::core::Result<Workflow> {
    let train = dir.join("train.csv");
    let test = dir.join("test.csv");
    if !train.exists() {
        std::fs::write(&train, "BS,30,1\nMS,40,0\n".repeat(2_000)).unwrap();
        std::fs::write(&test, "BS,35,1\nMS,45,0\n".repeat(400)).unwrap();
    }
    let mut w = Workflow::new("census-mini");
    let data = w.csv_source("data", &train, Some(&test))?;
    let rows = w.csv_scanner(
        "rows",
        &data,
        &[
            ("edu", DataType::Str),
            ("age", DataType::Int),
            ("target", DataType::Int),
        ],
    )?;
    let edu = w.field_extractor("edu_f", &rows, "edu", ExtractorKind::Categorical)?;
    let age = w.field_extractor("age_f", &rows, "age", ExtractorKind::Numeric)?;
    let target = w.field_extractor("target_f", &rows, "target", ExtractorKind::Numeric)?;
    let income = w.assemble("income", &rows, &[&edu, &age], &target)?;
    let preds = w.learner("predictions", &income, Default::default())?;
    let checked = w.evaluate("checked", &preds, Default::default())?;
    w.output(&preds);
    w.output(&checked);
    Ok(w)
}

/// An engine whose decisions are timing-independent (see module docs).
fn config(store: PathBuf, parallelism: Option<usize>) -> EngineConfig {
    let mut config = EngineConfig::helix(store);
    config.materialization = MaterializationPolicyKind::All;
    if let Some(threads) = parallelism {
        config.parallelism = threads;
    }
    config
}

/// Drives the analyst loop over the wire and in-process at the given
/// parallelism, asserting the wire report matches the in-process one.
fn socket_loop_matches_in_process(parallelism: Option<usize>, tag: &str) {
    let dir = tmpdir(tag);

    // -- server side: its own engine + store --------------------------------
    let manager = Arc::new(SessionManager::new(Arc::new(
        Engine::new(config(dir.join("store-wire"), parallelism)).unwrap(),
    )));
    let mut registry = WorkflowRegistry::new();
    {
        let dir = dir.clone();
        registry.register("census-mini", move || workflow(&dir));
    }
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        Api::new(Arc::clone(&manager), registry),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();

    // -- in-process twin: identical config, separate store ------------------
    let twin_manager = SessionManager::new(Arc::new(
        Engine::new(config(dir.join("store-twin"), parallelism)).unwrap(),
    ));
    let twin = twin_manager
        .create("alice", workflow(&dir).unwrap())
        .unwrap();

    // create session over the wire
    let created = client::post(
        addr,
        "/sessions",
        r#"{"name":"alice","workflow":"census-mini"}"#,
    )
    .unwrap()
    .expect_ok();
    assert_eq!(created.get("name").unwrap().as_str(), Some("alice"));
    assert_eq!(created.get("iterations").unwrap().as_u64(), Some(0));

    // iteration 0 on both sides
    let wire0 = client::post(addr, "/sessions/alice/iterate", "")
        .unwrap()
        .expect_ok();
    let twin0 = twin.iterate().unwrap();
    assert_reports_match(&wire0, &twin0);

    // the typed edit, wire and in-process
    client::post(
        addr,
        "/sessions/alice/edits",
        r#"{"kind":"set_learner_param","learner":"predictions","param":"reg_param","value":0.9}"#,
    )
    .unwrap()
    .expect_ok();
    twin.set_learner_param("predictions", LearnerParam::RegParam(0.9))
        .unwrap();

    // iteration 1 on both sides
    let wire1 = client::post(addr, "/sessions/alice/iterate", "")
        .unwrap()
        .expect_ok();
    let twin1 = twin.iterate().unwrap();
    assert_reports_match(&wire1, &twin1);
    assert_eq!(
        wire1.get("change_summary").unwrap().as_str(),
        Some("set predictions reg_param=0.9")
    );
    assert!(
        wire1.get("loaded").unwrap().as_u64().unwrap() > 0,
        "the ML-only edit must reuse pre-processing over the wire too"
    );

    // version history over the wire matches the in-process session's
    let wire_versions = client::get(addr, "/sessions/alice/versions")
        .unwrap()
        .expect_ok();
    let wire_versions = wire_versions
        .get("versions")
        .unwrap()
        .as_array()
        .unwrap()
        .to_vec();
    let twin_versions = twin.versions();
    assert_eq!(wire_versions.len(), twin_versions.len());
    for (wire_v, twin_v) in wire_versions.iter().zip(twin_versions.all()) {
        assert_eq!(wire_v.get("id").unwrap().as_u64(), Some(twin_v.id as u64));
        assert_eq!(
            wire_v.get("change_summary").unwrap().as_str(),
            Some(twin_v.change_summary.as_str())
        );
    }

    // lineage detail: the v1 DAG snapshot names every node, and the
    // v0→v1 diff pins the retrained model node
    let detail = client::get(addr, "/sessions/alice/versions/1")
        .unwrap()
        .expect_ok();
    let dag_nodes = detail
        .get("dag")
        .unwrap()
        .get("nodes")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(dag_nodes.len(), twin1.nodes.len());
    let diff = client::get(addr, "/sessions/alice/diff?from=0&to=1")
        .unwrap()
        .expect_ok();
    let changed = diff.get("changed").unwrap().as_array().unwrap();
    assert!(
        changed
            .iter()
            .any(|c| c.get("name").unwrap().as_str() == Some("predictions__model")),
        "diff must name the retrained model node: {diff}"
    );

    // the engine behind the server recorded both runs globally
    assert_eq!(manager.engine().versions().len(), 2);

    server.shutdown();
}

/// Field-by-field comparison of a wire report against an in-process
/// [`helix::core::IterationReport`] — everything except wall-clock
/// timings, which legitimately differ.
fn assert_reports_match(wire_report: &Json, report: &helix::core::IterationReport) {
    assert_eq!(
        wire_report.get("iteration").unwrap().as_u64(),
        Some(report.iteration as u64)
    );
    assert_eq!(
        wire_report.get("workflow").unwrap().as_str(),
        Some(report.workflow_name.as_str())
    );
    assert_eq!(wire_report.get("session").unwrap().as_str(), Some("alice"));
    assert_eq!(
        wire_report.get("change_summary").unwrap().as_str(),
        Some(report.change_summary.as_str())
    );
    for (counter, value) in [
        ("loaded", report.loaded()),
        ("computed", report.computed()),
        ("pruned", report.pruned()),
    ] {
        assert_eq!(
            wire_report.get(counter).unwrap().as_u64(),
            Some(value as u64),
            "{counter} mismatch"
        );
    }
    let wire_metrics = wire_report.get("metrics").unwrap().as_object().unwrap();
    assert_eq!(wire_metrics.len(), report.metrics.len());
    for ((wire_name, wire_value), (name, value)) in wire_metrics.iter().zip(&report.metrics) {
        assert_eq!(wire_name, name);
        assert_eq!(wire_value.as_f64(), Some(*value), "metric {name}");
    }
    let wire_nodes = wire_report.get("nodes").unwrap().as_array().unwrap();
    assert_eq!(wire_nodes.len(), report.nodes.len());
    for (wire_node, node) in wire_nodes.iter().zip(&report.nodes) {
        assert_eq!(
            wire_node.get("name").unwrap().as_str(),
            Some(node.name.as_str())
        );
        assert_eq!(
            wire_node.get("state").unwrap().as_str(),
            Some(wire::node_state_str(node.state)),
            "state mismatch on {}",
            node.name
        );
        assert_eq!(
            wire_node.get("change").unwrap().as_str(),
            Some(wire::change_kind_str(node.change)),
            "change mismatch on {}",
            node.name
        );
        assert_eq!(
            wire_node.get("wave").unwrap().as_u64(),
            node.wave.map(|w| w as u64),
            "wave mismatch on {}",
            node.name
        );
        assert_eq!(
            wire_node.get("materialized").unwrap().as_bool(),
            Some(node.materialized),
            "materialized mismatch on {}",
            node.name
        );
    }
    assert_eq!(
        wire_report.get("waves").unwrap().as_array().unwrap().len(),
        report.waves.len()
    );
}

#[test]
fn socket_loop_matches_in_process_sequential() {
    socket_loop_matches_in_process(Some(1), "seq");
}

#[test]
fn socket_loop_matches_in_process_default_parallelism() {
    socket_loop_matches_in_process(None, "par");
}

/// The keep-alive analyst loop: one persistent connection drives
/// create→edit→iterate→history end to end, while a `Connection: close`
/// client interleaves one-shot requests — and the keep-alive connection
/// is provably reused (exactly one TCP connect for the whole loop).
fn keepalive_session_loop(parallelism: Option<usize>, tag: &str) {
    let dir = tmpdir(tag);
    let manager = Arc::new(SessionManager::new(Arc::new(
        Engine::new(config(dir.join("store"), parallelism)).unwrap(),
    )));
    let mut registry = WorkflowRegistry::new();
    {
        let dir = dir.clone();
        registry.register("census-mini", move || workflow(&dir));
    }
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        Api::new(Arc::clone(&manager), registry),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();

    let mut analyst = Client::new(addr);
    let created = analyst
        .post("/sessions", r#"{"name":"alice","workflow":"census-mini"}"#)
        .unwrap()
        .expect_ok();
    assert_eq!(created.get("name").unwrap().as_str(), Some("alice"));
    let first = analyst
        .post("/sessions/alice/iterate", "")
        .unwrap()
        .expect_ok();
    assert_eq!(first.get("iteration").unwrap().as_u64(), Some(0));

    // A one-shot Connection: close client interleaves mid-loop.
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);

    analyst
        .post(
            "/sessions/alice/edits",
            r#"{"kind":"set_learner_param","learner":"predictions","param":"reg_param","value":0.9}"#,
        )
        .unwrap()
        .expect_ok();
    let second = analyst
        .post("/sessions/alice/iterate", "")
        .unwrap()
        .expect_ok();
    assert_eq!(second.get("iteration").unwrap().as_u64(), Some(1));
    assert!(
        second.get("loaded").unwrap().as_u64().unwrap() > 0,
        "the ML-only edit must reuse pre-processing over a kept-alive connection"
    );
    let history = analyst.get("/sessions/alice/versions").unwrap().expect_ok();
    assert_eq!(
        history.get("versions").unwrap().as_array().unwrap().len(),
        2
    );
    assert_eq!(
        analyst.connects(),
        1,
        "the whole analyst loop must ride one TCP connection"
    );
    server.shutdown();
}

#[test]
fn keepalive_session_loop_sequential() {
    keepalive_session_loop(Some(1), "ka-seq");
}

#[test]
fn keepalive_session_loop_default_parallelism() {
    keepalive_session_loop(None, "ka-par");
}

/// Wire framing, asserted against raw bytes: responses carry an exact
/// `Content-Length`, a kept-alive connection serves a second request,
/// and a `Connection: close` response is final (EOF, no reuse).
#[test]
fn response_framing_and_close_semantics_on_raw_sockets() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = tmpdir("framing");
    let manager = Arc::new(SessionManager::new(Arc::new(
        Engine::new(EngineConfig::helix(dir.join("store"))).unwrap(),
    )));
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        Api::new(manager, WorkflowRegistry::new()),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();

    let stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream);

    // Reads one response off the connection, asserting exact framing;
    // returns (status line, Connection header value, body).
    let read_response = |reader: &mut BufReader<std::net::TcpStream>| {
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut content_length: Option<usize> = None;
        let mut connection = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                match name.to_ascii_lowercase().as_str() {
                    "content-length" => content_length = Some(value.trim().parse().unwrap()),
                    "connection" => connection = value.trim().to_string(),
                    _ => {}
                }
            }
        }
        let len = content_length.expect("every response must declare Content-Length");
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).unwrap();
        let body = String::from_utf8(body).unwrap();
        assert_eq!(body.len(), len, "Content-Length must be exact");
        Json::parse(&body).expect("body must be complete, valid JSON");
        (status.trim_end().to_string(), connection, body)
    };

    // Request 1: keep-alive by default under HTTP/1.1.
    reader
        .get_mut()
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let (status, connection, _) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200"));
    assert_eq!(connection, "keep-alive");

    // Request 2 on the same connection proves reuse.
    reader
        .get_mut()
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let (status, connection, _) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200"));
    assert_eq!(connection, "keep-alive");

    // Request 3 asks to close: the response says so, and the connection
    // is not reusable afterwards — the next read sees clean EOF.
    reader
        .get_mut()
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, connection, _) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200"));
    assert_eq!(connection, "close");
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).unwrap();
    assert_eq!(n, 0, "no reuse after Connection: close, got {rest:?}");

    server.shutdown();
}

/// The durable serving loop end to end: a WAL-backed server runs the
/// analyst loop, checkpoints via `POST /admin/snapshot`, and shuts down;
/// a second server over the same store directory recovers the session,
/// reports it in the versioned `GET /stats`, and resumes iterating with
/// warm-store reuse.
#[test]
fn durable_server_recovers_sessions_over_the_wire() {
    let dir = tmpdir("durable");
    let durable_config = |dir: &Path| {
        let mut c = config(dir.join("store"), Some(1));
        c.durability = Durability::wal_nosync();
        c
    };
    let registry_for = |dir: &Path| {
        let mut registry = WorkflowRegistry::new();
        let dir = dir.to_path_buf();
        registry.register("census-mini", move || workflow(&dir));
        registry
    };

    // -- first server: create, iterate twice, checkpoint, shut down ---------
    let manager = Arc::new(SessionManager::new(Arc::new(
        Engine::new(durable_config(&dir)).unwrap(),
    )));
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        Api::new(Arc::clone(&manager), registry_for(&dir)),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();

    client::post(
        addr,
        "/sessions",
        r#"{"name":"alice","workflow":"census-mini"}"#,
    )
    .unwrap()
    .expect_ok();
    client::post(addr, "/sessions/alice/iterate", "")
        .unwrap()
        .expect_ok();
    client::post(
        addr,
        "/sessions/alice/edits",
        r#"{"kind":"set_learner_param","learner":"predictions","param":"reg_param","value":0.9}"#,
    )
    .unwrap()
    .expect_ok();
    client::post(addr, "/sessions/alice/iterate", "")
        .unwrap()
        .expect_ok();

    // Stats v3 on a fresh durable server: nothing recovered, WAL active,
    // and the optimizer memo populated by the two iterations.
    let stats = client::get(addr, "/stats").unwrap().expect_ok();
    assert_eq!(stats.get("v").unwrap().as_u64(), Some(3));
    assert_eq!(stats.get("recovered_sessions").unwrap().as_u64(), Some(0));
    assert!(stats.get("wal_bytes").unwrap().as_u64().unwrap() > 0);
    assert!(
        stats
            .get("observations_recorded")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0,
        "iterations must feed the optimizer memo: {stats}"
    );
    assert!(stats.get("memo_entries").unwrap().as_u64().unwrap() > 0);

    // The offline Optimal pass runs over the accumulated history and
    // never does worse than the online heuristic it replaces.
    let optimized = client::post(addr, "/admin/optimize", "")
        .unwrap()
        .expect_ok();
    assert_eq!(optimized.get("optimized").unwrap().as_bool(), Some(true));
    assert!(
        optimized.get("chosen_cost_secs").unwrap().as_f64().unwrap()
            <= optimized.get("online_cost_secs").unwrap().as_f64().unwrap(),
        "offline pass must not lose to the online rule: {optimized}"
    );
    assert_eq!(
        client::get(addr, "/admin/optimize").unwrap().status,
        405,
        "GET on the optimize route must be method-not-allowed"
    );

    // Forced checkpoint compacts the WAL into the snapshot.
    let snap = client::post(addr, "/admin/snapshot", "")
        .unwrap()
        .expect_ok();
    assert_eq!(snap.get("snapshotted").unwrap().as_bool(), Some(true));
    assert!(snap.get("last_snapshot").unwrap().as_u64().unwrap() > 0);
    assert_eq!(
        client::get(addr, "/admin/snapshot").unwrap().status,
        405,
        "GET on the snapshot route must be method-not-allowed"
    );

    server.shutdown();
    drop(manager);

    // -- second server over the same store: recover, inspect, resume --------
    let manager = Arc::new(SessionManager::new(Arc::new(
        Engine::new(durable_config(&dir)).unwrap(),
    )));
    let api = Api::new(Arc::clone(&manager), registry_for(&dir));
    assert_eq!(api.recover_sessions(), 1, "alice must come back");
    let mut server = Server::bind(("127.0.0.1", 0), api, ServerConfig::default()).unwrap();
    let addr = server.addr();

    let stats = client::get(addr, "/stats").unwrap().expect_ok();
    assert_eq!(stats.get("v").unwrap().as_u64(), Some(3));
    assert_eq!(stats.get("recovered_sessions").unwrap().as_u64(), Some(1));
    assert!(stats.get("recovered_entries").unwrap().as_u64().unwrap() > 0);
    assert!(
        stats.get("memo_entries").unwrap().as_u64().unwrap() > 0,
        "the optimizer memo must survive the restart: {stats}"
    );
    assert!(
        stats.get("last_offline_pass").unwrap().as_u64().unwrap() > 0,
        "the pre-restart offline pass timestamp must be recovered: {stats}"
    );

    let info = client::get(addr, "/sessions/alice").unwrap().expect_ok();
    assert_eq!(info.get("iterations").unwrap().as_u64(), Some(2));
    let history = client::get(addr, "/sessions/alice/versions")
        .unwrap()
        .expect_ok();
    assert_eq!(
        history.get("versions").unwrap().as_array().unwrap().len(),
        2,
        "both pre-restart versions must survive"
    );

    // The recovered session keeps iterating against the recovered store.
    let resumed = client::post(addr, "/sessions/alice/iterate", "")
        .unwrap()
        .expect_ok();
    assert_eq!(resumed.get("iteration").unwrap().as_u64(), Some(2));
    assert!(
        resumed.get("loaded").unwrap().as_u64().unwrap() > 0,
        "the post-restart iteration must reuse recovered intermediates"
    );

    server.shutdown();
}

/// `POST /admin/snapshot` on a volatile engine is the caller's mistake:
/// 400 with a hint, not a silent no-op.
#[test]
fn admin_snapshot_on_volatile_engine_is_rejected() {
    let dir = tmpdir("volatile-snap");
    // Pin Volatile explicitly: EngineConfig::helix reads HELIX_DURABILITY,
    // and this test must reject the snapshot even when the suite runs
    // under HELIX_DURABILITY=wal (the CI durability job does exactly that).
    let mut config = EngineConfig::helix(dir.join("store"));
    config.durability = Durability::Volatile;
    let manager = Arc::new(SessionManager::new(Arc::new(Engine::new(config).unwrap())));
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        Api::new(manager, WorkflowRegistry::new()),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();

    let resp = client::post(addr, "/admin/snapshot", "").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp
        .body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("volatile"));

    // Volatile stats still answer with the v3 schema, counters zeroed.
    let stats = client::get(addr, "/stats").unwrap().expect_ok();
    assert_eq!(stats.get("v").unwrap().as_u64(), Some(3));
    assert_eq!(stats.get("wal_bytes").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("recovered_sessions").unwrap().as_u64(), Some(0));

    server.shutdown();
}

/// The active-learning loop end to end over the wire: create → iterate →
/// fetch the most-uncertain test examples → post oracle labels as a data
/// delta → retrain. The retrain must reuse unchanged partitions from the
/// store (`chunks_reused > 0`) while the label join — the assemble node
/// that merges features with the (now longer) label column — recomputes.
#[test]
fn active_learning_loop_over_the_wire() {
    let dir = tmpdir("active");
    let manager = Arc::new(SessionManager::new(Arc::new(
        Engine::new(config(dir.join("store"), None)).unwrap(),
    )));
    let mut registry = WorkflowRegistry::new();
    {
        let dir = dir.clone();
        registry.register("census-mini", move || workflow(&dir));
    }
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        Api::new(Arc::clone(&manager), registry),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();

    client::post(
        addr,
        "/sessions",
        r#"{"name":"alice","workflow":"census-mini"}"#,
    )
    .unwrap()
    .expect_ok();

    // Ranking before any run is the caller's mistake: the session has no
    // materialized predictions yet.
    assert_eq!(
        client::get(addr, "/sessions/alice/uncertain")
            .unwrap()
            .status,
        400,
        "uncertain before the first iteration must 400"
    );

    client::post(addr, "/sessions/alice/iterate", "")
        .unwrap()
        .expect_ok();

    // Fetch the K most-uncertain test examples; margins come back sorted.
    let uncertain = client::get(addr, "/sessions/alice/uncertain?k=5")
        .unwrap()
        .expect_ok();
    assert_eq!(uncertain.get("k").unwrap().as_u64(), Some(5));
    let examples = uncertain.get("examples").unwrap().as_array().unwrap();
    assert!(!examples.is_empty() && examples.len() <= 5);
    let mut last_margin = -1.0_f64;
    for ex in examples {
        for field in ["index", "label", "score", "pred", "margin"] {
            assert!(ex.get(field).is_some(), "example missing {field}: {ex}");
        }
        let margin = ex.get("margin").unwrap().as_f64().unwrap();
        assert!(
            margin >= last_margin && margin <= 0.5 + 1e-12,
            "margins must be ascending and ≤ 0.5: {uncertain}"
        );
        last_margin = margin;
    }

    // The oracle answers: labels return as a typed data delta.
    let labeled = client::post(
        addr,
        "/sessions/alice/data",
        r#"{"source":"data","rows":["PhD,52,1","HS,19,0","PhD,48,1"]}"#,
    )
    .unwrap()
    .expect_ok();
    assert_eq!(labeled.get("appended").unwrap().as_u64(), Some(3));
    assert_eq!(labeled.get("source").unwrap().as_str(), Some("data"));

    // Retrain: unchanged partitions load, the label join recomputes.
    let retrain = client::post(addr, "/sessions/alice/iterate", "")
        .unwrap()
        .expect_ok();
    assert!(
        retrain.get("chunks_reused").unwrap().as_u64().unwrap() > 0,
        "the delta retrain must serve unchanged partitions: {retrain}"
    );
    let nodes = retrain.get("nodes").unwrap().as_array().unwrap();
    let income = nodes
        .iter()
        .find(|n| n.get("name").unwrap().as_str() == Some("income"))
        .expect("report must include the assemble node");
    assert_eq!(
        income.get("state").unwrap().as_str(),
        Some("compute"),
        "the label join must recompute after a data delta: {retrain}"
    );
    assert!(
        retrain.get("metrics").unwrap().get("accuracy").is_some(),
        "the retrain must re-evaluate"
    );

    // The delta is a first-class edit: it shows up in version history.
    let history = client::get(addr, "/sessions/alice/versions")
        .unwrap()
        .expect_ok();
    let versions = history.get("versions").unwrap().as_array().unwrap();
    assert_eq!(versions.len(), 2);
    assert_eq!(
        versions[1].get("change_summary").unwrap().as_str(),
        Some("append 3 rows to data")
    );

    // Error paths for both new endpoints.
    assert_eq!(
        client::post(addr, "/sessions/alice/data", r#"{"source":"data"}"#)
            .unwrap()
            .status,
        400,
        "data without rows must 400"
    );
    assert_eq!(
        client::post(
            addr,
            "/sessions/alice/data",
            r#"{"source":"rows","rows":["x,1,0"]}"#
        )
        .unwrap()
        .status,
        400,
        "appending to a non-source node must 400"
    );
    assert_eq!(
        client::get(addr, "/sessions/alice/uncertain?k=abc")
            .unwrap()
            .status,
        400,
        "non-numeric k must 400"
    );
    assert_eq!(
        client::get(addr, "/sessions/nobody/uncertain")
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client::get(addr, "/sessions/alice/data").unwrap().status,
        405,
        "GET on the data route must be method-not-allowed"
    );

    server.shutdown();
}

/// Several remote analysts in flight at once: concurrent socket sessions
/// share one engine, reuse each other's intermediates, and the history
/// sees every run.
#[test]
fn concurrent_remote_sessions_share_the_store() {
    let dir = tmpdir("burst");
    let manager = Arc::new(SessionManager::new(Arc::new(
        Engine::new(EngineConfig::helix(dir.join("store"))).unwrap(),
    )));
    let mut registry = WorkflowRegistry::new();
    {
        let dir = dir.clone();
        registry.register("census-mini", move || workflow(&dir));
    }
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        Api::new(Arc::clone(&manager), registry),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();

    let analysts = ["alice", "bob", "carol"];
    std::thread::scope(|scope| {
        for name in analysts {
            scope.spawn(move || {
                client::post(
                    addr,
                    "/sessions",
                    &format!(r#"{{"name":"{name}","workflow":"census-mini"}}"#),
                )
                .unwrap()
                .expect_ok();
                let report = client::post(addr, &format!("/sessions/{name}/iterate"), "")
                    .unwrap()
                    .expect_ok();
                assert!(report.get("metrics").unwrap().get("accuracy").is_some());
            });
        }
    });

    // One more analyst after the burst: warm store, first run mostly loads.
    client::post(
        addr,
        "/sessions",
        r#"{"name":"dave","workflow":"census-mini"}"#,
    )
    .unwrap()
    .expect_ok();
    let warm = client::post(addr, "/sessions/dave/iterate", "")
        .unwrap()
        .expect_ok();
    assert!(
        warm.get("loaded").unwrap().as_u64().unwrap() > 0,
        "a late remote analyst must reuse the burst's materializations"
    );

    let sessions = client::get(addr, "/sessions").unwrap().expect_ok();
    assert_eq!(
        sessions.get("sessions").unwrap().as_array().unwrap().len(),
        4
    );
    let global = client::get(addr, "/versions").unwrap().expect_ok();
    assert_eq!(global.get("versions").unwrap().as_array().unwrap().len(), 4);

    server.shutdown();
}
