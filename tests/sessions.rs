//! Concurrent-session integration tests: N sessions over one
//! `Arc<Engine>`, exercising the shared-`&self` execution path end to
//! end — determinism vs a sequential reference, cross-session reuse of
//! cached intermediates, and the storage budget under concurrent
//! materialization pressure.

use helix::core::ops::{EvalSpec, MetricKind, OperatorKind};
use helix::core::session::{LearnerParam, SessionHandle, SessionManager};
use helix::core::{
    Engine, EngineConfig, IterationReport, MaterializationPolicyKind, RecomputationPolicy,
};
use helix::workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-sess-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic engine: materialize-`All` plus load-all-available
/// recomputation keep every decision timing-independent (the `Optimal`
/// policy consults wall-clock-calibrated cost estimates, which two
/// engines on a loaded runner can calibrate differently), so concurrent
/// and sequential runs are comparable field by field. The cost-driven
/// `Optimal` path under concurrency is covered by the e2e
/// parallel-vs-sequential tests.
fn all_engine(store_dir: &Path) -> Arc<Engine> {
    let mut config = EngineConfig::helix(store_dir);
    config.materialization = MaterializationPolicyKind::All;
    config.recomputation = RecomputationPolicy::LoadAllAvailable;
    Arc::new(Engine::new(config).unwrap())
}

/// The timing-independent slice of a report.
#[derive(Debug, PartialEq)]
struct ReportFacts {
    iteration: usize,
    loaded: usize,
    computed: usize,
    pruned: usize,
    wave_count: usize,
    metrics: Vec<(String, f64)>,
    materialized: Vec<String>,
    change_summary: String,
}

impl ReportFacts {
    fn of(report: &IterationReport) -> ReportFacts {
        ReportFacts {
            iteration: report.iteration,
            loaded: report.loaded(),
            computed: report.computed(),
            pruned: report.pruned(),
            wave_count: report.wave_count(),
            metrics: report.metrics.clone(),
            materialized: report
                .nodes
                .iter()
                .filter(|n| n.materialized)
                .map(|n| n.name.clone())
                .collect(),
            change_summary: report.change_summary.clone(),
        }
    }
}

/// The scripted edits every analyst applies: an ML knob turn, then an
/// evaluation swap — both through the typed session handles.
fn drive(session: &SessionHandle) -> Vec<ReportFacts> {
    let mut facts = vec![ReportFacts::of(&session.iterate().unwrap())];
    session
        .set_learner_param("predictions", LearnerParam::RegParam(0.02))
        .unwrap();
    facts.push(ReportFacts::of(&session.iterate().unwrap()));
    session
        .replace_operator(
            "checked",
            OperatorKind::Evaluate(EvalSpec {
                metrics: vec![MetricKind::F1, MetricKind::Precision],
                split: helix::core::SPLIT_TEST.into(),
            }),
        )
        .unwrap();
    facts.push(ReportFacts::of(&session.iterate().unwrap()));
    facts
}

/// The acceptance criterion: ≥3 sessions driven concurrently produce
/// reports identical to the same edits applied sequentially on a fresh
/// engine.
#[test]
fn concurrent_sessions_match_sequential_reports() {
    let dir = tmpdir("deterministic");
    // Disjoint datasets per analyst (distinct *content* per seed ⇒
    // disjoint signature spaces — sources are signed by what the data is,
    // not where it lives), so the comparison is exact even though all
    // sessions share one store. Identical content would be legitimately
    // shared across sessions, making `materialized` timing-dependent.
    let mut workflows = Vec::new();
    for i in 0..3 {
        let data_dir = dir.join(format!("data{i}"));
        generate_census(
            &data_dir,
            &CensusDataSpec {
                train_rows: 2_000,
                test_rows: 500,
                seed: 7 + i as u64,
                ..Default::default()
            },
        )
        .unwrap();
        workflows.push(census_workflow(&CensusParams::initial(&data_dir)).unwrap());
    }

    // Concurrent: three threads, one shared engine, no outer locking.
    let concurrent = SessionManager::new(all_engine(&dir.join("store-concurrent")));
    let con_facts: Vec<Vec<ReportFacts>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workflows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let session = concurrent.create(&format!("s{i}"), w.clone()).unwrap();
                scope.spawn(move || drive(&session))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Sequential reference: fresh engine, same sessions one at a time.
    let sequential = SessionManager::new(all_engine(&dir.join("store-sequential")));
    for (i, w) in workflows.iter().enumerate() {
        let session = sequential.create(&format!("s{i}"), w.clone()).unwrap();
        let seq_facts = drive(&session);
        assert_eq!(
            con_facts[i], seq_facts,
            "session s{i}: concurrent run diverged from the sequential reference"
        );
        con_facts[i].iter().for_each(|f| {
            assert!(
                !f.metrics.is_empty(),
                "s{i} iteration {} lost metrics",
                f.iteration
            )
        });
    }
    assert_eq!(concurrent.engine().versions().len(), 9);
    assert_eq!(sequential.engine().versions().len(), 9);
}

/// Two sessions running simultaneously reuse each other's cached
/// intermediates: after Alice's warm-up materializes the shared
/// pre-processing chain, both her edited rerun and Bob's cold first run
/// load from the store — concurrently — and their reports count the hits.
#[test]
fn simultaneous_sessions_reuse_each_others_intermediates() {
    let dir = tmpdir("cross-reuse");
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 600,
            test_rows: 150,
            ..Default::default()
        },
    )
    .unwrap();
    let params = CensusParams::initial(&dir);
    let manager = SessionManager::new(all_engine(&dir.join("store")));
    let alice = manager
        .create("alice", census_workflow(&params).unwrap())
        .unwrap();
    let bob = manager
        .create("bob", census_workflow(&params).unwrap())
        .unwrap();

    let warmup = alice.iterate().unwrap();
    assert_eq!(warmup.loaded(), 0, "cold start computes everything");

    alice
        .set_learner_param("predictions", LearnerParam::RegParam(0.05))
        .unwrap();
    let (alice_report, bob_report) = std::thread::scope(|scope| {
        let a = scope.spawn(|| alice.iterate().unwrap());
        let b = scope.spawn(|| bob.iterate().unwrap());
        (a.join().unwrap(), b.join().unwrap())
    });
    assert!(
        alice_report.loaded() > 0,
        "Alice's ML-only edit must reload pre-processing"
    );
    assert!(
        bob_report.loaded() > 0,
        "Bob's first iteration must hit Alice's materializations"
    );
    assert_eq!(
        warmup.metrics, bob_report.metrics,
        "reused intermediates must not change results"
    );
    assert!(manager.engine().store().used_bytes() <= manager.engine().store().budget_bytes());
}

/// Concurrent sessions hammering materialization against a tiny budget
/// never jointly overshoot it: the store's reservation ledger holds under
/// cross-session races.
#[test]
fn concurrent_sessions_never_overshoot_store_budget() {
    let dir = tmpdir("budget");
    let mut workflows = Vec::new();
    for i in 0..3 {
        let data_dir = dir.join(format!("data{i}"));
        generate_census(
            &data_dir,
            &CensusDataSpec {
                train_rows: 300,
                test_rows: 80,
                ..Default::default()
            },
        )
        .unwrap();
        workflows.push(census_workflow(&CensusParams::initial(&data_dir)).unwrap());
    }
    // A budget far below three workflows' worth of intermediates, with
    // materialize-`All` pressure from every session.
    let mut config = EngineConfig::helix(dir.join("store")).with_budget(24 * 1024);
    config.materialization = MaterializationPolicyKind::All;
    let engine = Arc::new(Engine::new(config).unwrap());
    let manager = SessionManager::new(Arc::clone(&engine));

    std::thread::scope(|scope| {
        for (i, w) in workflows.iter().enumerate() {
            let session = manager.create(&format!("s{i}"), w.clone()).unwrap();
            scope.spawn(move || {
                for _ in 0..2 {
                    let report = session.iterate().unwrap();
                    assert!(!report.metrics.is_empty());
                }
            });
        }
    });
    let used = engine.store().used_bytes();
    let budget = engine.store().budget_bytes();
    assert!(
        used <= budget,
        "sessions jointly overshot the budget: {used} > {budget}"
    );
    assert_eq!(engine.versions().len(), 6);
}
