//! Property test for the adaptive optimizer: an engine that re-plans
//! from memo observations on every opportunity must produce results
//! byte-identical to a twin that never re-plans, across random edit
//! sequences and thread counts. Re-planning may only move load/compute/
//! store decisions — never the data.

use helix::core::{DecisionSource, Engine, EngineConfig, MaterializationPolicyKind};
use helix::workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// One random knob turn (a subset of the session edit space that changes
/// plan shape as well as parameters).
#[derive(Debug, Clone, Copy)]
enum Edit {
    Reg(u8),
    Epochs(u8),
    ToggleMs,
    Bins(u8),
}

fn apply(edit: Edit, params: &mut CensusParams) {
    match edit {
        Edit::Reg(r) => params.reg_param = 0.01 + f64::from(r) * 0.05,
        Edit::Epochs(e) => params.epochs = 2 + usize::from(e % 4),
        Edit::ToggleMs => params.include_marital_status = !params.include_marital_status,
        Edit::Bins(b) => params.age_bins = 2 + usize::from(b % 10),
    }
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        any::<u8>().prop_map(Edit::Reg),
        any::<u8>().prop_map(Edit::Epochs),
        Just(Edit::ToggleMs),
        any::<u8>().prop_map(Edit::Bins),
    ]
}

fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-opt-data-{}", std::process::id()));
    if !dir.join("train.csv").exists() {
        generate_census(
            &dir,
            &CensusDataSpec {
                train_rows: 200,
                test_rows: 60,
                ..Default::default()
            },
        )
        .unwrap();
    }
    dir
}

/// A deterministic engine for twin comparison: materialize-`All` keeps
/// the stored set timing-independent, so only the replan factor differs
/// between the twins.
fn engine(store: &Path, parallelism: Option<usize>, replan_factor: f64) -> Engine {
    let mut config = EngineConfig::helix(store).with_replan_factor(replan_factor);
    config.materialization = MaterializationPolicyKind::All;
    if let Some(threads) = parallelism {
        config = config.with_parallelism(threads);
    }
    Engine::new(config).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Twin engines over the same edit sequence: `adaptive` re-plans on
    /// every run after the first (factor 1.0), `frozen` never does
    /// (factor ∞). Reports must agree on metrics, the stores must hold
    /// byte-identical outputs, and only the adaptive twin may report
    /// observed decision sources.
    #[test]
    fn replanned_engine_matches_never_replanned_twin(
        edits in proptest::collection::vec(arb_edit(), 1..4),
        parallelism in prop_oneof![Just(Some(1)), Just(None)],
    ) {
        let dir = data_dir();
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let work = std::env::temp_dir()
            .join(format!("helix-opt-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&work);

        let adaptive = engine(&work.join("a"), parallelism, 1.0);
        let frozen = engine(&work.join("f"), parallelism, f64::INFINITY);

        let mut params = CensusParams::initial(&dir);
        let mut runs = vec![census_workflow(&params).unwrap()];
        for edit in &edits {
            apply(*edit, &mut params);
            runs.push(census_workflow(&params).unwrap());
        }

        for (i, w) in runs.iter().enumerate() {
            let a = adaptive.run(w).unwrap();
            let f = frozen.run(w).unwrap();
            prop_assert_eq!(&a.metrics, &f.metrics, "run {} diverged", i);
            prop_assert!(
                f.nodes.iter().all(|n| n.decision_source == DecisionSource::Estimate),
                "a disabled replan must never report observed costs"
            );
            if i > 0 {
                prop_assert!(
                    a.nodes.iter().any(|n| n.decision_source == DecisionSource::Observed),
                    "factor 1.0 must re-plan on every run after the first"
                );
            }
        }
        prop_assert_eq!(
            adaptive.optimizer_stats().replans_triggered as usize,
            runs.len() - 1
        );
        prop_assert_eq!(frozen.optimizer_stats().replans_triggered, 0);

        // Byte identity: every output both twins materialized must hold
        // the exact same encoded payload. Materialize-`All` stores every
        // active node, so this covers the full final plan.
        let plan = adaptive.compile_only(runs.last().unwrap()).unwrap();
        let mut compared = 0;
        for (i, &sig) in plan.signatures.iter().enumerate() {
            if !plan.active[i] {
                continue;
            }
            let (Some(_), Some(_)) = (adaptive.store().lookup(sig), frozen.store().lookup(sig))
            else {
                continue;
            };
            let (a_out, _, _) = adaptive.store().get(sig).unwrap();
            let (f_out, _, _) = frozen.store().get(sig).unwrap();
            prop_assert_eq!(
                a_out.encode(),
                f_out.encode(),
                "stored bytes diverged at node {}",
                i
            );
            compared += 1;
        }
        prop_assert!(compared > 0, "twins must share stored outputs to compare");

        let _ = std::fs::remove_dir_all(&work);
    }
}
