//! Crash-recovery acceptance for the durable tier: a WAL-backed engine
//! killed and reopened must resume every session's lineage with the
//! same results a never-restarted engine produces.
//!
//! Three layers of abuse:
//!
//! * **Twin comparison** — a restarted durable engine driven through the
//!   analyst loop, checked field-by-field against an identically
//!   configured engine that never restarted (both deterministic:
//!   materialize-`All` + load-all-available).
//! * **SIGKILL mid-flight** — a child process iterating two sessions is
//!   killed without warning; the parent reopens the store and asserts
//!   every acknowledged iteration survived and the ledger matches disk.
//! * **WAL-tail fuzz** — the last WAL record is truncated at every byte
//!   boundary; every prefix must open cleanly (torn tail = truncate and
//!   warn, never refuse to start).

use helix::core::ops::ExtractorKind;
use helix::core::session::LearnerParam;
use helix::core::{
    Durability, Engine, EngineConfig, IterationReport, MaterializationPolicyKind,
    RecomputationPolicy, SessionManager, Workflow,
};
use helix::dataflow::DataType;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-durab-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The census-mini workflow (same shape as the server e2e suite): big
/// enough that load-vs-compute decisions are stable, small enough that a
/// kill-loop iteration is fast.
fn workflow(dir: &Path) -> helix::core::Result<Workflow> {
    let train = dir.join("train.csv");
    let test = dir.join("test.csv");
    if !train.exists() {
        std::fs::write(&train, "BS,30,1\nMS,40,0\n".repeat(2_000)).unwrap();
        std::fs::write(&test, "BS,35,1\nMS,45,0\n".repeat(400)).unwrap();
    }
    let mut w = Workflow::new("census-mini");
    let data = w.csv_source("data", &train, Some(&test))?;
    let rows = w.csv_scanner(
        "rows",
        &data,
        &[
            ("edu", DataType::Str),
            ("age", DataType::Int),
            ("target", DataType::Int),
        ],
    )?;
    let edu = w.field_extractor("edu_f", &rows, "edu", ExtractorKind::Categorical)?;
    let age = w.field_extractor("age_f", &rows, "age", ExtractorKind::Numeric)?;
    let target = w.field_extractor("target_f", &rows, "target", ExtractorKind::Numeric)?;
    let income = w.assemble("income", &rows, &[&edu, &age], &target)?;
    let preds = w.learner("predictions", &income, Default::default())?;
    let checked = w.evaluate("checked", &preds, Default::default())?;
    w.output(&preds);
    w.output(&checked);
    Ok(w)
}

/// A deterministic durable engine: every materialization and load
/// decision is timing-independent, so a restarted engine and its
/// never-restarted twin are comparable field by field.
fn durable_engine(store_dir: &Path) -> Arc<Engine> {
    let mut config = EngineConfig::helix(store_dir);
    config.materialization = MaterializationPolicyKind::All;
    config.recomputation = RecomputationPolicy::LoadAllAvailable;
    config.durability = Durability::wal_nosync();
    Arc::new(Engine::new(config).unwrap())
}

/// The timing-independent slice of a report.
#[derive(Debug, PartialEq)]
struct ReportFacts {
    iteration: usize,
    loaded: usize,
    computed: usize,
    pruned: usize,
    metrics: Vec<(String, f64)>,
    change_summary: String,
}

impl ReportFacts {
    fn of(report: &IterationReport) -> ReportFacts {
        ReportFacts {
            iteration: report.iteration,
            loaded: report.loaded(),
            computed: report.computed(),
            pruned: report.pruned(),
            metrics: report.metrics.clone(),
            change_summary: report.change_summary.clone(),
        }
    }
}

/// Recursive directory copy (for fuzzing WAL prefixes on a scratch copy).
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

/// Sum of `.hlx` payload bytes on disk under the store directory — the
/// ground truth the recovered ledger must agree with.
fn disk_hlx_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "hlx") {
                total += entry.metadata().unwrap().len();
            }
        }
    }
    total
}

/// Twin comparison: the analyst loop with a kill-and-reopen between
/// iterations 1 and 2 must be indistinguishable (same reuse counters,
/// same metrics, same history) from the loop on an engine that never
/// restarted.
#[test]
fn restarted_engine_matches_never_restarted_twin() {
    let dir = tmpdir("twin");
    workflow(&dir).unwrap(); // writes the shared CSVs

    // -- control: never restarted -------------------------------------------
    let control = SessionManager::new(durable_engine(&dir.join("store-control")));
    let control_session = control
        .create_with_template("alice", workflow(&dir).unwrap(), Some("census-mini"))
        .unwrap();
    let mut control_facts = vec![ReportFacts::of(&control_session.iterate().unwrap())];
    control_session
        .set_learner_param("predictions", LearnerParam::RegParam(0.9))
        .unwrap();
    control_facts.push(ReportFacts::of(&control_session.iterate().unwrap()));
    control_session
        .set_learner_param("predictions", LearnerParam::Epochs(6))
        .unwrap();
    control_facts.push(ReportFacts::of(&control_session.iterate().unwrap()));

    // -- twin: same loop, torn down and reopened mid-way --------------------
    let store = dir.join("store-twin");
    let manager = SessionManager::new(durable_engine(&store));
    let session = manager
        .create_with_template("alice", workflow(&dir).unwrap(), Some("census-mini"))
        .unwrap();
    let mut twin_facts = vec![ReportFacts::of(&session.iterate().unwrap())];
    session
        .set_learner_param("predictions", LearnerParam::RegParam(0.9))
        .unwrap();
    twin_facts.push(ReportFacts::of(&session.iterate().unwrap()));
    drop(session);
    drop(manager);

    let manager = SessionManager::new(durable_engine(&store));
    let recovered =
        manager.recover(|template| (template == "census-mini").then(|| workflow(&dir).unwrap()));
    assert_eq!(recovered, 1, "alice must come back");
    let session = manager.get("alice").unwrap();
    session
        .set_learner_param("predictions", LearnerParam::Epochs(6))
        .unwrap();
    twin_facts.push(ReportFacts::of(&session.iterate().unwrap()));

    assert_eq!(
        twin_facts, control_facts,
        "the restart must be invisible in the reports"
    );
    assert!(
        twin_facts[2].loaded > 0,
        "the post-restart iteration must reuse recovered intermediates"
    );

    // History: same length, same summaries, same diff across the restart
    // boundary.
    let control_versions = control_session.versions();
    let twin_versions = session.versions();
    assert_eq!(twin_versions.len(), control_versions.len());
    for (t, c) in twin_versions.all().iter().zip(control_versions.all()) {
        assert_eq!(t.change_summary, c.change_summary);
        assert_eq!(t.metrics, c.metrics);
    }
    let twin_diff = twin_versions.diff(1, 2).unwrap();
    let control_diff = control_versions.diff(1, 2).unwrap();
    assert_eq!(twin_diff.changed, control_diff.changed);

    // Ledger agrees with both the twin store and the disk ground truth.
    let twin_store = manager.engine().store();
    assert_eq!(
        twin_store.used_bytes(),
        control.engine().store().used_bytes()
    );
    assert_eq!(twin_store.used_bytes(), disk_hlx_bytes(&store));
}

/// Environment variable naming the scratch directory for the kill test's
/// child process; set only by the parent below.
const CHILD_ENV: &str = "HELIX_DURABILITY_CHILD_DIR";

/// The victim process: iterates two durable sessions round-robin
/// forever, appending one line to `progress.txt` after each acknowledged
/// iteration. Runs only when spawned by the parent test (the env var
/// carries the directory); `#[ignore]` keeps it out of normal runs.
#[test]
#[ignore]
fn durability_child_worker() {
    let Ok(dir) = std::env::var(CHILD_ENV) else {
        return; // invoked manually; nothing to do
    };
    let dir = PathBuf::from(dir);
    let manager = SessionManager::new(durable_engine(&dir.join("store")));
    let alice = manager
        .create_with_template("alice", workflow(&dir).unwrap(), Some("census-mini"))
        .unwrap();
    let bob = manager
        .create_with_template("bob", workflow(&dir).unwrap(), Some("census-mini"))
        .unwrap();
    let progress = dir.join("progress.txt");
    let mut log = String::new();
    for i in 0.. {
        let session = if i % 2 == 0 { &alice } else { &bob };
        let flip = if (i / 2) % 2 == 0 { 0.9 } else { 0.1 };
        session
            .set_learner_param("predictions", LearnerParam::RegParam(flip))
            .unwrap();
        let report = session.iterate().unwrap();
        log.push_str(&format!(
            "{} {} {}\n",
            session.name(),
            report.iteration,
            report.loaded()
        ));
        // Atomic replace so the parent never reads a torn line.
        let tmp = dir.join("progress.tmp");
        std::fs::write(&tmp, &log).unwrap();
        std::fs::rename(&tmp, &progress).unwrap();
    }
}

/// SIGKILL mid-iteration: the parent spawns the child above, waits until
/// it has acknowledged several iterations, kills it without warning, and
/// reopens the store — every acknowledged iteration must be there, the
/// ledger must match disk, and both sessions must keep iterating.
#[test]
fn sigkill_mid_iteration_loses_no_acknowledged_work() {
    let dir = tmpdir("kill");
    workflow(&dir).unwrap(); // writes the shared CSVs up front

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args([
            "--ignored",
            "--exact",
            "durability_child_worker",
            "--nocapture",
        ])
        .env(CHILD_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Wait for ≥5 acknowledged iterations (each session ≥2), then kill.
    let progress = dir.join("progress.txt");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let acknowledged = loop {
        if let Some(status) = child.try_wait().unwrap() {
            panic!("child exited early with {status}");
        }
        let lines: Vec<String> = std::fs::read_to_string(&progress)
            .map(|t| t.lines().map(String::from).collect())
            .unwrap_or_default();
        if lines.len() >= 5 {
            break lines;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "child made no progress: {} iterations",
            lines.len()
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    child.kill().unwrap();
    child.wait().unwrap();

    // Count the iterations each session acknowledged before the kill.
    let acked = |name: &str| acknowledged.iter().filter(|l| l.starts_with(name)).count();
    let (alice_acked, bob_acked) = (acked("alice"), acked("bob"));
    assert!(alice_acked >= 2 && bob_acked >= 2);
    let warm_loaded: usize = acknowledged
        .last()
        .unwrap()
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();

    // Reopen and recover. The kill may have landed mid-iteration; that
    // trailing partial iteration is allowed to vanish, acknowledged ones
    // are not.
    let store = dir.join("store");
    let manager = SessionManager::new(durable_engine(&store));
    let recovered =
        manager.recover(|template| (template == "census-mini").then(|| workflow(&dir).unwrap()));
    assert_eq!(recovered, 2, "both sessions must come back");
    assert!(manager.engine().recovery().store.recovered_entries > 0);

    let alice = manager.get("alice").unwrap();
    let bob = manager.get("bob").unwrap();
    assert!(
        alice.iteration() >= alice_acked,
        "alice acknowledged {alice_acked} iterations but recovered {}",
        alice.iteration()
    );
    assert!(
        bob.iteration() >= bob_acked,
        "bob acknowledged {bob_acked} iterations but recovered {}",
        bob.iteration()
    );
    assert_eq!(alice.versions().len(), alice.iteration());
    assert_eq!(bob.versions().len(), bob.iteration());

    // The recovered ledger is exactly what is on disk.
    assert_eq!(
        manager.engine().store().used_bytes(),
        disk_hlx_bytes(&store)
    );

    // And the store is warm: a post-crash iteration reuses at least as
    // much as the last acknowledged pre-crash one did.
    alice
        .set_learner_param("predictions", LearnerParam::Epochs(7))
        .unwrap();
    let resumed = alice.iterate().unwrap();
    assert!(
        resumed.loaded() >= warm_loaded.min(1),
        "post-crash iteration must reuse recovered intermediates"
    );
    assert!(!resumed.metrics.is_empty());
}

/// Environment variable naming the scratch directory for the delta-ingest
/// kill test's child process; set only by the parent below.
const INGEST_CHILD_ENV: &str = "HELIX_INGEST_CHILD_DIR";

/// One oracle batch of census-mini rows for ingest round `i`.
fn ingest_batch(i: usize) -> Vec<String> {
    (0..5)
        .map(|j| {
            let edu = if (i + j).is_multiple_of(3) {
                "PhD"
            } else {
                "HS"
            };
            format!("{edu},{},{}", 22 + (i * 5 + j) % 40, (i + j) % 2)
        })
        .collect()
}

/// The ingest victim: appends one labeled batch per round as a durable
/// data delta, acknowledges it (the `append_data` fsync is the
/// acknowledgement point), then retrains — forever, until killed.
/// `#[ignore]` keeps it out of normal runs.
#[test]
#[ignore]
fn ingest_child_worker() {
    let Ok(dir) = std::env::var(INGEST_CHILD_ENV) else {
        return; // invoked manually; nothing to do
    };
    let dir = PathBuf::from(dir);
    let manager = SessionManager::new(durable_engine(&dir.join("store")));
    let session = manager
        .create_with_template("alice", workflow(&dir).unwrap(), Some("census-mini"))
        .unwrap();
    session.iterate().unwrap();
    let progress = dir.join("ingest-progress.txt");
    let mut log = String::new();
    let mut total = 0usize;
    for i in 0.. {
        let batch = ingest_batch(i);
        total += session.append_data("data", &batch).unwrap();
        // Acknowledge the durable append *before* retraining: these rows
        // must survive a kill landing anywhere after this line.
        log.push_str(&format!("{i} {total}\n"));
        let tmp = dir.join("ingest-progress.tmp");
        std::fs::write(&tmp, &log).unwrap();
        std::fs::rename(&tmp, &progress).unwrap();
        session.iterate().unwrap();
    }
}

/// SIGKILL mid-delta-ingest: the child above appends labeled batches in a
/// tight loop, so the kill can land anywhere in the ingest path — sidecar
/// staged, CSV half-appended, retrain in flight. Reopening must (a) lose
/// no acknowledged delta, (b) heal any half-applied one, and (c) produce
/// an incremental rerun byte-identical to a from-scratch twin on the
/// healed data, still reusing pre-crash partitions.
#[test]
fn sigkill_mid_delta_ingest_loses_no_acknowledged_delta() {
    let dir = tmpdir("ingest-kill");
    workflow(&dir).unwrap(); // writes the shared CSVs up front
    let base_rows = std::fs::read_to_string(dir.join("train.csv"))
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count();

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["--ignored", "--exact", "ingest_child_worker", "--nocapture"])
        .env(INGEST_CHILD_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Wait for ≥3 acknowledged deltas, then kill without warning.
    let progress = dir.join("ingest-progress.txt");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let acknowledged = loop {
        if let Some(status) = child.try_wait().unwrap() {
            panic!("child exited early with {status}");
        }
        let lines: Vec<String> = std::fs::read_to_string(&progress)
            .map(|t| t.lines().map(String::from).collect())
            .unwrap_or_default();
        if lines.len() >= 3 {
            break lines;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "child made no progress: {} deltas",
            lines.len()
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    child.kill().unwrap();
    child.wait().unwrap();

    let acked_rows: usize = acknowledged
        .last()
        .unwrap()
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(acked_rows >= 15, "≥3 batches of 5 rows each");

    // Reopen and recover the session; its AppendData edits replay as
    // no-ops because the CSV itself is the durable record.
    let manager = SessionManager::new(durable_engine(&dir.join("store")));
    let recovered =
        manager.recover(|template| (template == "census-mini").then(|| workflow(&dir).unwrap()));
    assert_eq!(recovered, 1, "alice must come back");
    let alice = manager.get("alice").unwrap();

    // One more delta post-crash. append_data heals any half-applied
    // sidecar before appending, so the file afterwards holds: base rows +
    // every acknowledged row [+ at most one staged-but-unacknowledged
    // batch] + this batch. Nothing acknowledged may be missing.
    let post_batch = ingest_batch(10_000);
    alice.append_data("data", &post_batch).unwrap();
    let healed = std::fs::read_to_string(dir.join("train.csv")).unwrap();
    let healed_rows = healed.lines().filter(|l| !l.trim().is_empty()).count();
    let floor = base_rows + acked_rows + post_batch.len();
    assert!(
        healed_rows >= floor && healed_rows <= floor + 5,
        "healed file has {healed_rows} rows; acknowledged floor is {floor} \
         (+ at most one in-flight batch of 5)"
    );

    // The incremental rerun over the recovered store must match a
    // from-scratch twin handed the healed file verbatim — same metrics,
    // same plan shape — while still reusing pre-crash partitions.
    let inc_report = alice.iterate().unwrap();
    assert!(
        inc_report.chunks_reused() > 0,
        "the post-crash delta run must serve pre-crash partitions from the store"
    );

    let twin_dir = dir.join("twin-data");
    std::fs::create_dir_all(&twin_dir).unwrap();
    std::fs::write(twin_dir.join("train.csv"), &healed).unwrap();
    std::fs::copy(dir.join("test.csv"), twin_dir.join("test.csv")).unwrap();
    let twin_manager = SessionManager::new(durable_engine(&dir.join("twin-store")));
    let twin = twin_manager
        .create("twin", workflow(&twin_dir).unwrap())
        .unwrap();
    let twin_report = twin.iterate().unwrap();

    assert_eq!(
        inc_report.metrics, twin_report.metrics,
        "incremental rerun must be byte-identical to the from-scratch twin"
    );
    let shape = |r: &IterationReport| {
        r.nodes
            .iter()
            .map(|n| (n.name.clone(), format!("{:?}", n.state)))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        shape(&inc_report),
        shape(&twin_report),
        "both runs see a data delta: every node recomputes in each"
    );
}

/// Environment variable naming the scratch directory for the memo kill
/// test's child process; set only by the parent below.
const MEMO_CHILD_ENV: &str = "HELIX_MEMO_CHILD_DIR";

/// The memo victim: runs the census workflow in a loop on a durable
/// engine, alternating the regularization knob, appending one line to
/// `memo-progress.txt` after each acknowledged run. `#[ignore]` keeps it
/// out of normal runs.
#[test]
#[ignore]
fn memo_durability_child_worker() {
    let Ok(dir) = std::env::var(MEMO_CHILD_ENV) else {
        return; // invoked manually; nothing to do
    };
    let dir = PathBuf::from(dir);
    let engine = durable_engine(&dir.join("store"));
    let progress = dir.join("memo-progress.txt");
    let mut log = String::new();
    for i in 0.. {
        // Run 0 computes everything (compute observations); later runs
        // reload materializations (load observations and reuse hits).
        engine.run(&workflow(&dir).unwrap()).unwrap();
        log.push_str(&format!(
            "{i} {}\n",
            engine.optimizer_stats().observations_recorded
        ));
        let tmp = dir.join("memo-progress.tmp");
        std::fs::write(&tmp, &log).unwrap();
        std::fs::rename(&tmp, &progress).unwrap();
    }
}

/// SIGKILL with an accumulated memo: the parent kills the child without
/// warning, reopens the store with an always-replan factor, and asserts
/// the recovered memo is non-empty and feeds the very first post-restart
/// plan (observed decision sources, replan counter advancing).
#[test]
fn sigkill_preserves_memo_and_feeds_first_post_restart_plan() {
    let dir = tmpdir("memo-kill");
    workflow(&dir).unwrap(); // writes the shared CSVs up front

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args([
            "--ignored",
            "--exact",
            "memo_durability_child_worker",
            "--nocapture",
        ])
        .env(MEMO_CHILD_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Wait for ≥3 acknowledged runs, then kill mid-flight.
    let progress = dir.join("memo-progress.txt");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let acknowledged = loop {
        if let Some(status) = child.try_wait().unwrap() {
            panic!("child exited early with {status}");
        }
        let lines: Vec<String> = std::fs::read_to_string(&progress)
            .map(|t| t.lines().map(String::from).collect())
            .unwrap_or_default();
        if lines.len() >= 3 {
            break lines;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "child made no progress: {} runs",
            lines.len()
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    child.kill().unwrap();
    child.wait().unwrap();

    let acked_observations: u64 = acknowledged
        .last()
        .unwrap()
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(acked_observations > 0, "child must have fed the memo");

    // Reopen with factor 1.0: if the memo survived, the very first plan
    // must go through the adaptive path.
    let mut config = EngineConfig::helix(dir.join("store")).with_replan_factor(1.0);
    config.materialization = MaterializationPolicyKind::All;
    config.recomputation = RecomputationPolicy::LoadAllAvailable;
    config.durability = Durability::wal_nosync();
    let engine = Engine::new(config).unwrap();
    assert!(
        engine.recovery().recovered_memo_entries > 0,
        "the memo must survive the kill"
    );
    let stats = engine.optimizer_stats();
    assert!(stats.memo_entries > 0);
    assert!(
        stats.observations_recorded > 0,
        "recovered observation counter must be non-zero"
    );

    let replans_before = stats.replans_triggered;
    let report = engine.run(&workflow(&dir).unwrap()).unwrap();
    assert_eq!(
        engine.optimizer_stats().replans_triggered,
        replans_before + 1,
        "the recovered memo must trigger the first post-restart re-plan"
    );
    assert!(
        report
            .nodes
            .iter()
            .any(|n| n.decision_source == helix::core::DecisionSource::Observed),
        "post-restart plan must be driven by recovered observations"
    );
    assert!(!report.metrics.is_empty());
}

/// WAL-tail fuzz: truncating the last WAL record at every byte boundary
/// simulates every possible torn write; each prefix must open cleanly
/// with at most the torn record's entry missing, and the recovered
/// ledger must match disk exactly.
#[test]
fn torn_wal_tail_opens_cleanly_at_every_truncation_point() {
    use helix::core::store::StoreOptions;

    let dir = tmpdir("fuzz");
    workflow(&dir).unwrap();

    // Populate a single-shard durable store (one WAL file to fuzz).
    let store_dir = dir.join("store");
    {
        let mut config = EngineConfig::helix(&store_dir);
        config.materialization = MaterializationPolicyKind::All;
        config.durability = Durability::wal_nosync();
        config.store_shards = 1;
        let engine = Engine::new(config).unwrap();
        engine.run(&workflow(&dir).unwrap()).unwrap();
    }

    let wal_path = store_dir.join("wal").join("shard-0.wal");
    let wal = std::fs::read(&wal_path).unwrap();
    assert!(!wal.is_empty(), "the run must have written WAL records");
    let baseline = {
        let store = StoreOptions::new(&store_dir)
            .durability(Durability::wal_nosync())
            .shards(1)
            .open()
            .unwrap();
        store.len()
    };
    assert!(baseline > 0);

    // The last record starts after the second-to-last newline.
    let body = &wal[..wal.len() - 1]; // drop the trailing newline
    let last_start = body
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);

    for cut in last_start..wal.len() {
        let scratch = dir.join(format!("scratch-{cut}"));
        copy_dir(&store_dir, &scratch);
        let scratch_wal = scratch.join("wal").join("shard-0.wal");
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&scratch_wal)
            .unwrap();
        file.set_len(cut as u64).unwrap();
        drop(file);

        let store = StoreOptions::new(&scratch)
            .durability(Durability::wal_nosync())
            .shards(1)
            .open()
            .unwrap_or_else(|e| panic!("truncation at byte {cut} refused to open: {e}"));
        assert!(
            store.len() == baseline || store.len() + 1 == baseline,
            "truncation at byte {cut}: {} entries vs baseline {baseline}",
            store.len()
        );
        // Ledger == disk: every counted byte is a real .hlx file. Files
        // from the torn entry may survive on disk unreferenced (disk is
        // ground truth for *presence*; the ledger only counts entries it
        // replayed or adopted).
        drop(store);
        // Reopening the truncated store again must also be clean (the
        // first recovery repaired the tail).
        let reopened = StoreOptions::new(&scratch)
            .durability(Durability::wal_nosync())
            .shards(1)
            .open()
            .unwrap();
        assert!(reopened.len() == baseline || reopened.len() + 1 == baseline);
        std::fs::remove_dir_all(&scratch).unwrap();
    }
}

/// Corrupting the WAL mid-file (not just the tail) must still open: the
/// store truncates at the first bad record and adopts whatever valid
/// `.hlx` files remain on disk.
#[test]
fn corrupt_wal_interior_truncates_and_adopts_disk_files() {
    use helix::core::store::StoreOptions;

    let dir = tmpdir("interior");
    workflow(&dir).unwrap();
    let store_dir = dir.join("store");
    {
        let mut config = EngineConfig::helix(&store_dir);
        config.materialization = MaterializationPolicyKind::All;
        config.durability = Durability::wal_nosync();
        config.store_shards = 1;
        let engine = Engine::new(config).unwrap();
        engine.run(&workflow(&dir).unwrap()).unwrap();
    }
    let wal_path = store_dir.join("wal").join("shard-0.wal");
    let mut wal = std::fs::read(&wal_path).unwrap();
    let mid = wal.len() / 2;
    wal[mid] = 0xFF; // garbage in the middle of some record
    std::fs::write(&wal_path, &wal).unwrap();

    let store = StoreOptions::new(&store_dir)
        .durability(Durability::wal_nosync())
        .shards(1)
        .open()
        .expect("interior corruption must not refuse to open");
    // Everything materialized is still on disk, so adoption brings the
    // store back to full strength even though the log lost records.
    assert!(!store.is_empty());
    assert_eq!(store.used_bytes(), disk_hlx_bytes(&store_dir));
}
