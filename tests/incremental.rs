//! The incremental-data headline guarantee, pinned by a proptest twin:
//! for any random sequence of appended-label deltas, an engine that
//! ingests them incrementally (rerunning after each append with full
//! lineage history and partition reuse) produces **byte-identical**
//! results to a from-scratch engine handed the concatenated data —
//! metrics, per-node plan states, and every stored output file.
//!
//! Each case exercises the full matrix the guarantee covers:
//! parallelism {1, default} × durability {volatile, wal}.
//!
//! Both twins run `MaterializationPolicyKind::All` +
//! `RecomputationPolicy::LoadAllAvailable`, the cost-independent
//! configuration: plan decisions depend only on signatures, never on
//! timings, so the comparison cannot flake on a loaded runner.

use helix::core::{
    Durability, Engine, EngineConfig, MaterializationPolicyKind, RecomputationPolicy, Session,
};
use helix::workloads::census::{
    self, census_workflow, generate_census, CensusDataSpec, CensusParams,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static CASE: AtomicUsize = AtomicUsize::new(0);

/// Small chunks so a ~200-row base spans several partitions and a delta
/// touches only the last one. Set identically by every test closure, so
/// the process-global env write cannot race to different values.
const CHUNK_ROWS: &str = "64";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-incr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(store: &Path, parallelism: usize, durability: Durability) -> EngineConfig {
    let mut config = EngineConfig::helix(store).with_durability(durability);
    if parallelism > 0 {
        config = config.with_parallelism(parallelism);
    }
    config.materialization = MaterializationPolicyKind::All;
    config.recomputation = RecomputationPolicy::LoadAllAvailable;
    config
}

/// Every stored output under `dir`, keyed by file name (signature hex).
fn stored_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension() == Some(std::ffi::OsStr::new("hlx")) {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                out.insert(name, std::fs::read(&path).unwrap());
            }
        }
    }
    out
}

/// (name, state) per node — the plan shape, excluding timings and the
/// change kind (an incremental run reports `TransitivelyAffected` where a
/// fresh lineage reports `Added`; both are correct for their history).
fn plan_shape(report: &helix::core::IterationReport) -> Vec<(String, String)> {
    report
        .nodes
        .iter()
        .map(|n| (n.name.clone(), format!("{:?}", n.state)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn incremental_deltas_match_from_scratch_twin(
        batches in proptest::collection::vec(1usize..40, 1..4),
        oracle_seed in 0u64..1_000,
    ) {
        std::env::set_var("HELIX_DATA_CHUNK_ROWS", CHUNK_ROWS);
        let case = CASE.fetch_add(1, Ordering::Relaxed);

        for (parallelism, par_tag) in [(1, "p1"), (0, "pd")] {
            for (durability, dur_tag) in [
                (Durability::Volatile, "vol"),
                (Durability::wal_nosync(), "wal"),
            ] {
                let work = tmpdir(&format!("twin-{case}-{par_tag}-{dur_tag}"));

                // Incremental twin: base data, then one append + rerun
                // per delta, against one long-lived engine and lineage.
                let inc_data = work.join("inc-data");
                generate_census(
                    &inc_data,
                    &CensusDataSpec { train_rows: 200, test_rows: 60, ..Default::default() },
                )
                .unwrap();
                let inc_engine = Arc::new(
                    Engine::new(config(&work.join("inc-store"), parallelism, durability))
                        .unwrap(),
                );
                let workflow = census_workflow(&CensusParams::initial(&inc_data)).unwrap();
                let mut inc = Session::new(Arc::clone(&inc_engine), "incremental", workflow);
                inc.iterate().unwrap();

                let base = std::fs::read_to_string(inc_data.join("train.csv")).unwrap();
                let mut expected = base;
                let mut chunks_reused_total = 0usize;

                for (step, &batch) in batches.iter().enumerate() {
                    let labels = census::labeled_rows(
                        batch,
                        oracle_seed.wrapping_add(step as u64),
                    );
                    let appended = inc.append_data("data", &labels).unwrap();
                    prop_assert_eq!(appended, batch);
                    for line in &labels {
                        expected.push_str(line);
                        expected.push('\n');
                    }
                    // The append must behave exactly like concatenation.
                    prop_assert_eq!(
                        &std::fs::read_to_string(inc_data.join("train.csv")).unwrap(),
                        &expected
                    );
                    let inc_report = inc.iterate().unwrap();
                    chunks_reused_total += inc_report.chunks_reused();

                    // From-scratch twin: fresh store, fresh lineage, the
                    // concatenated data verbatim.
                    let fresh_data = work.join(format!("fresh-data-{step}"));
                    std::fs::create_dir_all(&fresh_data).unwrap();
                    std::fs::write(fresh_data.join("train.csv"), &expected).unwrap();
                    std::fs::copy(
                        inc_data.join("test.csv"),
                        fresh_data.join("test.csv"),
                    )
                    .unwrap();
                    let fresh_store = work.join(format!("fresh-store-{step}"));
                    let fresh_engine = Arc::new(
                        Engine::new(config(&fresh_store, parallelism, durability))
                            .unwrap(),
                    );
                    let fresh_workflow =
                        census_workflow(&CensusParams::initial(&fresh_data)).unwrap();
                    let mut fresh =
                        Session::new(Arc::clone(&fresh_engine), "from-scratch", fresh_workflow);
                    let fresh_report = fresh.iterate().unwrap();

                    // Metrics byte-identical (exact f64 equality).
                    prop_assert_eq!(
                        &inc_report.metrics, &fresh_report.metrics,
                        "step {} [{} {}]: metrics diverged", step, par_tag, dur_tag
                    );
                    // Same plan shape, node for node.
                    prop_assert_eq!(
                        plan_shape(&inc_report),
                        plan_shape(&fresh_report),
                        "step {} [{} {}]: plan shape diverged", step, par_tag, dur_tag
                    );
                    // Every output the fresh twin stored exists
                    // byte-identical in the incremental store: identical
                    // signatures AND identical encoded bytes.
                    let fresh_files = stored_files(&fresh_store);
                    let inc_files = stored_files(&work.join("inc-store"));
                    prop_assert!(!fresh_files.is_empty(), "fresh twin stored nothing");
                    for (name, bytes) in &fresh_files {
                        let twin = inc_files.get(name);
                        prop_assert!(
                            twin.is_some(),
                            "step {step}: fresh entry {name} missing from incremental store"
                        );
                        prop_assert!(
                            twin.unwrap() == bytes,
                            "step {step}: stored bytes of {name} diverged"
                        );
                    }
                }

                // The deltas only ever touch the tail chunk, so the
                // incremental runs must have reused earlier partitions.
                prop_assert!(
                    chunks_reused_total > 0,
                    "[{} {}] no partition reuse across {} deltas",
                    par_tag, dur_tag, batches.len()
                );
                let _ = std::fs::remove_dir_all(&work);
            }
        }
    }
}

/// Deterministic companion: a reopened durable engine resumes partition
/// reuse across a restart — the delta run after reopen still serves
/// unchanged chunks written before the "crash".
#[test]
fn durable_reopen_resumes_partition_reuse() {
    std::env::set_var("HELIX_DATA_CHUNK_ROWS", CHUNK_ROWS);
    let work = tmpdir("reopen");
    let data = work.join("data");
    generate_census(
        &data,
        &CensusDataSpec {
            train_rows: 200,
            test_rows: 60,
            ..Default::default()
        },
    )
    .unwrap();
    let store = work.join("store");
    {
        let engine = Arc::new(Engine::new(config(&store, 0, Durability::wal_nosync())).unwrap());
        let workflow = census_workflow(&CensusParams::initial(&data)).unwrap();
        let mut session = Session::new(engine, "before", workflow);
        session.iterate().unwrap();
    } // dropped without orderly shutdown

    let engine = Arc::new(Engine::new(config(&store, 0, Durability::wal_nosync())).unwrap());
    let workflow = census_workflow(&CensusParams::initial(&data)).unwrap();
    let mut session = Session::new(engine, "after", workflow);
    session
        .append_data("data", &census::labeled_rows(8, 99))
        .unwrap();
    let report = session.iterate().unwrap();
    assert!(
        report.chunks_reused() > 0,
        "reopened store must serve pre-restart partitions, got {}",
        report.chunks_reused()
    );
    let _ = std::fs::remove_dir_all(&work);
}
