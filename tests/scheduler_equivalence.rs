//! Property tests: wave-scheduled parallel execution is observationally
//! identical to sequential execution on random DAGs.
//!
//! Two layers, mirroring the engine's split:
//!
//! * **Scheduler-level** — the same compiled plan executed at 1 thread and
//!   at N threads must produce identical outputs and identical plan-order
//!   merge streams, both on all-compute plans and on plans with a random
//!   subset of nodes materialized (mixing loads, computes, and prunes).
//! * **Engine-level** — two engines differing only in `parallelism` must
//!   produce identical `IterationReport` counts, signatures, and version
//!   histories across repeated runs of random workflows.

use helix::core::compiler::compile;
use helix::core::cost::CostModel;
use helix::core::ops::{OperatorKind, Udf};
use helix::core::scheduler::{build_waves, execute_plan};
use helix::core::store::IntermediateStore;
use helix::core::{
    Engine, EngineConfig, MaterializationPolicyKind, NodeId, NodeRef, RecomputationPolicy, Workflow,
};
use helix::dataflow::{DataCollection, DataType, Row, Schema, Value};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::SeqCst);
    let dir =
        std::env::temp_dir().join(format!("helix-schedeq-{tag}-{case}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn int_rows(values: &[i64]) -> DataCollection {
    let schema = Schema::of(&[("x", DataType::Int)]);
    let rows = values.iter().map(|&v| Row(vec![Value::Int(v)])).collect();
    DataCollection::from_rows_unchecked(schema, rows)
}

/// Deterministic per-node transform: a keyed fold over all parent cells,
/// so every node's output is a pure function of the DAG shape.
fn mix_udf(salt: i64) -> Udf {
    Udf::new(format!("mix:{salt}"), move |inputs| {
        let mut acc: i64 = salt;
        for dc in inputs {
            for row in dc.rows() {
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(row.get(0).as_int().unwrap_or(0));
            }
        }
        Ok(int_rows(&[acc, acc.wrapping_mul(7)]))
    })
}

/// (node count, forward edges).
type ArbDag = (usize, Vec<(usize, usize)>);

fn arb_dag() -> impl Strategy<Value = ArbDag> {
    (2usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..20).prop_map(move |pairs| {
            pairs
                .into_iter()
                .filter(|&(a, b)| a < b)
                .collect::<Vec<_>>()
        });
        (Just(n), edges)
    })
}

/// Builds the workflow for a random DAG; every sink is an output.
fn dag_workflow(n: usize, edges: &[(usize, usize)]) -> Workflow {
    let mut w = Workflow::new("schedeq");
    let mut refs: Vec<NodeRef> = Vec::new();
    for i in 0..n {
        let parents: Vec<&NodeRef> = edges
            .iter()
            .filter(|&&(_, dst)| dst == i)
            .map(|&(src, _)| &refs[src])
            .collect();
        let r = w
            .add(
                format!("n{i}"),
                OperatorKind::UserDefined(mix_udf(i as i64 + 1)),
                &parents,
            )
            .unwrap();
        refs.push(r);
    }
    for (i, r) in refs.iter().enumerate() {
        if !edges.iter().any(|&(src, _)| src == i) {
            w.output(r);
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All-compute plans: identical outputs and merge order at any
    /// thread count.
    #[test]
    fn parallel_executes_random_dags_identically((n, edges) in arb_dag()) {
        let w = dag_workflow(n, &edges);
        let store = IntermediateStore::open(tmpdir("fresh"), 1 << 24).unwrap();
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();

        let mut merged_seq: Vec<NodeId> = Vec::new();
        let seq = execute_plan(&w, &plan, &store, 1, |id, _, _| {
            merged_seq.push(id);
            Ok(())
        }).unwrap();
        for threads in [2, 8] {
            let mut merged_par: Vec<NodeId> = Vec::new();
            let par = execute_plan(&w, &plan, &store, threads, |id, _, _| {
                merged_par.push(id);
                Ok(())
            }).unwrap();
            prop_assert_eq!(&seq.outputs, &par.outputs, "outputs at {} threads", threads);
            prop_assert_eq!(&merged_seq, &merged_par, "merge order at {} threads", threads);
            // Waves cover exactly the non-pruned nodes at any thread count.
            let executed: usize = par.waves.iter().map(|ws| ws.nodes).sum();
            prop_assert_eq!(executed, plan.compute_count() + plan.load_count());
        }
    }

    /// Mixed load/compute/prune plans: materialize a random node subset,
    /// recompile (loads now shadow ancestors), and require the parallel
    /// run to reproduce the sequential run's outputs exactly.
    #[test]
    fn parallel_handles_random_materialization_subsets(
        (n, edges) in arb_dag(),
        mask in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let w = dag_workflow(n, &edges);
        let store = IntermediateStore::open(tmpdir("mixed"), 1 << 24).unwrap();
        let mut cm = CostModel::new();
        // First pass computes everything so we have real outputs to
        // materialize.
        let plan0 = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let first = execute_plan(&w, &plan0, &store, 1, |_, _, _| Ok(())).unwrap();
        for (i, node) in w.nodes().iter().enumerate() {
            cm.observe_compute(&node.name, 1.0);
            if mask[i % mask.len()] {
                let output = first.outputs[i].as_ref().unwrap();
                store.put(plan0.signatures[i], output).unwrap();
            }
        }

        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let seq = execute_plan(&w, &plan, &store, 1, |_, _, _| Ok(())).unwrap();
        let par = execute_plan(&w, &plan, &store, 8, |_, _, _| Ok(())).unwrap();
        prop_assert_eq!(&seq.outputs, &par.outputs);
        // Loaded results equal their original computation (reuse
        // correctness through the store round-trip).
        for (i, output) in par.outputs.iter().enumerate() {
            if let Some(output) = output {
                prop_assert_eq!(Some(output), first.outputs[i].as_ref(), "node {}", i);
            }
        }
        // Wave structure stays a partition of the non-pruned plan.
        let waves = build_waves(&w, &plan);
        let total: usize = waves.iter().map(Vec::len).sum();
        prop_assert_eq!(total, plan.compute_count() + plan.load_count());
    }

    /// Engine-level: identical reports, signatures, and version history at
    /// 1 vs N threads across two iterations of the same random workflow.
    #[test]
    fn engines_report_identically_across_thread_counts((n, edges) in arb_dag()) {
        let dir = tmpdir("engine");
        // `Never` keeps the second iteration's plan independent of
        // measured timings (materialization under the online policy is
        // timing-sensitive for microsecond UDFs and is covered by the
        // workload-scale tests in end_to_end.rs).
        let config = |suffix: &str, threads: usize| EngineConfig {
            store_dir: dir.join(suffix),
            storage_budget_bytes: 1 << 30,
            recomputation: RecomputationPolicy::Optimal,
            materialization: MaterializationPolicyKind::Never,
            enable_slicing: true,
            parallelism: threads,
        };
        let mut seq = Engine::new(config("seq", 1)).unwrap();
        let mut par = Engine::new(config("par", 8)).unwrap();
        for iteration in 0..2 {
            let w = dag_workflow(n, &edges);
            let plan_seq = seq.compile_only(&w).unwrap();
            let plan_par = par.compile_only(&w).unwrap();
            prop_assert_eq!(&plan_seq.signatures, &plan_par.signatures, "signatures");
            let a = seq.run(&w).unwrap();
            let b = par.run(&w).unwrap();
            prop_assert_eq!(a.loaded(), b.loaded(), "loaded, iter {}", iteration);
            prop_assert_eq!(a.computed(), b.computed(), "computed, iter {}", iteration);
            prop_assert_eq!(a.pruned(), b.pruned(), "pruned, iter {}", iteration);
            prop_assert_eq!(&a.metrics, &b.metrics, "metrics, iter {}", iteration);
            prop_assert_eq!(a.wave_count(), b.wave_count(), "waves, iter {}", iteration);
        }
        prop_assert_eq!(seq.versions().len(), par.versions().len());
    }
}
