//! Property tests: ready-queue parallel execution is observationally
//! identical to sequential execution on random and adversarial DAGs.
//!
//! Three layers, mirroring the engine's split:
//!
//! * **Scheduler-level** — the same compiled plan executed at 1 thread and
//!   at N threads must produce identical outputs and identical plan-order
//!   merge streams, both on all-compute plans and on plans with a random
//!   subset of nodes materialized (mixing loads, computes, and prunes).
//!   Adversarial shapes (a long chain feeding a wide fan-out, stacked
//!   diamonds) target the executor's weak spots: dependency chains that
//!   ready exactly one node at a time and repeated joins where a single
//!   straggler used to gate a whole wave.
//! * **Engine-level** — two engines differing only in `parallelism` must
//!   produce identical `IterationReport` counts, signatures, and version
//!   histories across repeated runs of random workflows.
//! * **Store-level** — the sharded store's budget ledger must stay exact
//!   under concurrent put/evict traffic at every shard count.

use helix::core::compiler::compile;
use helix::core::cost::CostModel;
use helix::core::ops::{OperatorKind, Udf};
use helix::core::recompute::build_waves;
use helix::core::scheduler::{default_parallelism, execute_plan, execute_plan_opts, ExecOpts};
use helix::core::signature::Signature;
use helix::core::store::StoreOptions;
use helix::core::{
    Engine, EngineConfig, MaterializationPolicyKind, NodeId, NodeOutput, NodeRef,
    RecomputationPolicy, Workflow,
};
use helix::dataflow::{DataCollection, DataType, Row, Schema, Value};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::SeqCst);
    let dir =
        std::env::temp_dir().join(format!("helix-schedeq-{tag}-{case}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn int_rows(values: &[i64]) -> DataCollection {
    let schema = Schema::of(&[("x", DataType::Int)]);
    let rows = values.iter().map(|&v| Row(vec![Value::Int(v)])).collect();
    DataCollection::from_rows_unchecked(schema, rows)
}

/// Deterministic per-node transform: a keyed fold over all parent cells,
/// so every node's output is a pure function of the DAG shape.
fn mix_udf(salt: i64) -> Udf {
    Udf::new(format!("mix:{salt}"), move |inputs| {
        let mut acc: i64 = salt;
        for dc in inputs {
            for row in dc.rows() {
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(row.get(0).as_int().unwrap_or(0));
            }
        }
        Ok(int_rows(&[acc, acc.wrapping_mul(7)]))
    })
}

/// (node count, forward edges).
type ArbDag = (usize, Vec<(usize, usize)>);

fn arb_dag() -> impl Strategy<Value = ArbDag> {
    (2usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..20).prop_map(move |pairs| {
            pairs
                .into_iter()
                .filter(|&(a, b)| a < b)
                .collect::<Vec<_>>()
        });
        (Just(n), edges)
    })
}

/// Adversarial shape 1: a chain of `chain_len` nodes whose tail feeds a
/// fan-out of `fan` independent nodes, all joined into one sink. The
/// chain readies exactly one node at a time (worst case for stealing);
/// the fan-out then releases `fan` nodes at once.
fn chain_fanout_dag(chain_len: usize, fan: usize) -> ArbDag {
    let mut edges = Vec::new();
    for i in 1..chain_len {
        edges.push((i - 1, i));
    }
    let tail = chain_len - 1;
    let sink = chain_len + fan;
    for k in 0..fan {
        edges.push((tail, chain_len + k));
        edges.push((chain_len + k, sink));
    }
    (sink + 1, edges)
}

/// Adversarial shape 2: `stacks` diamonds end to end — node a fans to
/// (b, c), which join in d, which fans again, … Every join is a point
/// where the wave barrier used to stall on the slower branch.
fn diamond_stack_dag(stacks: usize) -> ArbDag {
    let mut edges = Vec::new();
    let mut top = 0usize;
    let mut next = 1usize;
    for _ in 0..stacks {
        let (left, right, join) = (next, next + 1, next + 2);
        edges.push((top, left));
        edges.push((top, right));
        edges.push((left, join));
        edges.push((right, join));
        top = join;
        next = join + 1;
    }
    (next, edges)
}

fn arb_adversarial_dag() -> impl Strategy<Value = ArbDag> {
    prop_oneof![
        (2usize..6, 2usize..7).prop_map(|(chain, fan)| chain_fanout_dag(chain, fan)),
        (1usize..5).prop_map(diamond_stack_dag),
    ]
}

/// Row-wise transform the scheduler may partition: each output row is a
/// pure function of the corresponding row of the *first* input plus
/// whole-collection context folded from the remaining inputs (which every
/// slice receives unsliced).
fn row_mix_udf(salt: i64) -> Udf {
    Udf::new(format!("rowmix:{salt}"), move |inputs| {
        let context: i64 = inputs[1..]
            .iter()
            .flat_map(|dc| dc.rows())
            .map(|row| row.get(0).as_int().unwrap_or(0))
            .fold(salt, |acc, v| acc.wrapping_mul(31).wrapping_add(v));
        let out: Vec<i64> = inputs[0]
            .rows()
            .iter()
            .map(|row| {
                row.get(0)
                    .as_int()
                    .unwrap_or(0)
                    .wrapping_mul(31)
                    .wrapping_add(context)
            })
            .collect();
        Ok(int_rows(&out))
    })
}

/// Source emitting `rows` deterministic ints, so downstream row-wise
/// nodes have enough rows to split into many partitions.
fn iota_udf(salt: i64, rows: usize) -> Udf {
    Udf::new(format!("iota:{salt}:{rows}"), move |_inputs| {
        let values: Vec<i64> = (0..rows as i64).map(|v| v.wrapping_add(salt)).collect();
        Ok(int_rows(&values))
    })
}

/// Builds the workflow for a random DAG; every sink is an output.
fn dag_workflow(n: usize, edges: &[(usize, usize)]) -> Workflow {
    let mut w = Workflow::new("schedeq");
    let mut refs: Vec<NodeRef> = Vec::new();
    for i in 0..n {
        let parents: Vec<&NodeRef> = edges
            .iter()
            .filter(|&&(_, dst)| dst == i)
            .map(|&(src, _)| &refs[src])
            .collect();
        let r = w
            .add(
                format!("n{i}"),
                OperatorKind::UserDefined(mix_udf(i as i64 + 1)),
                &parents,
            )
            .unwrap();
        refs.push(r);
    }
    for (i, r) in refs.iter().enumerate() {
        if !edges.iter().any(|&(src, _)| src == i) {
            w.output(r);
        }
    }
    w
}

/// Like [`dag_workflow`] but with data-parallelizable nodes: parentless
/// nodes are `rows`-wide iota sources, and `mask` selects which internal
/// nodes are row-wise ([`OperatorKind::RowUdf`], partitionable) versus
/// aggregating classic UDFs.
fn partitioned_dag_workflow(
    n: usize,
    edges: &[(usize, usize)],
    rows: usize,
    mask: &[bool],
) -> Workflow {
    let mut w = Workflow::new("schedeq-part");
    let mut refs: Vec<NodeRef> = Vec::new();
    for i in 0..n {
        let parents: Vec<&NodeRef> = edges
            .iter()
            .filter(|&&(_, dst)| dst == i)
            .map(|&(src, _)| &refs[src])
            .collect();
        let kind = if parents.is_empty() {
            OperatorKind::UserDefined(iota_udf(i as i64 + 1, rows))
        } else if mask[i % mask.len()] {
            OperatorKind::RowUdf(row_mix_udf(i as i64 + 1))
        } else {
            OperatorKind::UserDefined(mix_udf(i as i64 + 1))
        };
        let r = w.add(format!("n{i}"), kind, &parents).unwrap();
        refs.push(r);
    }
    for (i, r) in refs.iter().enumerate() {
        if !edges.iter().any(|&(src, _)| src == i) {
            w.output(r);
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All-compute plans: identical outputs and merge order at any
    /// thread count.
    #[test]
    fn parallel_executes_random_dags_identically((n, edges) in arb_dag()) {
        let w = dag_workflow(n, &edges);
        let store = StoreOptions::new(tmpdir("fresh")).budget_bytes(1 << 24).open().unwrap();
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();

        let mut merged_seq: Vec<NodeId> = Vec::new();
        let seq = execute_plan(&w, &plan, &store, 1, |id, _, _| {
            merged_seq.push(id);
            Ok(())
        }).unwrap();
        for threads in [2, 8] {
            let mut merged_par: Vec<NodeId> = Vec::new();
            let par = execute_plan(&w, &plan, &store, threads, |id, _, _| {
                merged_par.push(id);
                Ok(())
            }).unwrap();
            prop_assert_eq!(&seq.outputs, &par.outputs, "outputs at {} threads", threads);
            prop_assert_eq!(&merged_seq, &merged_par, "merge order at {} threads", threads);
            // Waves cover exactly the non-pruned nodes at any thread count.
            let executed: usize = par.waves.iter().map(|ws| ws.nodes).sum();
            prop_assert_eq!(executed, plan.compute_count() + plan.load_count());
        }
    }

    /// Mixed load/compute/prune plans: materialize a random node subset,
    /// recompile (loads now shadow ancestors), and require the parallel
    /// run to reproduce the sequential run's outputs exactly.
    #[test]
    fn parallel_handles_random_materialization_subsets(
        (n, edges) in arb_dag(),
        mask in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let w = dag_workflow(n, &edges);
        let store = StoreOptions::new(tmpdir("mixed")).budget_bytes(1 << 24).open().unwrap();
        let mut cm = CostModel::new();
        // First pass computes everything so we have real outputs to
        // materialize.
        let plan0 = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let first = execute_plan(&w, &plan0, &store, 1, |_, _, _| Ok(())).unwrap();
        for (i, node) in w.nodes().iter().enumerate() {
            cm.observe_compute(&node.name, 1.0);
            if mask[i % mask.len()] {
                let output = first.outputs[i].as_ref().unwrap();
                store.put(plan0.signatures[i], output).unwrap();
            }
        }

        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let seq = execute_plan(&w, &plan, &store, 1, |_, _, _| Ok(())).unwrap();
        let par = execute_plan(&w, &plan, &store, 8, |_, _, _| Ok(())).unwrap();
        prop_assert_eq!(&seq.outputs, &par.outputs);
        // Loaded results equal their original computation (reuse
        // correctness through the store round-trip).
        for (i, output) in par.outputs.iter().enumerate() {
            if let Some(output) = output {
                prop_assert_eq!(Some(output), first.outputs[i].as_ref(), "node {}", i);
            }
        }
        // Wave structure stays a partition of the non-pruned plan.
        let waves = build_waves(&w, &plan.order, &plan.states);
        let total: usize = waves.iter().map(Vec::len).sum();
        prop_assert_eq!(total, plan.compute_count() + plan.load_count());
    }

    /// Adversarial shapes: long chains feeding wide fan-outs and stacked
    /// diamonds execute identically to the sequential loop at 2 and 8
    /// threads (2 is where ready-queue/merge-cursor races bite hardest —
    /// one worker and the helping merge thread).
    #[test]
    fn adversarial_shapes_execute_identically((n, edges) in arb_adversarial_dag()) {
        let w = dag_workflow(n, &edges);
        let store = StoreOptions::new(tmpdir("adv")).budget_bytes(1 << 24).open().unwrap();
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let mut merged_seq: Vec<NodeId> = Vec::new();
        let seq = execute_plan(&w, &plan, &store, 1, |id, _, _| {
            merged_seq.push(id);
            Ok(())
        }).unwrap();
        for threads in [2, 8] {
            let mut merged_par: Vec<NodeId> = Vec::new();
            let par = execute_plan(&w, &plan, &store, threads, |id, _, _| {
                merged_par.push(id);
                Ok(())
            }).unwrap();
            prop_assert_eq!(&seq.outputs, &par.outputs, "outputs at {} threads", threads);
            prop_assert_eq!(&merged_seq, &merged_par, "merge order at {} threads", threads);
        }
    }

    /// Sharded-store stress: concurrent puts racing an evictor, at shard
    /// counts from single-lock to plenty, must keep the budget ledger
    /// exact — used bytes equal the sum of surviving entries, never over
    /// budget, and every accepted entry decodes intact.
    #[test]
    fn store_shards_keep_budget_invariants(
        shards in prop_oneof![Just(1usize), Just(2), Just(4), Just(16)],
        writers in 2usize..5,
        per_writer in 4u64..12,
    ) {
        let entry_bytes = NodeOutput::Data(int_rows(&[1, 2])).encode().len() as u64;
        // Budget admits roughly half the candidate entries, so accepts
        // and rejects both happen while the evictor frees space.
        let budget = entry_bytes * (writers as u64 * per_writer / 2).max(2);
        let store = StoreOptions::new(tmpdir("shards")).budget_bytes(budget).shards(shards).open().unwrap();
        let total = writers as u64 * per_writer;
        std::thread::scope(|scope| {
            for w in 0..writers as u64 {
                let store = &store;
                scope.spawn(move || {
                    for k in 0..per_writer {
                        let sig = Signature(w * per_writer + k + 1);
                        let payload = NodeOutput::Data(int_rows(&[sig.0 as i64, -(sig.0 as i64)]));
                        match store.put(sig, &payload) {
                            Ok(_) => {}
                            Err(helix::core::HelixError::Store(_)) => {}
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                });
            }
            let store = &store;
            scope.spawn(move || {
                for round in 0..(total * 2) {
                    let _ = store.evict(Signature(round % total + 1));
                }
            });
        });
        let mut summed = 0u64;
        for sig in 1..=total {
            if let Some(meta) = store.lookup(Signature(sig)) {
                summed += meta.bytes;
                let (out, ..) = store.get(Signature(sig)).unwrap();
                let expect = NodeOutput::Data(int_rows(&[sig as i64, -(sig as i64)]));
                prop_assert_eq!(out, expect, "entry {} corrupt", sig);
            }
        }
        prop_assert_eq!(store.used_bytes(), summed, "ledger out of sync");
        prop_assert!(store.used_bytes() <= store.budget_bytes(), "budget exceeded");
    }

    /// Engine-level: identical reports, signatures, and version history at
    /// 1 vs N threads across two iterations of the same random workflow.
    #[test]
    fn engines_report_identically_across_thread_counts((n, edges) in arb_dag()) {
        let dir = tmpdir("engine");
        // `Never` keeps the second iteration's plan independent of
        // measured timings (materialization under the online policy is
        // timing-sensitive for microsecond UDFs and is covered by the
        // workload-scale tests in end_to_end.rs).
        let config = |suffix: &str, threads: usize| EngineConfig {
            materialization: MaterializationPolicyKind::Never,
            parallelism: threads,
            ..EngineConfig::helix(dir.join(suffix))
        };
        let seq = Engine::new(config("seq", 1)).unwrap();
        let par = Engine::new(config("par", 8)).unwrap();
        for iteration in 0..2 {
            let w = dag_workflow(n, &edges);
            let plan_seq = seq.compile_only(&w).unwrap();
            let plan_par = par.compile_only(&w).unwrap();
            prop_assert_eq!(&plan_seq.signatures, &plan_par.signatures, "signatures");
            let a = seq.run(&w).unwrap();
            let b = par.run(&w).unwrap();
            prop_assert_eq!(a.loaded(), b.loaded(), "loaded, iter {}", iteration);
            prop_assert_eq!(a.computed(), b.computed(), "computed, iter {}", iteration);
            prop_assert_eq!(a.pruned(), b.pruned(), "pruned, iter {}", iteration);
            prop_assert_eq!(&a.metrics, &b.metrics, "metrics, iter {}", iteration);
            prop_assert_eq!(a.wave_count(), b.wave_count(), "waves, iter {}", iteration);
        }
        prop_assert_eq!(seq.versions().len(), par.versions().len());
    }

    /// Operator partitioning: random DAGs with a random subset of
    /// row-wise (partitionable) nodes produce identical outputs and
    /// identical plan-order merge streams across the full matrix of
    /// partition granularity {whole, ~4 slices, max slices} ×
    /// parallelism {1, 2, default}.
    #[test]
    fn partitioned_nodes_execute_identically(
        (n, edges) in arb_dag(),
        rows in 2usize..40,
        mask in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let w = partitioned_dag_workflow(n, &edges, rows, &mask);
        let store = StoreOptions::new(tmpdir("part")).budget_bytes(1 << 24).open().unwrap();
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();

        let base = ExecOpts { parallelism: 1, partition_rows: usize::MAX, ..ExecOpts::default() };
        let mut merged_seq: Vec<NodeId> = Vec::new();
        let seq = execute_plan_opts(&w, &plan, &store, &base, |id, _, _| {
            merged_seq.push(id);
            Ok(())
        }).unwrap();

        // ~4 slices: threshold of ceil(rows/4) partitions a rows-wide
        // node into 4 ranges; threshold 1 forces the per-node maximum.
        for partition_rows in [usize::MAX, rows.div_ceil(4).max(1), 1] {
            for parallelism in [1, 2, default_parallelism()] {
                let opts = ExecOpts { parallelism, partition_rows, ..ExecOpts::default() };
                let mut merged: Vec<NodeId> = Vec::new();
                let par = execute_plan_opts(&w, &plan, &store, &opts, |id, _, _| {
                    merged.push(id);
                    Ok(())
                }).unwrap();
                prop_assert_eq!(
                    &seq.outputs, &par.outputs,
                    "outputs at parallelism {} / partition_rows {}", parallelism, partition_rows
                );
                prop_assert_eq!(
                    &merged_seq, &merged,
                    "merge order at parallelism {} / partition_rows {}", parallelism, partition_rows
                );
            }
        }
    }

    /// Engine-level partitioning: an engine forced to maximum operator
    /// partitioning at default parallelism reports exactly what the
    /// sequential, unpartitioned engine reports — same signatures,
    /// counts, and metrics — across two iterations.
    #[test]
    fn engines_report_identically_with_partitioning(
        (n, edges) in arb_dag(),
        rows in 2usize..40,
        mask in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let dir = tmpdir("engine-part");
        let seq = Engine::new(EngineConfig {
            materialization: MaterializationPolicyKind::Never,
            parallelism: 1,
            ..EngineConfig::helix(dir.join("seq"))
        }).unwrap();
        let par = Engine::new(EngineConfig {
            materialization: MaterializationPolicyKind::Never,
            parallelism: default_parallelism().max(2),
            ..EngineConfig::helix(dir.join("par"))
        }.with_partition_rows(1)).unwrap();
        for iteration in 0..2 {
            let w = partitioned_dag_workflow(n, &edges, rows, &mask);
            let plan_seq = seq.compile_only(&w).unwrap();
            let plan_par = par.compile_only(&w).unwrap();
            prop_assert_eq!(&plan_seq.signatures, &plan_par.signatures, "signatures");
            let a = seq.run(&w).unwrap();
            let b = par.run(&w).unwrap();
            prop_assert_eq!(a.loaded(), b.loaded(), "loaded, iter {}", iteration);
            prop_assert_eq!(a.computed(), b.computed(), "computed, iter {}", iteration);
            prop_assert_eq!(a.pruned(), b.pruned(), "pruned, iter {}", iteration);
            prop_assert_eq!(&a.metrics, &b.metrics, "metrics, iter {}", iteration);
        }
    }
}
