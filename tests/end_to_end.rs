//! Cross-crate integration tests: full workflows through the public API —
//! iteration scripts drive named [`Session`]s over shared engines.

use helix::baselines::SystemKind;
use helix::core::{
    Engine, EngineConfig, IterationReport, NodeState, Session, Workflow, SPLIT_TEST,
};
use helix::workloads::census::{
    census_iterations, census_workflow, generate_census, CensusDataSpec, CensusParams,
};
use helix::workloads::ie::{ie_iterations, ie_workflow, IeParams};
use helix::workloads::news::{generate_news, news_workflow, NewsDataSpec, NewsParams};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn census_full_iteration_script_runs_green() {
    let dir = tmpdir("census-script");
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 600,
            test_rows: 150,
            ..Default::default()
        },
    )
    .unwrap();
    let engine = SystemKind::Helix.build_shared(&dir.join("store")).unwrap();
    let mut params = CensusParams::initial(&dir);
    let mut session = Session::new(
        std::sync::Arc::clone(&engine),
        "census-script",
        census_workflow(&params).unwrap(),
    );
    let mut reports = vec![session.iterate().unwrap()];
    for spec in census_iterations() {
        (spec.apply)(&mut params);
        session.replace_workflow(census_workflow(&params).unwrap());
        reports.push(session.iterate().unwrap());
    }
    assert_eq!(engine.versions().len(), reports.len());
    assert_eq!(session.versions().len(), reports.len());
    // Every iteration after the first reuses something.
    for report in &reports[1..] {
        assert!(
            report.loaded() > 0 || report.pruned() > 0,
            "iteration {} reused nothing",
            report.iteration
        );
    }
    // Metrics exist on every run.
    assert!(reports.iter().all(|r| !r.metrics.is_empty()));
}

#[test]
fn ie_full_iteration_script_runs_green() {
    let dir = tmpdir("ie-script");
    generate_news(
        &dir,
        &NewsDataSpec {
            docs: 80,
            ..Default::default()
        },
    )
    .unwrap();
    let engine = SystemKind::Helix.build_shared(&dir.join("store")).unwrap();
    let mut params = IeParams::initial(&dir);
    let mut session = Session::new(engine, "ie-script", ie_workflow(&params).unwrap());
    session.iterate().unwrap();
    for spec in ie_iterations() {
        (spec.apply)(&mut params);
        session.replace_workflow(ie_workflow(&params).unwrap());
        let report = session.iterate().unwrap();
        assert!(report.metric("f1").is_some());
    }
}

/// The central correctness claim: reuse must never change results. Run the
/// same scripted edits under every system; metrics must be identical at
/// every step (modulo DeepDive's truncation).
#[test]
fn optimizations_never_change_results_census() {
    let dir = tmpdir("equivalence");
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 500,
            test_rows: 120,
            ..Default::default()
        },
    )
    .unwrap();
    let mut all_metrics: Vec<Vec<(String, f64)>> = Vec::new();
    for (k, system) in [
        SystemKind::Helix,
        SystemKind::KeystoneSim,
        SystemKind::HelixUnopt,
    ]
    .iter()
    .enumerate()
    {
        let engine = system.build_shared(&dir.join(format!("store{k}"))).unwrap();
        let mut params = CensusParams::initial(&dir);
        let mut session = Session::new(engine, system.label(), census_workflow(&params).unwrap());
        let mut metrics = session.iterate().unwrap().metrics;
        for spec in census_iterations() {
            (spec.apply)(&mut params);
            session.replace_workflow(census_workflow(&params).unwrap());
            metrics.extend(session.iterate().unwrap().metrics);
        }
        all_metrics.push(metrics);
    }
    assert_eq!(all_metrics[0], all_metrics[1], "Helix vs KeystoneML-sim");
    assert_eq!(all_metrics[0], all_metrics[2], "Helix vs unoptimized Helix");
}

/// Abandoning an edit and rolling back re-validates old materializations:
/// the rerun of version 1 after version 2 should be nearly all loads.
#[test]
fn rollback_reuses_old_materializations() {
    let dir = tmpdir("rollback");
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 500,
            test_rows: 120,
            ..Default::default()
        },
    )
    .unwrap();
    let engine = SystemKind::Helix.build_shared(&dir.join("store")).unwrap();
    let mut params = CensusParams::initial(&dir);
    let mut session = Session::new(engine, "rollback", census_workflow(&params).unwrap());
    session.iterate().unwrap();
    // Explore a branch…
    params.include_marital_status = true;
    session.replace_workflow(census_workflow(&params).unwrap());
    session.iterate().unwrap();
    // …then roll back.
    params.include_marital_status = false;
    session.replace_workflow(census_workflow(&params).unwrap());
    let rollback = session.iterate().unwrap();
    assert!(
        rollback.computed() <= 2,
        "rollback should reload almost everything, computed {}",
        rollback.computed()
    );
}

/// Killing the engine (dropping it) and reopening over the same store
/// directory keeps materializations usable — persistence across sessions.
#[test]
fn store_survives_engine_restart() {
    let dir = tmpdir("restart");
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 400,
            test_rows: 100,
            ..Default::default()
        },
    )
    .unwrap();
    let params = CensusParams::initial(&dir);
    let w = census_workflow(&params).unwrap();
    {
        let engine = SystemKind::Helix.build_engine(&dir.join("store")).unwrap();
        engine.run(&w).unwrap();
        assert!(!engine.store().is_empty());
    }
    let engine = SystemKind::Helix.build_engine(&dir.join("store")).unwrap();
    let report = engine.run(&w).unwrap();
    assert!(
        report.loaded() > 0,
        "fresh engine must reuse the persisted store"
    );
}

/// An evaluation-only change touches nothing upstream of the Reducer.
#[test]
fn eval_change_is_nearly_free() {
    let dir = tmpdir("evalfree");
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 500,
            test_rows: 120,
            ..Default::default()
        },
    )
    .unwrap();
    let engine = SystemKind::Helix.build_shared(&dir.join("store")).unwrap();
    let params = CensusParams::initial(&dir);
    let mut session = Session::new(engine, "eval-free", census_workflow(&params).unwrap());
    let first = session.iterate().unwrap();
    // The evaluation-only change through the typed handle: swap the
    // Reducer's metric set in place.
    session
        .replace_operator(
            "checked",
            helix::core::ops::OperatorKind::Evaluate(helix::core::ops::EvalSpec {
                metrics: vec![
                    helix::core::ops::MetricKind::Accuracy,
                    helix::core::ops::MetricKind::F1,
                ],
                split: SPLIT_TEST.into(),
            }),
        )
        .unwrap();
    let eval_iter = session.iterate().unwrap();
    // Only the Reducer recomputes; its input is loaded.
    let recomputed: Vec<&str> = eval_iter
        .nodes
        .iter()
        .filter(|n| n.state == NodeState::Compute)
        .map(|n| n.name.as_str())
        .collect();
    assert_eq!(recomputed, vec!["checked"], "recomputed: {recomputed:?}");
    assert!(
        eval_iter.total_secs < first.total_secs / 2.0,
        "eval-only iteration ({:.3}s) should be far below the initial ({:.3}s)",
        eval_iter.total_secs,
        first.total_secs
    );
}

/// The split column survives the whole pipeline: predictions evaluated on
/// the test split only.
#[test]
fn evaluation_uses_test_split() {
    let dir = tmpdir("split");
    // Train is separable, test is label-flipped: test accuracy must be 0.
    std::fs::write(dir.join("train.csv"), "a,1\nb,0\n".repeat(50)).unwrap();
    std::fs::write(dir.join("test.csv"), "a,0\nb,1\n".repeat(10)).unwrap();
    let mut w = helix::core::Workflow::new("split-check");
    let data = w
        .csv_source("data", dir.join("train.csv"), Some(dir.join("test.csv")))
        .unwrap();
    let rows = w
        .csv_scanner(
            "rows",
            &data,
            &[
                ("x", helix::dataflow::DataType::Str),
                ("y", helix::dataflow::DataType::Int),
            ],
        )
        .unwrap();
    let x = w
        .field_extractor(
            "x",
            &rows,
            "x",
            helix::core::ops::ExtractorKind::Categorical,
        )
        .unwrap();
    let y = w
        .field_extractor("y", &rows, "y", helix::core::ops::ExtractorKind::Numeric)
        .unwrap();
    let examples = w.assemble("examples", &rows, &[&x], &y).unwrap();
    let preds = w.learner("preds", &examples, Default::default()).unwrap();
    let checked = w
        .evaluate(
            "checked",
            &preds,
            helix::core::ops::EvalSpec {
                metrics: vec![helix::core::ops::MetricKind::Accuracy],
                split: SPLIT_TEST.into(),
            },
        )
        .unwrap();
    w.output(&checked);
    let engine = SystemKind::Helix.build_engine(&dir.join("store")).unwrap();
    let report = engine.run(&w).unwrap();
    assert_eq!(
        report.metric("accuracy"),
        Some(0.0),
        "flipped test labels ⇒ 0 accuracy"
    );
}

// --- Cross-workload parallel/sequential equivalence ------------------------

/// Runs `build(iteration)` workflows through four fresh engines — the
/// deterministic materialize-`All` policy and the Helix online policy,
/// each at 1 thread and at `threads` — for two iterations.
///
/// Under `All`, every decision is timing-independent, so the harness
/// asserts **strict** equality of loaded/computed/pruned counts, the full
/// per-node materialization set, and metrics — pinning down exactly what
/// the wave scheduler changed (execution) with nothing else varying.
/// Under the Helix online policy, per-node materialization of
/// microsecond-scale nodes is decided by measured wall times (two
/// sequential runs flip those too), so the harness asserts the semantic
/// guarantees: identical metrics every iteration and reuse on the second.
///
/// Returns the second-iteration Helix-policy `(sequential, parallel)`
/// reports.
fn assert_parallel_equivalence(
    tag: &str,
    threads: usize,
    mut build: impl FnMut(usize) -> Workflow,
) -> (IterationReport, IterationReport) {
    let dir = tmpdir(tag);
    let all_config = |suffix: &str, threads: usize| {
        let mut config = EngineConfig::helix(dir.join(suffix)).with_parallelism(threads);
        config.materialization = helix::core::MaterializationPolicyKind::All;
        config
    };
    let all_seq = Engine::new(all_config("store-all-seq", 1)).unwrap();
    let all_par = Engine::new(all_config("store-all-par", threads)).unwrap();
    let seq = Engine::new(EngineConfig::helix(dir.join("store-seq")).with_parallelism(1)).unwrap();
    let par =
        Engine::new(EngineConfig::helix(dir.join("store-par")).with_parallelism(threads)).unwrap();

    let mut last = None;
    for iteration in 0..2 {
        let w = build(iteration);

        // Deterministic-policy pair: everything must match exactly.
        let a = all_seq.run(&w).unwrap();
        let b = all_par.run(&w).unwrap();
        assert_eq!(
            a.loaded(),
            b.loaded(),
            "{tag}[all] iter {iteration}: loaded"
        );
        assert_eq!(
            a.computed(),
            b.computed(),
            "{tag}[all] iter {iteration}: computed"
        );
        assert_eq!(
            a.pruned(),
            b.pruned(),
            "{tag}[all] iter {iteration}: pruned"
        );
        assert_eq!(a.metrics, b.metrics, "{tag}[all] iter {iteration}: metrics");
        let materialized = |r: &IterationReport| -> Vec<String> {
            r.nodes
                .iter()
                .filter(|n| n.materialized)
                .map(|n| n.name.clone())
                .collect()
        };
        assert_eq!(
            materialized(&a),
            materialized(&b),
            "{tag}[all] iter {iteration}: materialization set"
        );

        // Helix-online pair: results must be identical; reuse must work
        // at both thread counts.
        let ha = seq.run(&w).unwrap();
        let hb = par.run(&w).unwrap();
        assert_eq!(ha.metrics, hb.metrics, "{tag} iter {iteration}: metrics");
        assert_eq!(
            ha.metrics, a.metrics,
            "{tag} iter {iteration}: online vs All policy metrics"
        );
        if iteration > 0 {
            assert!(ha.loaded() > 0, "{tag}: sequential reuse");
            assert!(hb.loaded() > 0, "{tag}: parallel reuse");
        }
        last = Some((ha, hb));
    }
    last.unwrap()
}

#[test]
fn census_parallel_matches_sequential_and_reuses() {
    let dir = tmpdir("par-census-data");
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 600,
            test_rows: 150,
            ..Default::default()
        },
    )
    .unwrap();
    let mut params = CensusParams::initial(&dir);
    params.include_marital_status = true;
    params.include_interaction = true;
    let (seq, par) = assert_parallel_equivalence("par-census", 4, |iteration| {
        // Second iteration: an ML-only change, so pre-processing reloads.
        params.reg_param = if iteration == 0 { 0.1 } else { 0.01 };
        census_workflow(&params).unwrap()
    });
    assert!(seq.loaded() > 0, "second census iteration must reuse");
    assert_eq!(seq.loaded(), par.loaded());
}

#[test]
fn news_parallel_matches_sequential_and_reuses() {
    let dir = tmpdir("par-news-data");
    // Large enough that feature extraction clearly out-costs store I/O;
    // smaller corpora put materialization decisions inside timing noise
    // and the seq/par materialization sets can drift apart.
    generate_news(
        &dir,
        &NewsDataSpec {
            docs: 500,
            ..Default::default()
        },
    )
    .unwrap();
    let mut params = NewsParams::initial(&dir);
    let (seq, _par) = assert_parallel_equivalence("par-news", 4, |iteration| {
        params.reg_param = if iteration == 0 { 0.1 } else { 0.01 };
        news_workflow(&params).unwrap()
    });
    assert!(seq.loaded() > 0, "second news iteration must reuse");
}

#[test]
fn ie_parallel_matches_sequential_and_reuses() {
    let dir = tmpdir("par-ie-data");
    generate_news(
        &dir,
        &NewsDataSpec {
            docs: 150,
            ..Default::default()
        },
    )
    .unwrap();
    let mut params = IeParams::initial(&dir);
    params.feat_context = true;
    params.feat_gazetteer = true;
    let (seq, _par) = assert_parallel_equivalence("par-ie", 4, |iteration| {
        params.reg_param = if iteration == 0 { 0.1 } else { 0.01 };
        ie_workflow(&params).unwrap()
    });
    assert!(seq.loaded() > 0, "second IE iteration must reuse");
}

/// The parallel engine's report carries wave timings whose node total
/// matches the per-node report.
#[test]
fn wave_reports_cover_every_executed_node() {
    let dir = tmpdir("waves-cover");
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 400,
            test_rows: 100,
            ..Default::default()
        },
    )
    .unwrap();
    let params = CensusParams::initial(&dir);
    let engine = Engine::new(EngineConfig::helix(dir.join("store")).with_parallelism(4)).unwrap();
    let report = engine.run(&census_workflow(&params).unwrap()).unwrap();
    let wave_nodes: usize = report.waves.iter().map(|w| w.nodes).sum();
    assert_eq!(wave_nodes, report.loaded() + report.computed());
    assert!(report.wave_count() > 1, "census has dependency depth");
    assert!(report.exec_secs() > 0.0);
}
