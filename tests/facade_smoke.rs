//! Workspace smoke test: every `helix::*` facade re-export resolves, and a
//! trivial workflow compiles and runs end-to-end through the public API.
//!
//! This is the canary CI relies on to catch facade wiring regressions
//! (a crate dropped from the root manifest, a renamed re-export) before
//! anything subtler runs.

use helix::core::ops::{EvalSpec, ExtractorKind, LearnerSpec, MetricKind};
use helix::core::session::{LearnerParam, SessionManager};
use helix::core::{Engine, EngineConfig, Workflow, SPLIT_TEST};
use helix::dataflow::{DataType, Value};
use helix::mincut::{Project, ProjectSelection};
use helix::ml::SparseVector;
use std::sync::Arc;

#[test]
fn every_facade_module_resolves() {
    // One concrete item per re-exported subsystem; the function body is the
    // assertion (it only compiles if every path resolves).
    let _ = helix::baselines::SystemKind::Helix;
    let _ = helix::core::recompute::NodeState::Compute;
    let _ = helix::core::LearnerParam::RegParam(0.1);
    let _ = helix::core::session::WorkflowEdit::AddOutput { node: "x".into() };
    let _ = helix::dataflow::Value::Int(1);
    let _ = helix::mincut::CAP_INF;
    let _ = SparseVector::default();
    let _ = helix::nlp::tokenize("Helix accelerates iteration.");
    let _ = helix::workloads::IterationStage::MachineLearning;
    assert_eq!(Value::Int(1).as_int(), Some(1));
}

#[test]
fn mincut_facade_solves_a_tiny_instance() {
    let mut psp = ProjectSelection::new();
    let gain = psp.add_project(Project::new(5));
    let cost = psp.add_project(Project::new(-2));
    psp.require(gain, cost);
    let result = psp.solve();
    assert!(result.selected[gain] && result.selected[cost]);
    assert_eq!(result.profit, 3);
}

#[test]
fn trivial_workflow_runs_end_to_end_and_reuses() {
    let dir = std::env::temp_dir().join(format!("helix-facade-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // Big enough that recomputing the pipeline clearly costs more than
    // loading materialized results; at tens of rows the margin is within
    // scheduler noise and the reuse assertion below gets flaky.
    std::fs::write(dir.join("train.csv"), "hi,1\nlo,0\n".repeat(2_000)).unwrap();
    std::fs::write(dir.join("test.csv"), "hi,1\nlo,0\n".repeat(400)).unwrap();

    let mut w = Workflow::new("facade-smoke");
    let data = w
        .csv_source("data", dir.join("train.csv"), Some(dir.join("test.csv")))
        .unwrap();
    let rows = w
        .csv_scanner(
            "rows",
            &data,
            &[("grade", DataType::Str), ("target", DataType::Int)],
        )
        .unwrap();
    let grade = w
        .field_extractor("grade_f", &rows, "grade", ExtractorKind::Categorical)
        .unwrap();
    let target = w
        .field_extractor("target_f", &rows, "target", ExtractorKind::Numeric)
        .unwrap();
    let income = w.assemble("examples", &rows, &[&grade], &target).unwrap();
    let preds = w
        .learner("predictions", &income, LearnerSpec::default())
        .unwrap();
    let checked = w
        .evaluate(
            "checked",
            &preds,
            EvalSpec {
                metrics: vec![MetricKind::Accuracy],
                split: SPLIT_TEST.into(),
            },
        )
        .unwrap();
    w.output(&preds);
    w.output(&checked);

    let engine = Arc::new(Engine::new(EngineConfig::helix(dir.join("store"))).unwrap());
    let manager = SessionManager::new(engine);
    let session = manager.create("smoke", w).unwrap();
    let first = session.iterate().unwrap();
    assert_eq!(first.metric("accuracy"), Some(1.0), "separable toy data");

    let second = session.iterate().unwrap();
    assert_eq!(second.metric("accuracy"), Some(1.0));
    assert!(second.loaded() > 0, "rerun must reuse materialized results");

    // The typed edit handle works through the facade too.
    session
        .set_learner_param("predictions", LearnerParam::RegParam(0.01))
        .unwrap();
    let third = session.iterate().unwrap();
    assert_eq!(third.change_summary, "set predictions reg_param=0.01");

    let _ = std::fs::remove_dir_all(&dir);
}
