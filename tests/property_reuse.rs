//! Property test over random edit sequences: whatever sequence of knob
//! turns a "user" performs, the optimized engine's metrics must match a
//! from-scratch engine's, and plans must stay feasible.

use helix::baselines::SystemKind;
use helix::workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// One random knob turn.
#[derive(Debug, Clone, Copy)]
enum Edit {
    Reg(u8),
    Epochs(u8),
    ToggleMs,
    ToggleInteraction,
    ToggleCl,
    Bins(u8),
    MetricsF1,
    MetricsAccuracy,
}

fn apply(edit: Edit, params: &mut CensusParams) {
    use helix::core::ops::MetricKind;
    match edit {
        Edit::Reg(r) => params.reg_param = 0.01 + f64::from(r) * 0.05,
        Edit::Epochs(e) => params.epochs = 2 + usize::from(e % 4),
        Edit::ToggleMs => params.include_marital_status = !params.include_marital_status,
        Edit::ToggleInteraction => params.include_interaction = !params.include_interaction,
        Edit::ToggleCl => params.include_capital_loss = !params.include_capital_loss,
        Edit::Bins(b) => params.age_bins = 2 + usize::from(b % 10),
        Edit::MetricsF1 => {
            params.metrics = vec![MetricKind::F1, MetricKind::Precision, MetricKind::Recall]
        }
        Edit::MetricsAccuracy => params.metrics = vec![MetricKind::Accuracy],
    }
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        any::<u8>().prop_map(Edit::Reg),
        any::<u8>().prop_map(Edit::Epochs),
        Just(Edit::ToggleMs),
        Just(Edit::ToggleInteraction),
        Just(Edit::ToggleCl),
        any::<u8>().prop_map(Edit::Bins),
        Just(Edit::MetricsF1),
        Just(Edit::MetricsAccuracy),
    ]
}

fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-prop-data-{}", std::process::id()));
    if !dir.join("train.csv").exists() {
        generate_census(
            &dir,
            &CensusDataSpec {
                train_rows: 200,
                test_rows: 60,
                ..Default::default()
            },
        )
        .unwrap();
    }
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn random_edit_sequences_preserve_results(edits in proptest::collection::vec(arb_edit(), 1..5)) {
        let dir = data_dir();
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let work = std::env::temp_dir()
            .join(format!("helix-prop-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&work);

        let mut params = CensusParams::initial(&dir);
        let w0 = census_workflow(&params).unwrap();
        let mut helix_session = helix::core::Session::new(
            SystemKind::Helix.build_shared(&work.join("h")).unwrap(),
            "optimized",
            w0.clone(),
        );
        let mut fresh_session = helix::core::Session::new(
            SystemKind::KeystoneSim.build_shared(&work.join("k")).unwrap(),
            "from-scratch",
            w0,
        );
        let a = helix_session.iterate().unwrap();
        let b = fresh_session.iterate().unwrap();
        prop_assert_eq!(a.metrics, b.metrics);

        for edit in edits {
            apply(edit, &mut params);
            let w = census_workflow(&params).unwrap();
            helix_session.replace_workflow(w.clone());
            fresh_session.replace_workflow(w);
            let a = helix_session.iterate().unwrap();
            let b = fresh_session.iterate().unwrap();
            prop_assert_eq!(&a.metrics, &b.metrics, "edit {:?} diverged", edit);
        }
        let _ = std::fs::remove_dir_all(&work);
    }
}
