#!/usr/bin/env bash
# Checks that every intra-repo markdown link in docs/ and the top-level
# markdown files resolves to an existing file or directory. CI runs this
# in the docs job; run it locally as `bash tools/check_doc_links.sh`.
set -u

cd "$(dirname "$0")/.."
status=0
checked=0

for file in docs/*.md README.md ROADMAP.md; do
  [ -f "$file" ] || continue
  dir=$(dirname "$file")
  # Extract inline markdown link targets: [text](target)
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    # Strip any #fragment.
    path="${target%%#*}"
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN  $file -> $target" >&2
      status=1
    fi
  done < <(grep -o '\](\([^)]*\))' "$file" | sed 's/^](//; s/)$//')
done

if [ "$checked" -eq 0 ]; then
  echo "check_doc_links: no links found — extraction broke?" >&2
  exit 1
fi
if [ "$status" -eq 0 ]; then
  echo "check_doc_links: all $checked intra-repo links resolve"
fi
exit "$status"
