//! Helix — accelerating human-in-the-loop machine learning.
//!
//! This facade crate re-exports the whole Helix workspace so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`core`] — the Helix system: workflow DSL, DAG compiler, recomputation
//!   and materialization optimizers, execution engine, versioning, and the
//!   session layer ([`core::session`]) that multiplexes many concurrent
//!   analysts over one shared engine.
//! * [`dataflow`] — the in-memory dataflow substrate (data collections,
//!   schemas, CSV, binary codec).
//! * [`ml`] — learners, feature spaces, and evaluation metrics.
//! * [`nlp`] — text processing for the information-extraction application.
//! * [`mincut`] — max-flow / project-selection solvers.
//! * [`workloads`] — the paper's Census and IE applications plus synthetic
//!   data generators and iteration scripts.
//! * [`baselines`] — DeepDive-style, KeystoneML-style, and unoptimized-Helix
//!   execution policies.
//! * [`server`] — the dependency-free HTTP/1.1 front end serving sessions to
//!   remote analysts (see `docs/API.md` for the wire protocol).

#![warn(missing_docs)]

pub use helix_baselines as baselines;
pub use helix_core as core;
pub use helix_dataflow as dataflow;
pub use helix_mincut as mincut;
pub use helix_ml as ml;
pub use helix_nlp as nlp;
pub use helix_server as server;
pub use helix_workloads as workloads;
