//! Error type for the dataflow substrate.

use std::fmt;

/// Errors raised by the dataflow substrate.
#[derive(Debug)]
pub enum DataflowError {
    /// A row's arity or a value's type did not match the schema.
    SchemaMismatch(String),
    /// A named column does not exist.
    UnknownColumn(String),
    /// Malformed input while parsing CSV.
    Csv(String),
    /// Malformed bytes while decoding the binary format.
    Codec(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A user-defined function failed.
    Udf(String),
    /// A parallel worker thread panicked; the payload message is carried
    /// so callers can report it instead of aborting the process.
    WorkerPanic(String),
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            DataflowError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            DataflowError::Csv(msg) => write!(f, "csv error: {msg}"),
            DataflowError::Codec(msg) => write!(f, "codec error: {msg}"),
            DataflowError::Io(err) => write!(f, "io error: {err}"),
            DataflowError::Udf(msg) => write!(f, "udf error: {msg}"),
            DataflowError::WorkerPanic(msg) => write!(f, "worker panic: {msg}"),
        }
    }
}

impl std::error::Error for DataflowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataflowError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataflowError {
    fn from(err: std::io::Error) -> Self {
        DataflowError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let err = DataflowError::UnknownColumn("age".into());
        assert_eq!(err.to_string(), "unknown column: age");
        let err = DataflowError::Csv("unterminated quote".into());
        assert!(err.to_string().contains("unterminated quote"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: DataflowError = io.into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
