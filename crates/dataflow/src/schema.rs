//! Column schemas for data collections.

use crate::fx::FxHashMap;
use crate::{DataflowError, Result};
use std::fmt;
use std::sync::Arc;

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean flag.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Nested list.
    List,
    /// Any type accepted (UDF outputs, columns with mixed content).
    Any,
}

impl DataType {
    /// Whether a value of type `other` may be stored in a column of `self`.
    pub fn accepts(self, other: DataType) -> bool {
        self == DataType::Any || other == DataType::Any || self == other
    }

    /// Stable single-byte tag used by the binary codec.
    pub fn tag(self) -> u8 {
        match self {
            DataType::Bool => 0,
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Str => 3,
            DataType::List => 4,
            DataType::Any => 5,
        }
    }

    /// Inverse of [`DataType::tag`].
    pub fn from_tag(tag: u8) -> Result<DataType> {
        Ok(match tag {
            0 => DataType::Bool,
            1 => DataType::Int,
            2 => DataType::Float,
            3 => DataType::Str,
            4 => DataType::List,
            5 => DataType::Any,
            other => return Err(DataflowError::Codec(format!("bad dtype tag {other}"))),
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::List => "list",
            DataType::Any => "any",
        };
        write!(f, "{name}")
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered set of uniquely named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    index: FxHashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from fields.
    ///
    /// # Errors
    /// Returns [`DataflowError::SchemaMismatch`] on duplicate field names.
    pub fn new(fields: Vec<Field>) -> Result<Arc<Schema>> {
        let mut index = FxHashMap::default();
        for (i, field) in fields.iter().enumerate() {
            if index.insert(field.name.clone(), i).is_some() {
                return Err(DataflowError::SchemaMismatch(format!(
                    "duplicate field name `{}`",
                    field.name
                )));
            }
        }
        Ok(Arc::new(Schema { fields, index }))
    }

    /// Shorthand: builds a schema from `(name, dtype)` pairs.
    pub fn of(pairs: &[(&str, DataType)]) -> Arc<Schema> {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
            .expect("static schema literals must not contain duplicates")
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| DataflowError::UnknownColumn(name.to_string()))
    }

    /// Whether a column exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// The field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// A new schema with one extra column appended.
    pub fn with_field(&self, field: Field) -> Result<Arc<Schema>> {
        let mut fields = self.fields.clone();
        fields.push(field);
        Schema::new(fields)
    }

    /// A new schema restricted to the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<(Arc<Schema>, Vec<usize>)> {
        let mut fields = Vec::with_capacity(names.len());
        let mut indices = Vec::with_capacity(names.len());
        for name in names {
            let idx = self.index_of(name)?;
            fields.push(self.fields[idx].clone());
            indices.push(idx);
        }
        Ok((Schema::new(fields)?, indices))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_builds_and_indexes() {
        let schema = Schema::of(&[("age", DataType::Int), ("name", DataType::Str)]);
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.index_of("name").unwrap(), 1);
        assert!(schema.contains("age"));
        assert!(!schema.contains("salary"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn unknown_column_is_an_error() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        assert!(matches!(
            schema.index_of("b"),
            Err(DataflowError::UnknownColumn(_))
        ));
    }

    #[test]
    fn project_reorders_and_reports_indices() {
        let schema = Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Str),
            ("c", DataType::Float),
        ]);
        let (projected, indices) = schema.project(&["c", "a"]).unwrap();
        assert_eq!(indices, vec![2, 0]);
        assert_eq!(projected.field(0).name, "c");
        assert_eq!(projected.field(1).name, "a");
    }

    #[test]
    fn with_field_appends() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let wider = schema.with_field(Field::new("b", DataType::Str)).unwrap();
        assert_eq!(wider.len(), 2);
        assert!(schema.with_field(Field::new("a", DataType::Str)).is_err());
    }

    #[test]
    fn dtype_tags_round_trip() {
        for dtype in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::List,
            DataType::Any,
        ] {
            assert_eq!(DataType::from_tag(dtype.tag()).unwrap(), dtype);
        }
        assert!(DataType::from_tag(99).is_err());
    }

    #[test]
    fn any_accepts_everything() {
        assert!(DataType::Any.accepts(DataType::Int));
        assert!(DataType::Int.accepts(DataType::Any));
        assert!(DataType::Int.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Str));
    }

    #[test]
    fn display_formats() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        assert_eq!(schema.to_string(), "a: int, b: str");
    }
}
