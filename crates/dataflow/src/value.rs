//! The dynamically typed cell value stored in rows.

use std::fmt;

/// A single cell in a [`Row`](crate::Row).
///
/// Helix's pre-processing data structures keep features "in human-readable
/// format for ease of development" (paper §2.1); `Value` is that format.
/// Conversion to ML-ready vectors happens in `helix-ml`'s feature space.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing / not applicable.
    Null,
    /// Boolean flag.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Nested list (e.g. token lists, candidate spans, feature name lists).
    List(Vec<Value>),
}

impl Value {
    /// The [`DataType`](crate::DataType) tag of this value.
    pub fn data_type(&self) -> crate::DataType {
        match self {
            Value::Null => crate::DataType::Any,
            Value::Bool(_) => crate::DataType::Bool,
            Value::Int(_) => crate::DataType::Int,
            Value::Float(_) => crate::DataType::Float,
            Value::Str(_) => crate::DataType::Str,
            Value::List(_) => crate::DataType::List,
        }
    }

    /// Whether this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as `bool`, if that is the variant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as `i64`, if that is the variant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` become `f64`, `Bool` becomes 0/1.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Borrow as `&str`, if that is the variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a list, if that is the variant.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes, used by the
    /// materialization optimizer's storage accounting.
    pub fn estimated_bytes(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => 24 + s.len(),
            Value::List(items) => 24 + items.iter().map(Value::estimated_bytes).sum::<usize>(),
        }
    }

    /// Parses a raw CSV field into the requested type, mapping empty
    /// strings and parse failures to `Null` (real-world census data has
    /// missing fields; Helix treats them as nulls rather than erroring).
    pub fn parse_typed(raw: &str, dtype: crate::DataType) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed == "?" {
            return Value::Null;
        }
        match dtype {
            crate::DataType::Bool => match trimmed {
                "true" | "TRUE" | "True" | "1" => Value::Bool(true),
                "false" | "FALSE" | "False" | "0" => Value::Bool(false),
                _ => Value::Null,
            },
            crate::DataType::Int => trimmed
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null),
            crate::DataType::Float => trimmed
                .parse::<f64>()
                .map(Value::Float)
                .unwrap_or(Value::Null),
            crate::DataType::Str => Value::Str(trimmed.to_string()),
            crate::DataType::List | crate::DataType::Any => Value::Str(trimmed.to_string()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::List(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn parse_typed_handles_missing_markers() {
        assert_eq!(Value::parse_typed("", DataType::Int), Value::Null);
        assert_eq!(Value::parse_typed(" ? ", DataType::Str), Value::Null);
        assert_eq!(Value::parse_typed("42", DataType::Int), Value::Int(42));
        assert_eq!(
            Value::parse_typed("4.5", DataType::Float),
            Value::Float(4.5)
        );
        assert_eq!(
            Value::parse_typed("true", DataType::Bool),
            Value::Bool(true)
        );
        assert_eq!(Value::parse_typed("abc", DataType::Int), Value::Null);
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("a".into())]).to_string(),
            "[1, a]"
        );
    }

    #[test]
    fn estimated_bytes_grows_with_content() {
        let small = Value::Str("a".into()).estimated_bytes();
        let big = Value::Str("a".repeat(100)).estimated_bytes();
        assert!(big > small);
        let nested = Value::List(vec![Value::Int(1); 10]).estimated_bytes();
        assert!(nested >= 80);
    }

    #[test]
    fn from_impls_produce_expected_variants() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }
}
