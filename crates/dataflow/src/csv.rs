//! Minimal RFC-4180-style CSV reading and writing.
//!
//! Supports quoted fields (with embedded commas, quotes, and newlines),
//! typed scanning against a [`Schema`], and header handling. This backs the
//! paper's `CSVScanner` operator (Fig. 1a line 3).

use crate::{DataCollection, DataType, DataflowError, Result, Row, Schema, Value};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Parses CSV text into raw string records.
///
/// # Errors
/// [`DataflowError::Csv`] on an unterminated quoted field.
pub fn parse_records(input: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut saw_any = false;

    while let Some(ch) = chars.next() {
        saw_any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match ch {
            '"' => in_quotes = true,
            ',' => {
                record.push(std::mem::take(&mut field));
            }
            '\r' => {
                // Swallow the \n of a \r\n pair if present.
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(DataflowError::Csv("unterminated quoted field".into()));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    // A trailing newline yields a spurious empty record only when input ends
    // with a bare separator line; an entirely empty input yields nothing.
    if !saw_any {
        records.clear();
    }
    Ok(records)
}

/// Parses CSV text into a typed collection using `schema`, optionally
/// skipping a header row. Fields that fail to parse become [`Value::Null`].
///
/// # Errors
/// [`DataflowError::Csv`] if any record's arity differs from the schema.
pub fn scan(
    input: &str,
    schema: &std::sync::Arc<Schema>,
    has_header: bool,
) -> Result<DataCollection> {
    let records = parse_records(input)?;
    let skip = usize::from(has_header && !records.is_empty());
    let mut rows = Vec::with_capacity(records.len().saturating_sub(skip));
    for (i, record) in records.iter().enumerate().skip(skip) {
        if record.len() != schema.len() {
            return Err(DataflowError::Csv(format!(
                "record {i} has {} fields, schema expects {}",
                record.len(),
                schema.len()
            )));
        }
        let values = record
            .iter()
            .enumerate()
            .map(|(col, raw)| Value::parse_typed(raw, schema.field(col).dtype))
            .collect();
        rows.push(Row(values));
    }
    DataCollection::new(std::sync::Arc::clone(schema), rows)
}

/// Reads and scans a CSV file.
pub fn scan_file(
    path: &Path,
    schema: &std::sync::Arc<Schema>,
    has_header: bool,
) -> Result<DataCollection> {
    let input = std::fs::read_to_string(path)?;
    scan(&input, schema, has_header)
}

/// Serializes a collection to CSV with a header row.
pub fn to_csv_string(dc: &DataCollection) -> String {
    let mut out = String::new();
    let names: Vec<&str> = dc
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    push_record(&mut out, names.iter().copied());
    for row in dc.rows() {
        let cells: Vec<String> = row.values().iter().map(Value::to_string).collect();
        push_record(&mut out, cells.iter().map(String::as_str));
    }
    out
}

/// Writes a collection to a CSV file with a header row.
pub fn write_file(dc: &DataCollection, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(to_csv_string(dc).as_bytes())?;
    writer.flush()?;
    Ok(())
}

fn push_record<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let mut first = true;
    for field in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if field.contains([',', '"', '\n', '\r']) {
            out.push('"');
            for ch in field.chars() {
                if ch == '"' {
                    out.push('"');
                }
                out.push(ch);
            }
            out.push('"');
        } else {
            out.push_str(field);
        }
    }
    out.push('\n');
}

/// Infers a per-column [`DataType`] by examining up to `sample` records
/// (header excluded). Columns where every sampled value parses as int become
/// `Int`, else float → `Float`, else `Str`.
pub fn infer_schema(input: &str, sample: usize) -> Result<std::sync::Arc<Schema>> {
    let records = parse_records(input)?;
    let Some(header) = records.first() else {
        return Err(DataflowError::Csv(
            "cannot infer schema of empty input".into(),
        ));
    };
    let n = header.len();
    let mut could_be_int = vec![true; n];
    let mut could_be_float = vec![true; n];
    for record in records.iter().skip(1).take(sample) {
        for (i, raw) in record.iter().enumerate().take(n) {
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed == "?" {
                continue;
            }
            if trimmed.parse::<i64>().is_err() {
                could_be_int[i] = false;
            }
            if trimmed.parse::<f64>().is_err() {
                could_be_float[i] = false;
            }
        }
    }
    let fields = header
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let dtype = if could_be_int[i] {
                DataType::Int
            } else if could_be_float[i] {
                DataType::Float
            } else {
                DataType::Str
            };
            crate::Field::new(name.trim(), dtype)
        })
        .collect();
    Schema::new(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn parses_plain_records() {
        let recs = parse_records("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn parses_quotes_commas_and_newlines() {
        let recs = parse_records("\"a,b\",\"say \"\"hi\"\"\",\"two\nlines\"\n").unwrap();
        assert_eq!(recs, vec![vec!["a,b", "say \"hi\"", "two\nlines"]]);
    }

    #[test]
    fn handles_crlf_and_missing_final_newline() {
        let recs = parse_records("a,b\r\nc,d").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(parse_records("").unwrap().is_empty());
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(parse_records("\"oops").is_err());
    }

    #[test]
    fn scan_types_fields_and_nulls_failures() {
        let schema = Schema::of(&[("age", DataType::Int), ("name", DataType::Str)]);
        let dc = scan("age,name\n34,ann\n?,bob\n", &schema, true).unwrap();
        assert_eq!(dc.len(), 2);
        assert_eq!(dc.rows()[0].get(0), &Value::Int(34));
        assert_eq!(dc.rows()[1].get(0), &Value::Null);
    }

    #[test]
    fn scan_rejects_ragged_records() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        assert!(scan("1,2\n3\n", &schema, false).is_err());
    }

    #[test]
    fn round_trip_through_csv() {
        let schema = Schema::of(&[("x", DataType::Str), ("n", DataType::Int)]);
        let dc = DataCollection::new(
            Arc::clone(&schema),
            vec![
                Row(vec!["plain".into(), Value::Int(1)]),
                Row(vec!["with,comma".into(), Value::Int(2)]),
                Row(vec!["with \"quote\"".into(), Value::Int(3)]),
            ],
        )
        .unwrap();
        let text = to_csv_string(&dc);
        let back = scan(&text, &schema, true).unwrap();
        assert_eq!(back, dc);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("helix-csv-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let schema = Schema::of(&[("n", DataType::Int)]);
        let dc = DataCollection::new(Arc::clone(&schema), vec![Row(vec![Value::Int(7)])]).unwrap();
        write_file(&dc, &path).unwrap();
        assert_eq!(scan_file(&path, &schema, true).unwrap(), dc);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn infer_schema_detects_types() {
        let schema = infer_schema("id,score,label\n1,0.5,yes\n2,1.5,no\n", 100).unwrap();
        assert_eq!(schema.field(0).dtype, DataType::Int);
        assert_eq!(schema.field(1).dtype, DataType::Float);
        assert_eq!(schema.field(2).dtype, DataType::Str);
    }

    #[test]
    fn infer_schema_empty_errors() {
        assert!(infer_schema("", 10).is_err());
    }
}
