//! Parallel row transforms over `crossbeam` scoped threads.
//!
//! Helix's Spark backend parallelizes per-partition work; this module is the
//! single-node analogue. Work is split into contiguous chunks, one per
//! worker, and results are reassembled in order so parallel execution is
//! deterministic — a requirement for Helix's reuse correctness (a
//! materialized result must equal its recomputation).

use crate::{DataCollection, DataflowError, Result, Row, Schema};
use std::sync::Arc;

/// Number of workers to use: the machine's available parallelism, capped so
/// tiny inputs don't pay thread spawn costs.
pub fn default_workers(rows: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Below ~4k rows per worker the spawn overhead dominates.
    hw.min(rows / 4096 + 1)
}

/// Maps rows in parallel with a fallible per-row function, preserving order.
///
/// The output schema is *not* validated per-row here (the typed operator
/// layer in `helix-core` validates at boundaries); this keeps the hot loop
/// allocation-free apart from the output rows themselves.
pub fn par_map_rows<F>(input: &DataCollection, schema: Arc<Schema>, f: F) -> Result<DataCollection>
where
    F: Fn(&Row) -> Result<Row> + Sync,
{
    let rows = input.rows();
    let workers = default_workers(rows.len());
    if workers <= 1 {
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            out.push(f(row)?);
        }
        return Ok(DataCollection::from_rows_unchecked(schema, out));
    }

    let chunked = run_chunked(rows, workers, |chunk| {
        let mut out = Vec::with_capacity(chunk.len());
        for row in chunk {
            out.push(f(row)?);
        }
        Ok(out)
    })?;
    let mut rows_out = Vec::with_capacity(rows.len());
    for chunk in chunked {
        rows_out.extend(chunk);
    }
    Ok(DataCollection::from_rows_unchecked(schema, rows_out))
}

/// Maps rows in parallel where each input row may produce several output
/// rows (flat map), preserving input order.
pub fn par_flat_map_rows<F>(
    input: &DataCollection,
    schema: Arc<Schema>,
    f: F,
) -> Result<DataCollection>
where
    F: Fn(&Row) -> Result<Vec<Row>> + Sync,
{
    let rows = input.rows();
    let workers = default_workers(rows.len());
    if workers <= 1 {
        let mut out = Vec::new();
        for row in rows {
            out.extend(f(row)?);
        }
        return Ok(DataCollection::from_rows_unchecked(schema, out));
    }

    let chunked = run_chunked(rows, workers, |chunk| {
        let mut out = Vec::new();
        for row in chunk {
            out.extend(f(row)?);
        }
        Ok(out)
    })?;
    let mut rows_out = Vec::new();
    for chunk in chunked {
        rows_out.extend(chunk);
    }
    Ok(DataCollection::from_rows_unchecked(schema, rows_out))
}

/// Splits `rows` into one contiguous chunk per worker and runs `work` on
/// each chunk in a scoped thread, returning chunk results in input order.
///
/// A panicking worker does **not** abort the process: the panic payload is
/// converted into [`DataflowError::WorkerPanic`] and propagated like any
/// other row error (the chunk-order-first failure wins, so the error a
/// caller sees does not depend on thread scheduling).
fn run_chunked<W>(rows: &[Row], workers: usize, work: W) -> Result<Vec<Vec<Row>>>
where
    W: Fn(&[Row]) -> Result<Vec<Row>> + Sync,
{
    let chunk_size = rows.len().div_ceil(workers);
    let chunks: Vec<&[Row]> = rows.chunks(chunk_size).collect();
    let mut results: Vec<Result<Vec<Row>>> = Vec::with_capacity(chunks.len());

    crossbeam::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let work = &work;
                scope.spawn(move |_| work(chunk))
            })
            .collect();
        for handle in handles {
            results.push(handle.join().unwrap_or_else(|payload| {
                Err(DataflowError::WorkerPanic(panic_message(&payload)))
            }));
        }
    })
    .map_err(|payload| DataflowError::WorkerPanic(panic_message(&payload)))?;

    results.into_iter().collect()
}

/// Renders a worker panic payload as a message (shared by every scoped
/// thread pool in the workspace — see `helix-core`'s wave scheduler).
pub fn panic_message(payload: &crossbeam::PanicPayload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Value};

    fn numbers(n: i64) -> DataCollection {
        let schema = Schema::of(&[("n", DataType::Int)]);
        let rows = (0..n).map(|i| Row(vec![Value::Int(i)])).collect();
        DataCollection::from_rows_unchecked(schema, rows)
    }

    #[test]
    fn par_map_preserves_order() {
        let input = numbers(10_000);
        let schema = Schema::of(&[("sq", DataType::Int)]);
        let out = par_map_rows(&input, schema, |row| {
            let n = row.get(0).as_int().unwrap();
            Ok(Row(vec![Value::Int(n * n)]))
        })
        .unwrap();
        assert_eq!(out.len(), 10_000);
        for (i, row) in out.rows().iter().enumerate() {
            assert_eq!(row.get(0).as_int().unwrap(), (i * i) as i64);
        }
    }

    #[test]
    fn par_map_propagates_errors() {
        let input = numbers(10_000);
        let schema = Schema::of(&[("n", DataType::Int)]);
        let result = par_map_rows(&input, schema, |row| {
            if row.get(0).as_int().unwrap() == 8_888 {
                Err(crate::DataflowError::Udf("boom".into()))
            } else {
                Ok(row.clone())
            }
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_flat_map_expands_rows_in_order() {
        let input = numbers(5_000);
        let schema = Schema::of(&[("n", DataType::Int)]);
        let out = par_flat_map_rows(&input, schema, |row| {
            let n = row.get(0).as_int().unwrap();
            Ok(vec![Row(vec![Value::Int(n)]), Row(vec![Value::Int(-n)])])
        })
        .unwrap();
        assert_eq!(out.len(), 10_000);
        assert_eq!(out.rows()[0].get(0).as_int(), Some(0));
        assert_eq!(out.rows()[3].get(0).as_int(), Some(-1));
    }

    #[test]
    fn empty_input_is_fine() {
        let input = numbers(0);
        let schema = Schema::of(&[("n", DataType::Int)]);
        let out = par_map_rows(&input, schema, |row| Ok(row.clone())).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_closure_returns_error_not_abort() {
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 2 {
            return; // single-core: the sequential path panics normally
        }
        let input = numbers(50_000); // large enough to take the parallel path
        let schema = Schema::of(&[("n", DataType::Int)]);
        let result = par_map_rows(&input, Arc::clone(&schema), |row| {
            if row.get(0).as_int().unwrap() == 42_000 {
                panic!("row 42000 exploded");
            }
            Ok(row.clone())
        });
        let err = result.expect_err("panic must surface as an error");
        assert!(
            matches!(&err, crate::DataflowError::WorkerPanic(msg) if msg.contains("exploded")),
            "got: {err}"
        );
        // The flat-map variant shares the machinery; spot-check it too.
        let result = par_flat_map_rows(&input, schema, |row| {
            if row.get(0).as_int().unwrap() == 1_000 {
                panic!("flat-map exploded");
            }
            Ok(vec![row.clone()])
        });
        assert!(result.is_err());
    }

    #[test]
    fn panic_and_error_mix_prefers_chunk_order() {
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 2 {
            return;
        }
        // An early-chunk Err and a late-chunk panic: the Err wins because
        // results are collected in chunk order.
        let input = numbers(50_000);
        let schema = Schema::of(&[("n", DataType::Int)]);
        let err = par_map_rows(&input, schema, |row| {
            let n = row.get(0).as_int().unwrap();
            if n == 10 {
                return Err(crate::DataflowError::Udf("early error".into()));
            }
            if n == 49_999 {
                panic!("late panic");
            }
            Ok(row.clone())
        })
        .unwrap_err();
        assert!(err.to_string().contains("early error"), "got: {err}");
    }

    #[test]
    fn sequential_and_parallel_agree() {
        // Force both paths by size: small input takes the sequential path,
        // large the parallel one; results must be identical functions.
        let f = |row: &Row| -> Result<Row> {
            Ok(Row(vec![Value::Int(row.get(0).as_int().unwrap() + 1)]))
        };
        let small = numbers(10);
        let big = numbers(50_000);
        let schema = Schema::of(&[("n", DataType::Int)]);
        let small_out = par_map_rows(&small, Arc::clone(&schema), f).unwrap();
        assert_eq!(small_out.rows()[9].get(0).as_int(), Some(10));
        let big_out = par_map_rows(&big, schema, f).unwrap();
        assert_eq!(big_out.rows()[49_999].get(0).as_int(), Some(50_000));
    }
}
