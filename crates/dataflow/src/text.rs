//! Document corpus sources for unstructured-text workflows (the IE task).
//!
//! A corpus is a [`DataCollection`] with schema `(doc_id: int, text: str)`.
//! On disk a corpus is a plain text file with one document per line —
//! mirroring how DeepDive-style IE pipelines ingest article dumps.

use crate::{DataCollection, DataType, Result, Row, Schema, Value};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Schema shared by all document collections.
pub fn corpus_schema() -> Arc<Schema> {
    Schema::of(&[("doc_id", DataType::Int), ("text", DataType::Str)])
}

/// Builds a corpus collection from in-memory documents.
pub fn corpus_from_docs<S: AsRef<str>>(docs: &[S]) -> DataCollection {
    let rows = docs
        .iter()
        .enumerate()
        .map(|(i, doc)| {
            Row(vec![
                Value::Int(i as i64),
                Value::Str(doc.as_ref().to_string()),
            ])
        })
        .collect();
    DataCollection::from_rows_unchecked(corpus_schema(), rows)
}

/// Reads a one-document-per-line corpus file.
///
/// Empty lines are skipped; document ids are line numbers among the
/// non-empty lines, so ids are stable across re-reads of the same file.
pub fn read_corpus(path: &Path) -> Result<DataCollection> {
    let text = std::fs::read_to_string(path)?;
    let docs: Vec<&str> = text
        .lines()
        .filter(|line| !line.trim().is_empty())
        .collect();
    Ok(corpus_from_docs(&docs))
}

/// Writes a corpus collection (any collection with a `text` column) back to
/// a one-document-per-line file. Newlines inside documents are replaced with
/// spaces to preserve the format's invariant.
pub fn write_corpus(dc: &DataCollection, path: &Path) -> Result<()> {
    let idx = dc.column_index("text")?;
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    for row in dc.rows() {
        let text = row.get(idx).as_str().unwrap_or("");
        let flat = text.replace(['\n', '\r'], " ");
        writeln!(writer, "{flat}")?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_from_docs_assigns_ids() {
        let dc = corpus_from_docs(&["first doc", "second doc"]);
        assert_eq!(dc.len(), 2);
        assert_eq!(dc.rows()[1].get(0), &Value::Int(1));
        assert_eq!(dc.rows()[1].get(1).as_str(), Some("second doc"));
    }

    #[test]
    fn file_round_trip_skips_blank_lines() {
        let dir = std::env::temp_dir().join(format!("helix-text-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.txt");
        std::fs::write(&path, "Alpha story.\n\nBeta story.\n").unwrap();
        let dc = read_corpus(&path).unwrap();
        assert_eq!(dc.len(), 2);
        write_corpus(&dc, &path).unwrap();
        let again = read_corpus(&path).unwrap();
        assert_eq!(again, dc);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_corpus_flattens_newlines() {
        let dir = std::env::temp_dir().join(format!("helix-text-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.txt");
        let dc = corpus_from_docs(&["two\nlines"]);
        write_corpus(&dc, &path).unwrap();
        let back = read_corpus(&path).unwrap();
        assert_eq!(back.rows()[0].get(1).as_str(), Some("two lines"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
