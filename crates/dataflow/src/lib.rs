//! In-memory dataflow substrate for Helix.
//!
//! The Helix paper executes workflows on Spark supplemented with JVM
//! libraries (§2.3). This crate is the single-node stand-in: typed rows
//! ([`Value`], [`Schema`], [`Row`]) grouped into [`DataCollection`]s, with
//!
//! * a compact self-describing [binary codec](codec) used to materialize
//!   intermediate results to disk,
//! * a small [CSV](csv) reader/writer for structured sources,
//! * a [`text`] source for document corpora,
//! * [parallel row transforms](par) built on `crossbeam` scoped threads,
//! * an [FxHash-style hasher](fx) shared by the workspace for hot,
//!   non-adversarial hashing (see the Rust Performance Book's hashing
//!   chapter).
//!
//! Everything the Helix optimizers need from the substrate — per-operator
//! output sizes and real compute/IO durations — falls out of these types.

#![warn(missing_docs)]

pub mod codec;
pub mod collection;
pub mod csv;
pub mod error;
pub mod fx;
pub mod par;
pub mod schema;
pub mod text;
pub mod value;

pub use collection::{DataCollection, Row};
pub use error::DataflowError;
pub use schema::{DataType, Field, Schema};
pub use value::Value;

/// Convenience alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, DataflowError>;
