//! Self-describing binary serialization for [`DataCollection`]s.
//!
//! Materialized intermediate results are written in this format. It is a
//! simple length-prefixed layout (magic, version, schema, row count, tagged
//! values) with LEB128 varints for lengths and zigzag varints for integers.
//! Implemented locally because no serde *format* crate is in the approved
//! offline dependency set (see DESIGN.md §5); this also keeps the on-disk
//! size — an input to the materialization optimizer — fully under our
//! control.

use crate::{DataCollection, DataType, DataflowError, Field, Result, Row, Schema, Value};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: "HLXD" (HeLiX Data).
pub const MAGIC: [u8; 4] = *b"HLXD";
/// Current format version. Version 2 adds a string dictionary: repeated
/// strings (categorical values, feature names in fragment lists) are
/// written once and referenced by varint index, shrinking materializations
/// of feature-heavy intermediates by 5–10× — which directly lowers the
/// `l_i` the optimizers trade off against recomputation.
pub const VERSION: u32 = 2;

// Value tags. Distinct from DataType tags: values carry their own runtime
// type so `Any` columns round-trip exactly.
const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_LIST: u8 = 6;

/// Encodes a collection into a fresh buffer.
pub fn encode(dc: &DataCollection) -> Vec<u8> {
    // Rough pre-size: header + values; avoids repeated growth on big batches.
    let mut buf = Vec::with_capacity(64 + dc.estimated_bytes() / 2);
    encode_into(dc, &mut buf);
    buf
}

/// Interning dictionary used during encoding.
#[derive(Default)]
struct StringTable {
    by_str: crate::fx::FxHashMap<String, u64>,
    entries: Vec<String>,
}

impl StringTable {
    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&idx) = self.by_str.get(s) {
            return idx;
        }
        let idx = self.entries.len() as u64;
        self.by_str.insert(s.to_string(), idx);
        self.entries.push(s.to_string());
        idx
    }

    fn collect_value(&mut self, value: &Value) {
        match value {
            Value::Str(s) => {
                self.intern(s);
            }
            Value::List(items) => items.iter().for_each(|v| self.collect_value(v)),
            _ => {}
        }
    }
}

/// Encodes a collection, appending to `buf`.
pub fn encode_into(dc: &DataCollection, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    write_varint(buf, dc.schema().len() as u64);
    for field in dc.schema().fields() {
        write_varint(buf, field.name.len() as u64);
        buf.extend_from_slice(field.name.as_bytes());
        buf.push(field.dtype.tag());
    }
    // Build and emit the string dictionary.
    let mut table = StringTable::default();
    for row in dc.rows() {
        for value in row.values() {
            table.collect_value(value);
        }
    }
    write_varint(buf, table.entries.len() as u64);
    for s in &table.entries {
        write_varint(buf, s.len() as u64);
        buf.extend_from_slice(s.as_bytes());
    }
    write_varint(buf, dc.len() as u64);
    for row in dc.rows() {
        for value in row.values() {
            write_value(buf, value, &table);
        }
    }
}

/// Decodes a collection from bytes produced by [`encode`].
///
/// # Errors
/// [`DataflowError::Codec`] on truncated or malformed input.
pub fn decode(bytes: &[u8]) -> Result<DataCollection> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let magic = cursor.take(4)?;
    if magic != MAGIC {
        return Err(DataflowError::Codec(
            "bad magic; not a Helix data file".into(),
        ));
    }
    let version = u32::from_le_bytes(cursor.take(4)?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(DataflowError::Codec(format!(
            "unsupported version {version}"
        )));
    }
    let nfields = cursor.read_varint()? as usize;
    if nfields > 1 << 20 {
        return Err(DataflowError::Codec(format!(
            "implausible field count {nfields}"
        )));
    }
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let name_len = cursor.read_varint()? as usize;
        let name_bytes = cursor.take(name_len)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| DataflowError::Codec("field name is not UTF-8".into()))?
            .to_string();
        let dtype = DataType::from_tag(cursor.take(1)?[0])?;
        fields.push(Field::new(name, dtype));
    }
    let schema = Schema::new(fields)?;
    let nstrings = cursor.read_varint()? as usize;
    if nstrings > 1 << 26 {
        return Err(DataflowError::Codec(format!(
            "implausible dictionary size {nstrings}"
        )));
    }
    let mut strings = Vec::with_capacity(nstrings.min(1 << 16));
    for _ in 0..nstrings {
        let len = cursor.read_varint()? as usize;
        let bytes = cursor.take(len)?;
        strings.push(
            std::str::from_utf8(bytes)
                .map_err(|_| DataflowError::Codec("dictionary string is not UTF-8".into()))?
                .to_string(),
        );
    }
    let nrows = cursor.read_varint()? as usize;
    let mut rows = Vec::with_capacity(nrows.min(1 << 24));
    for _ in 0..nrows {
        let mut values = Vec::with_capacity(schema.len());
        for _ in 0..schema.len() {
            values.push(read_value(&mut cursor, &strings, 0)?);
        }
        rows.push(Row(values));
    }
    if cursor.pos != bytes.len() {
        return Err(DataflowError::Codec(format!(
            "{} trailing bytes after payload",
            bytes.len() - cursor.pos
        )));
    }
    // Values were written from a validated collection but the file may have
    // been corrupted or hand-crafted: re-validate.
    DataCollection::new(schema, rows)
}

/// Writes a collection to a file (buffered, then flushed).
pub fn write_file(dc: &DataCollection, path: &Path) -> Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    let bytes = encode(dc);
    writer.write_all(&bytes)?;
    writer.flush()?;
    Ok(bytes.len() as u64)
}

/// Reads a collection from a file written by [`write_file`].
pub fn read_file(path: &Path) -> Result<DataCollection> {
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    decode(&bytes)
}

// ---------------------------------------------------------------------------
// Value encoding
// ---------------------------------------------------------------------------

fn write_value(buf: &mut Vec<u8>, value: &Value, table: &StringTable) {
    match value {
        Value::Null => buf.push(TAG_NULL),
        Value::Bool(false) => buf.push(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.push(TAG_BOOL_TRUE),
        Value::Int(i) => {
            buf.push(TAG_INT);
            write_varint(buf, zigzag_encode(*i));
        }
        Value::Float(f) => {
            buf.push(TAG_FLOAT);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            let idx = *table
                .by_str
                .get(s)
                .expect("string interned during collection pass");
            write_varint(buf, idx);
        }
        Value::List(items) => {
            buf.push(TAG_LIST);
            write_varint(buf, items.len() as u64);
            for item in items {
                write_value(buf, item, table);
            }
        }
    }
}

const MAX_LIST_DEPTH: u32 = 64;

fn read_value(cursor: &mut Cursor<'_>, strings: &[String], depth: u32) -> Result<Value> {
    if depth > MAX_LIST_DEPTH {
        return Err(DataflowError::Codec("list nesting too deep".into()));
    }
    let tag = cursor.take(1)?[0];
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(zigzag_decode(cursor.read_varint()?)),
        TAG_FLOAT => {
            let bits = u64::from_le_bytes(cursor.take(8)?.try_into().expect("8 bytes"));
            Value::Float(f64::from_bits(bits))
        }
        TAG_STR => {
            let idx = cursor.read_varint()? as usize;
            let s = strings.get(idx).ok_or_else(|| {
                DataflowError::Codec(format!("dictionary index {idx} out of range"))
            })?;
            Value::Str(s.clone())
        }
        TAG_LIST => {
            let len = cursor.read_varint()? as usize;
            if len > 1 << 28 {
                return Err(DataflowError::Codec(format!(
                    "implausible list length {len}"
                )));
            }
            let mut items = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                items.push(read_value(cursor, strings, depth + 1)?);
            }
            Value::List(items)
        }
        other => return Err(DataflowError::Codec(format!("bad value tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

fn write_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(DataflowError::Codec(format!(
                "truncated input: wanted {n} bytes at offset {}",
                self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn read_varint(&mut self) -> Result<u64> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take(1)?[0];
            if shift >= 64 {
                return Err(DataflowError::Codec("varint overflows u64".into()));
            }
            result |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> DataCollection {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("score", DataType::Float),
            ("tags", DataType::List),
            ("ok", DataType::Bool),
        ]);
        DataCollection::new(
            schema,
            vec![
                Row(vec![
                    Value::Int(-5),
                    Value::Str("ann".into()),
                    Value::Float(0.25),
                    Value::List(vec![Value::Str("a".into()), Value::Int(9)]),
                    Value::Bool(true),
                ]),
                Row(vec![
                    Value::Int(i64::MAX),
                    Value::Null,
                    Value::Float(f64::NEG_INFINITY),
                    Value::List(vec![]),
                    Value::Bool(false),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dc = sample();
        let decoded = decode(&encode(&dc)).unwrap();
        assert_eq!(decoded, dc);
    }

    #[test]
    fn empty_collection_round_trips() {
        let dc = DataCollection::empty(Schema::of(&[("a", DataType::Int)]));
        assert_eq!(decode(&encode(&dc)).unwrap(), dc);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(DataflowError::Codec(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&sample());
        bytes[4] = 99;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncated_input() {
        let bytes = encode(&sample());
        for cut in [3, 8, 15, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn file_round_trip_reports_size() {
        let dir = std::env::temp_dir().join(format!("helix-codec-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.hlxd");
        let dc = sample();
        let written = write_file(&dc, &path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        assert_eq!(read_file(&path).unwrap(), dc);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dictionary_shrinks_repetitive_strings() {
        let schema = Schema::of(&[("feats", DataType::List)]);
        let rows: Vec<Row> = (0..2_000)
            .map(|_| {
                Row(vec![Value::List(vec![Value::List(vec![
                    Value::Str("edu=Bachelors-of-Science".into()),
                    Value::Float(1.0),
                ])])])
            })
            .collect();
        let dc = DataCollection::new(schema, rows).unwrap();
        let encoded = encode(&dc);
        // Naive encoding would spend ≥ 24 bytes/row on the name alone;
        // the dictionary brings the whole row to a handful of bytes.
        assert!(
            encoded.len() < 2_000 * 20,
            "dictionary encoding too large: {} bytes",
            encoded.len()
        );
        assert_eq!(decode(&encoded).unwrap(), dc);
    }

    #[test]
    fn dictionary_index_out_of_range_rejected() {
        let schema = Schema::of(&[("s", DataType::Str)]);
        let dc = DataCollection::new(schema, vec![Row(vec![Value::Str("abc".into())])]).unwrap();
        let mut bytes = encode(&dc);
        // Last value is TAG_STR + varint index 0; corrupt the index.
        let len = bytes.len();
        bytes[len - 1] = 0x7f;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn varint_boundaries() {
        for value in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, value);
            let mut cursor = Cursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(cursor.read_varint().unwrap(), value);
        }
    }

    #[test]
    fn zigzag_boundaries() {
        for value in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(zigzag_decode(zigzag_encode(value)), value);
        }
    }

    fn arb_value(depth: u32) -> BoxedStrategy<Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            // Use finite floats: NaN breaks PartialEq-based comparison.
            (-1e12f64..1e12).prop_map(Value::Float),
            "[a-z]{0,12}".prop_map(Value::Str),
        ];
        if depth == 0 {
            leaf.boxed()
        } else {
            prop_oneof![
                4 => leaf,
                1 => proptest::collection::vec(arb_value(depth - 1), 0..4)
                    .prop_map(Value::List),
            ]
            .boxed()
        }
    }

    proptest! {
        #[test]
        fn round_trip_random_collections(
            ncols in 1usize..5,
            rows in proptest::collection::vec(
                proptest::collection::vec(arb_value(2), 4),
                0..20,
            ),
        ) {
            let fields = (0..ncols).map(|i| Field::new(format!("c{i}"), DataType::Any)).collect();
            let schema = Schema::new(fields).unwrap();
            let rows: Vec<Row> = rows
                .into_iter()
                .map(|values| Row(values.into_iter().take(ncols).chain(
                    std::iter::repeat(Value::Null)).take(ncols).collect()))
                .collect();
            let dc = DataCollection::new(schema, rows).unwrap();
            prop_assert_eq!(decode(&encode(&dc)).unwrap(), dc);
        }

        /// Decoding arbitrary bytes must never panic — only error.
        #[test]
        fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode(&bytes);
        }
    }
}
