//! A fast, non-cryptographic hasher (the rustc "Fx" algorithm).
//!
//! The standard library's SipHash is HashDoS-resistant but slow for the
//! short string and integer keys that dominate Helix (column names, feature
//! names, operator signatures). None of those keys are attacker-controlled,
//! so the workspace uses this hasher instead, per the Rust Performance
//! Book's hashing guidance. Implemented locally because `rustc-hash` is not
//! in the approved offline dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hash state: multiply-rotate word-at-a-time mixing.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(
                chunk.try_into().expect("exact 8-byte chunk"),
            ));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hashes a byte slice in one call (used for operator signatures).
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write(bytes);
    hasher.finish()
}

/// Hashes a string in one call.
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_str("workflow"), hash_str("workflow"));
        assert_ne!(hash_str("workflow"), hash_str("workflows"));
    }

    #[test]
    fn distinguishes_suffix_lengths() {
        // Trailing bytes must not collide with their zero-padded versions.
        assert_ne!(hash_bytes(&[1, 2, 3]), hash_bytes(&[1, 2, 3, 0]));
        assert_ne!(hash_bytes(&[]), hash_bytes(&[0]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<String, usize> = FxHashMap::default();
        map.insert("age".into(), 0);
        map.insert("education".into(), 1);
        assert_eq!(map["age"], 0);
        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(42);
        assert!(set.contains(&42));
    }

    #[test]
    fn empty_input_hashes_to_initial_state() {
        let hasher = FxHasher::default();
        assert_eq!(hasher.finish(), 0);
        assert_ne!(hash_bytes(b"x"), 0);
    }
}
