//! Rows and data collections — the unit of data flowing between operators.

use crate::{DataType, DataflowError, Result, Schema, Value};
use std::fmt;
use std::sync::Arc;

/// One record: values aligned with a [`Schema`]'s fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Creates a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Value at column `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the row has no cells.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Approximate in-memory footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        24 + self.0.iter().map(Value::estimated_bytes).sum::<usize>()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row(values)
    }
}

/// An immutable, schema-tagged batch of rows — Helix's `DataCollection`
/// (paper §1: "a DAG of data collections").
///
/// Collections are the intermediate results that Helix's optimizers decide
/// to materialize, load, compute, or prune. They expose exactly the
/// statistics those optimizers need: row counts and estimated byte sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct DataCollection {
    schema: Arc<Schema>,
    rows: Vec<Row>,
}

impl DataCollection {
    /// Creates an empty collection with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        DataCollection {
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates a collection, validating every row against the schema.
    ///
    /// # Errors
    /// [`DataflowError::SchemaMismatch`] if any row has the wrong arity or
    /// an incompatible value type.
    pub fn new(schema: Arc<Schema>, rows: Vec<Row>) -> Result<Self> {
        for (rownum, row) in rows.iter().enumerate() {
            validate_row(&schema, row, rownum)?;
        }
        Ok(DataCollection { schema, rows })
    }

    /// Creates a collection without validating rows.
    ///
    /// For operator internals that construct rows schema-first; prefer
    /// [`DataCollection::new`] at trust boundaries.
    pub fn from_rows_unchecked(schema: Arc<Schema>, rows: Vec<Row>) -> Self {
        DataCollection { schema, rows }
    }

    /// The collection's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row after validating it.
    pub fn push(&mut self, row: Row) -> Result<()> {
        validate_row(&self.schema, &row, self.rows.len())?;
        self.rows.push(row);
        Ok(())
    }

    /// Approximate total in-memory footprint in bytes. Drives the
    /// materialization optimizer's storage-budget accounting.
    pub fn estimated_bytes(&self) -> usize {
        48 + self.rows.iter().map(Row::estimated_bytes).sum::<usize>()
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.schema.index_of(name)
    }

    /// Iterator over one column's values.
    pub fn column<'a>(&'a self, name: &str) -> Result<impl Iterator<Item = &'a Value> + 'a> {
        let idx = self.schema.index_of(name)?;
        Ok(self.rows.iter().map(move |row| row.get(idx)))
    }

    /// New collection containing only the named columns, in order.
    pub fn project(&self, names: &[&str]) -> Result<DataCollection> {
        let (schema, indices) = self.schema.project(names)?;
        let rows = self
            .rows
            .iter()
            .map(|row| Row(indices.iter().map(|&i| row.get(i).clone()).collect()))
            .collect();
        Ok(DataCollection { schema, rows })
    }

    /// New collection with rows passing the predicate.
    pub fn filter(&self, mut pred: impl FnMut(&Row) -> bool) -> DataCollection {
        DataCollection {
            schema: Arc::clone(&self.schema),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// New collection produced by mapping each row to a new row under a new
    /// schema. The mapped rows are validated.
    pub fn map(
        &self,
        schema: Arc<Schema>,
        mut f: impl FnMut(&Row) -> Result<Row>,
    ) -> Result<DataCollection> {
        let mut rows = Vec::with_capacity(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            let out = f(row)?;
            validate_row(&schema, &out, i)?;
            rows.push(out);
        }
        Ok(DataCollection { schema, rows })
    }

    /// New collection with an extra column computed from each row.
    pub fn with_column(
        &self,
        name: &str,
        dtype: DataType,
        mut f: impl FnMut(&Row) -> Value,
    ) -> Result<DataCollection> {
        let schema = self.schema.with_field(crate::Field::new(name, dtype))?;
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut values = row.0.clone();
                values.push(f(row));
                Row(values)
            })
            .collect();
        Ok(DataCollection { schema, rows })
    }

    /// First `n` rows (or fewer), as a new collection.
    pub fn head(&self, n: usize) -> DataCollection {
        DataCollection {
            schema: Arc::clone(&self.schema),
            rows: self.rows.iter().take(n).cloned().collect(),
        }
    }

    /// Splits rows into two collections at `index` (first gets `[0, index)`).
    pub fn split_at(&self, index: usize) -> (DataCollection, DataCollection) {
        let index = index.min(self.rows.len());
        let (a, b) = self.rows.split_at(index);
        (
            DataCollection {
                schema: Arc::clone(&self.schema),
                rows: a.to_vec(),
            },
            DataCollection {
                schema: Arc::clone(&self.schema),
                rows: b.to_vec(),
            },
        )
    }

    /// Consumes the collection, returning its schema and rows without
    /// cloning — for operators that stitch collections back together.
    pub fn into_parts(self) -> (Arc<Schema>, Vec<Row>) {
        (self.schema, self.rows)
    }

    /// Concatenates another collection with an identical schema.
    pub fn concat(&self, other: &DataCollection) -> Result<DataCollection> {
        if self.schema != other.schema {
            return Err(DataflowError::SchemaMismatch(
                "concat requires identical schemas".to_string(),
            ));
        }
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Ok(DataCollection {
            schema: Arc::clone(&self.schema),
            rows,
        })
    }

    /// Consumes the collection, returning its rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }
}

impl fmt::Display for DataCollection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] ({} rows)", self.schema, self.rows.len())?;
        for row in self.rows.iter().take(5) {
            let cells: Vec<String> = row.values().iter().map(Value::to_string).collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.rows.len() > 5 {
            writeln!(f, "  … {} more", self.rows.len() - 5)?;
        }
        Ok(())
    }
}

fn validate_row(schema: &Schema, row: &Row, rownum: usize) -> Result<()> {
    if row.len() != schema.len() {
        return Err(DataflowError::SchemaMismatch(format!(
            "row {rownum} has {} values, schema has {} fields",
            row.len(),
            schema.len()
        )));
    }
    for (i, value) in row.values().iter().enumerate() {
        let expected = schema.field(i).dtype;
        if !value.is_null() && !expected.accepts(value.data_type()) {
            return Err(DataflowError::SchemaMismatch(format!(
                "row {rownum} column `{}` expected {expected}, got {}",
                schema.field(i).name,
                value.data_type()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> DataCollection {
        let schema = Schema::of(&[("name", DataType::Str), ("age", DataType::Int)]);
        DataCollection::new(
            schema,
            vec![
                Row(vec!["ann".into(), 34i64.into()]),
                Row(vec!["bob".into(), 51i64.into()]),
                Row(vec!["cyn".into(), 19i64.into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_arity() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let err =
            DataCollection::new(schema, vec![Row(vec![1i64.into(), 2i64.into()])]).unwrap_err();
        assert!(err.to_string().contains("values"));
    }

    #[test]
    fn new_validates_types() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let err = DataCollection::new(schema, vec![Row(vec!["oops".into()])]).unwrap_err();
        assert!(err.to_string().contains("expected int"));
    }

    #[test]
    fn nulls_allowed_in_typed_columns() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let dc = DataCollection::new(schema, vec![Row(vec![Value::Null])]).unwrap();
        assert_eq!(dc.len(), 1);
    }

    #[test]
    fn project_selects_and_reorders() {
        let dc = people();
        let proj = dc.project(&["age", "name"]).unwrap();
        assert_eq!(proj.schema().field(0).name, "age");
        assert_eq!(proj.rows()[0].get(0), &Value::Int(34));
        assert_eq!(proj.rows()[0].get(1), &Value::Str("ann".into()));
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let dc = people();
        let adults = dc.filter(|row| row.get(1).as_int().unwrap_or(0) >= 21);
        assert_eq!(adults.len(), 2);
    }

    #[test]
    fn with_column_appends_values() {
        let dc = people();
        let extended = dc
            .with_column("minor", DataType::Bool, |row| {
                Value::Bool(row.get(1).as_int().unwrap_or(0) < 21)
            })
            .unwrap();
        assert_eq!(extended.schema().len(), 3);
        assert_eq!(extended.rows()[2].get(2), &Value::Bool(true));
    }

    #[test]
    fn map_validates_output() {
        let dc = people();
        let target = Schema::of(&[("age2", DataType::Int)]);
        let doubled = dc
            .map(Arc::clone(&target), |row| {
                Ok(Row(vec![Value::Int(row.get(1).as_int().unwrap() * 2)]))
            })
            .unwrap();
        assert_eq!(doubled.rows()[0].get(0), &Value::Int(68));
        let bad = dc.map(target, |_| Ok(Row(vec!["no".into()])));
        assert!(bad.is_err());
    }

    #[test]
    fn split_and_concat_round_trip() {
        let dc = people();
        let (a, b) = dc.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        let back = a.concat(&b).unwrap();
        assert_eq!(back, dc);
    }

    #[test]
    fn concat_rejects_different_schemas() {
        let dc = people();
        let other = DataCollection::empty(Schema::of(&[("x", DataType::Int)]));
        assert!(dc.concat(&other).is_err());
    }

    #[test]
    fn column_iterates_one_field() {
        let dc = people();
        let ages: Vec<i64> = dc
            .column("age")
            .unwrap()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(ages, vec![34, 51, 19]);
        assert!(dc.column("salary").is_err());
    }

    #[test]
    fn estimated_bytes_positive_and_monotone() {
        let dc = people();
        let small = dc.head(1).estimated_bytes();
        let full = dc.estimated_bytes();
        assert!(full > small);
        assert!(small > 0);
    }

    #[test]
    fn push_validates() {
        let mut dc = people();
        assert!(dc.push(Row(vec!["dee".into(), Value::Int(40)])).is_ok());
        assert!(dc.push(Row(vec![Value::Int(1), Value::Int(2)])).is_err());
        assert_eq!(dc.len(), 4);
    }

    #[test]
    fn display_truncates_long_collections() {
        let schema = Schema::of(&[("i", DataType::Int)]);
        let rows = (0..10).map(|i| Row(vec![Value::Int(i)])).collect();
        let dc = DataCollection::new(schema, rows).unwrap();
        let shown = dc.to_string();
        assert!(shown.contains("… 5 more"));
    }
}
