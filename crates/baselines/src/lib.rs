//! Baseline systems Helix is compared against in Figure 2, expressed as
//! policy configurations of the same engine/substrate.
//!
//! Running every system on one substrate isolates the variable the paper
//! studies — the cross-iteration reuse/materialization policy — so
//! relative runtimes are attributable to policy, not implementation
//! accidents (see DESIGN.md substitutions):
//!
//! * **KeystoneML-sim** — optimizes one-shot execution (its CSE and
//!   dead-code elimination correspond to our slicing, which stays on) but
//!   never materializes across iterations: every iteration recomputes the
//!   full workflow. "For a never-materialize system such as KeystoneML,
//!   the rerun time is constantly large regardless of what has been
//!   changed."
//! * **DeepDive-sim** — materializes *all* feature-extraction
//!   intermediates and greedily reuses whatever is still valid; its ML and
//!   evaluation components are not user-configurable (§2.4 — DeepDive has
//!   "missing data for iteration > 2" in Fig. 2(b)), which
//!   [`SystemKind::supports`] models.
//! * **Helix-unopt** — the demo's §3 comparator: the same DSL and engine
//!   with every cross-iteration optimization off *and* program slicing
//!   disabled.

#![warn(missing_docs)]

use helix_core::materialize::MaterializationPolicyKind;
use helix_core::recompute::RecomputationPolicy;
use helix_core::{Engine, EngineConfig, Result};
use helix_workloads::IterationStage;
use std::path::Path;

/// Which system to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Full Helix: optimal recomputation + online materialization.
    Helix,
    /// Helix with all cross-iteration optimization and slicing disabled.
    HelixUnopt,
    /// DeepDive-style: materialize everything, reuse greedily.
    DeepDiveSim,
    /// KeystoneML-style: never materialize, recompute everything.
    KeystoneSim,
}

impl SystemKind {
    /// All systems, in the order Fig. 2 plots them.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::Helix,
        SystemKind::DeepDiveSim,
        SystemKind::KeystoneSim,
        SystemKind::HelixUnopt,
    ];

    /// Display label used in benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Helix => "HELIX",
            SystemKind::HelixUnopt => "HELIX-unopt",
            SystemKind::DeepDiveSim => "DeepDive-sim",
            SystemKind::KeystoneSim => "KeystoneML-sim",
        }
    }

    /// The engine configuration realizing this system's policies.
    pub fn engine_config(&self, store_dir: &Path) -> EngineConfig {
        let base = EngineConfig::helix(store_dir);
        match self {
            SystemKind::Helix => base,
            SystemKind::HelixUnopt => EngineConfig {
                recomputation: RecomputationPolicy::ComputeAll,
                materialization: MaterializationPolicyKind::Never,
                enable_slicing: false,
                ..base
            },
            SystemKind::DeepDiveSim => EngineConfig {
                recomputation: RecomputationPolicy::LoadAllAvailable,
                materialization: MaterializationPolicyKind::All,
                ..base
            },
            SystemKind::KeystoneSim => EngineConfig {
                recomputation: RecomputationPolicy::ComputeAll,
                materialization: MaterializationPolicyKind::Never,
                ..base
            },
        }
    }

    /// Builds an engine for this system rooted at `store_dir`.
    pub fn build_engine(&self, store_dir: &Path) -> Result<Engine> {
        Engine::new(self.engine_config(store_dir))
    }

    /// Builds a shared (`Arc`-wrapped) engine for this system — the form
    /// sessions take ([`helix_core::session::Session::new`]).
    pub fn build_shared(&self, store_dir: &Path) -> Result<std::sync::Arc<Engine>> {
        Ok(std::sync::Arc::new(self.build_engine(store_dir)?))
    }

    /// Whether the system lets the *user* modify this kind of workflow
    /// component. DeepDive's ML and evaluation stages are fixed pipelines
    /// (the reason its Fig. 2(b) line stops after the data-pre-processing
    /// iterations); everything else accepts all changes.
    pub fn supports(&self, stage: IterationStage) -> bool {
        match self {
            SystemKind::DeepDiveSim => stage == IterationStage::DataPreProcessing,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-baseline-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn labels_and_support_matrix() {
        assert_eq!(SystemKind::Helix.label(), "HELIX");
        assert!(SystemKind::Helix.supports(IterationStage::MachineLearning));
        assert!(SystemKind::DeepDiveSim.supports(IterationStage::DataPreProcessing));
        assert!(!SystemKind::DeepDiveSim.supports(IterationStage::MachineLearning));
        assert!(!SystemKind::DeepDiveSim.supports(IterationStage::Evaluation));
        assert!(SystemKind::KeystoneSim.supports(IterationStage::Evaluation));
    }

    #[test]
    fn configs_differ_in_the_right_dimensions() {
        let dir = tmpdir("cfg");
        let helix = SystemKind::Helix.engine_config(&dir);
        assert_eq!(helix.recomputation, RecomputationPolicy::Optimal);
        assert_eq!(
            helix.materialization,
            MaterializationPolicyKind::HelixOnline
        );
        assert!(helix.enable_slicing);

        let dd = SystemKind::DeepDiveSim.engine_config(&dir);
        assert_eq!(dd.materialization, MaterializationPolicyKind::All);

        let ks = SystemKind::KeystoneSim.engine_config(&dir);
        assert_eq!(ks.materialization, MaterializationPolicyKind::Never);
        assert!(ks.enable_slicing);

        let unopt = SystemKind::HelixUnopt.engine_config(&dir);
        assert!(!unopt.enable_slicing);
    }

    /// All four systems produce identical metrics on identical workflows —
    /// the reuse policies must never change results.
    #[test]
    fn all_systems_agree_on_results() {
        let dir = tmpdir("agree");
        generate_census(
            &dir,
            &CensusDataSpec {
                train_rows: 300,
                test_rows: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let mut params = CensusParams::initial(&dir);
        let mut reference: Option<Vec<(String, f64)>> = None;
        for (k, system) in SystemKind::ALL.iter().enumerate() {
            let engine = system.build_engine(&dir.join(format!("store{k}"))).unwrap();
            // Two iterations: initial + an ML change.
            let r1 = engine.run(&census_workflow(&params).unwrap()).unwrap();
            params.reg_param = 0.02;
            let r2 = engine.run(&census_workflow(&params).unwrap()).unwrap();
            params.reg_param = 0.1;
            let combined: Vec<(String, f64)> = r1
                .metrics
                .iter()
                .chain(r2.metrics.iter())
                .cloned()
                .collect();
            match &reference {
                None => reference = Some(combined),
                Some(expected) => {
                    assert_eq!(&combined, expected, "{} diverged", system.label())
                }
            }
        }
    }

    /// On an unchanged rerun Helix loads, KeystoneML-sim recomputes.
    #[test]
    fn reuse_behaviour_differs() {
        let dir = tmpdir("reuse");
        generate_census(
            &dir,
            &CensusDataSpec {
                train_rows: 300,
                test_rows: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let params = CensusParams::initial(&dir);
        let w = census_workflow(&params).unwrap();

        let helix = SystemKind::Helix.build_engine(&dir.join("s-h")).unwrap();
        helix.run(&w).unwrap();
        let h2 = helix.run(&w).unwrap();
        assert!(h2.loaded() > 0);

        let keystone = SystemKind::KeystoneSim
            .build_engine(&dir.join("s-k"))
            .unwrap();
        keystone.run(&w).unwrap();
        let k2 = keystone.run(&w).unwrap();
        assert_eq!(k2.loaded(), 0);
        assert!(k2.computed() > h2.computed());
    }

    /// Unoptimized Helix executes even unwired extractors (no slicing).
    #[test]
    fn unopt_runs_dead_operators() {
        let dir = tmpdir("unopt");
        generate_census(
            &dir,
            &CensusDataSpec {
                train_rows: 200,
                test_rows: 50,
                ..Default::default()
            },
        )
        .unwrap();
        let params = CensusParams::initial(&dir);
        let w = census_workflow(&params).unwrap();
        let unopt = SystemKind::HelixUnopt
            .build_engine(&dir.join("s-u"))
            .unwrap();
        let report = unopt.run(&w).unwrap();
        let race = report.nodes.iter().find(|n| n.name == "race").unwrap();
        assert_eq!(
            race.state,
            helix_core::NodeState::Compute,
            "no slicing in unopt"
        );
        let helix = SystemKind::Helix.build_engine(&dir.join("s-h2")).unwrap();
        let hreport = helix.run(&w).unwrap();
        let hrace = hreport.nodes.iter().find(|n| n.name == "race").unwrap();
        assert_eq!(hrace.state, helix_core::NodeState::Prune);
    }
}
