//! Name dictionaries (gazetteers) for entity candidate scoring.

use helix_dataflow::fx::FxHashSet;

/// A case-normalized dictionary of known names.
///
/// IE workflows typically carry separate gazetteers for first names, last
/// names, and full names; membership flags become learner features.
#[derive(Debug, Clone, Default)]
pub struct Gazetteer {
    entries: FxHashSet<String>,
}

impl Gazetteer {
    /// Builds from any iterator of names (case-insensitive).
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let entries = names
            .into_iter()
            .map(|n| n.as_ref().to_lowercase())
            .collect();
        Gazetteer { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the gazetteer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Case-insensitive membership test.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains(&name.to_lowercase())
    }

    /// Fraction of whitespace-separated words of `phrase` found in the
    /// gazetteer — a soft membership signal for multi-token candidates.
    pub fn coverage(&self, phrase: &str) -> f64 {
        let words: Vec<&str> = phrase.split_whitespace().collect();
        if words.is_empty() {
            return 0.0;
        }
        let hits = words.iter().filter(|w| self.contains(w)).count();
        hits as f64 / words.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_is_case_insensitive() {
        let g = Gazetteer::from_names(["Alice", "BOB"]);
        assert!(g.contains("alice"));
        assert!(g.contains("Bob"));
        assert!(!g.contains("carol"));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn coverage_counts_fraction() {
        let g = Gazetteer::from_names(["john", "smith"]);
        assert_eq!(g.coverage("John Smith"), 1.0);
        assert_eq!(g.coverage("John Deere"), 0.5);
        assert_eq!(g.coverage(""), 0.0);
    }

    #[test]
    fn empty_gazetteer() {
        let g = Gazetteer::default();
        assert!(g.is_empty());
        assert!(!g.contains("anything"));
    }
}
