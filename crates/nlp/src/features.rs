//! Contextual features for candidate mentions.
//!
//! Each feature is a `(name, value)` pair; `helix-ml`'s `FeatureSpace`
//! interns the names downstream. Feature *groups* can be toggled
//! independently — that is precisely the knob Helix's data-pre-processing
//! iterations turn (paper Fig. 2: purple iterations add/remove feature
//! extractors).

use crate::candidates::Candidate;
use crate::gazetteer::Gazetteer;
use crate::tokenize::Token;

/// Titles that strongly signal a following person name.
const PERSON_TITLES: &[&str] = &[
    "mr",
    "mrs",
    "ms",
    "dr",
    "prof",
    "sen",
    "rep",
    "gov",
    "gen",
    "col",
    "president",
    "judge",
];

/// Which feature groups to emit. Mirrors the `has_extractors(...)` list in
/// the paper's DSL: flipping a flag is an iterative workflow change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Lexical identity of the candidate tokens.
    pub lexical: bool,
    /// Previous/next context words.
    pub context: bool,
    /// Word-shape features.
    pub shape: bool,
    /// Gazetteer membership/coverage.
    pub gazetteer: bool,
    /// Honorific-title cue from the preceding token.
    pub title_cue: bool,
    /// Candidate length bucket.
    pub length: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            lexical: true,
            context: true,
            shape: true,
            gazetteer: true,
            title_cue: true,
            length: true,
        }
    }
}

/// Emits `(feature-name, value)` pairs for one candidate in its sentence.
pub fn candidate_features(
    candidate: &Candidate,
    tokens: &[Token],
    first_names: &Gazetteer,
    last_names: &Gazetteer,
    config: &FeatureConfig,
) -> Vec<(String, f64)> {
    let mut feats = Vec::with_capacity(16);
    feats.push(("bias".to_string(), 1.0));

    if config.lexical {
        for token in &tokens[candidate.token_start..candidate.token_end] {
            feats.push((format!("tok={}", token.text.to_lowercase()), 1.0));
        }
    }
    if config.context {
        if candidate.token_start > 0 {
            feats.push((
                format!(
                    "prev={}",
                    tokens[candidate.token_start - 1].text.to_lowercase()
                ),
                1.0,
            ));
        } else {
            feats.push(("prev=<BOS>".to_string(), 1.0));
        }
        if candidate.token_end < tokens.len() {
            feats.push((
                format!("next={}", tokens[candidate.token_end].text.to_lowercase()),
                1.0,
            ));
        } else {
            feats.push(("next=<EOS>".to_string(), 1.0));
        }
    }
    if config.shape {
        let shape = tokens[candidate.token_start..candidate.token_end]
            .iter()
            .map(|t| t.shape())
            .collect::<Vec<_>>()
            .join("_");
        feats.push((format!("shape={shape}"), 1.0));
        if candidate.token_start == 0 {
            feats.push(("sent_initial".to_string(), 1.0));
        }
    }
    if config.gazetteer {
        let words: Vec<&str> = candidate.text.split_whitespace().collect();
        if let Some(first) = words.first() {
            if first_names.contains(first) {
                feats.push(("first_in_gaz".to_string(), 1.0));
            }
        }
        if let Some(last) = words.last() {
            if words.len() > 1 && last_names.contains(last) {
                feats.push(("last_in_gaz".to_string(), 1.0));
            }
        }
        let coverage = first_names
            .coverage(&candidate.text)
            .max(last_names.coverage(&candidate.text));
        if coverage > 0.0 {
            feats.push(("gaz_coverage".to_string(), coverage));
        }
    }
    if config.title_cue && candidate.token_start > 0 {
        // Titles tokenize as ["Dr", ".", "Smith"]: skip a period token so
        // the cue still fires.
        let mut k = candidate.token_start;
        if k >= 2 && tokens[k - 1].text == "." {
            k -= 1;
        }
        let prev = tokens[k - 1].text.to_lowercase();
        if PERSON_TITLES.contains(&prev.as_str()) {
            feats.push(("after_title".to_string(), 1.0));
        }
    }
    if config.length {
        feats.push((format!("len={}", candidate.num_tokens().min(4)), 1.0));
    }
    feats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::extract_candidates;
    use crate::tokenize::tokenize;

    fn setup(text: &str) -> (Vec<Token>, Vec<Candidate>) {
        let toks = tokenize(text);
        let cands = extract_candidates(&toks, 4);
        (toks, cands)
    }

    fn names(feats: &[(String, f64)]) -> Vec<&str> {
        feats.iter().map(|(n, _)| n.as_str()).collect()
    }

    #[test]
    fn full_config_emits_all_groups() {
        let (toks, cands) = setup("Today Dr. John Smith spoke.");
        let first = Gazetteer::from_names(["john"]);
        let last = Gazetteer::from_names(["smith"]);
        let cand = cands.iter().find(|c| c.text == "John Smith").unwrap();
        let feats = candidate_features(cand, &toks, &first, &last, &FeatureConfig::default());
        let names = names(&feats);
        assert!(names.contains(&"tok=john"));
        assert!(names.contains(&"prev=."));
        assert!(names.contains(&"first_in_gaz"));
        assert!(names.contains(&"last_in_gaz"));
        assert!(names.contains(&"len=2"));
        assert!(names.contains(&"shape=Xx_Xx"));
    }

    #[test]
    fn title_cue_fires_after_honorific() {
        let (toks, cands) = setup("He saw Dr. Smith yesterday.");
        let first = Gazetteer::default();
        let last = Gazetteer::default();
        let cand = cands.iter().find(|c| c.text == "Smith").unwrap();
        let feats = candidate_features(cand, &toks, &first, &last, &FeatureConfig::default());
        assert!(names(&feats).contains(&"after_title"));
    }

    #[test]
    fn disabled_groups_are_absent() {
        let (toks, cands) = setup("Alice went home.");
        let config = FeatureConfig {
            lexical: false,
            context: false,
            shape: false,
            gazetteer: false,
            title_cue: false,
            length: false,
        };
        let feats = candidate_features(
            &cands[0],
            &toks,
            &Gazetteer::default(),
            &Gazetteer::default(),
            &config,
        );
        assert_eq!(names(&feats), vec!["bias"]);
    }

    #[test]
    fn sentence_boundaries_use_markers() {
        let (toks, cands) = setup("Alice");
        let feats = candidate_features(
            &cands[0],
            &toks,
            &Gazetteer::default(),
            &Gazetteer::default(),
            &FeatureConfig::default(),
        );
        let n = names(&feats);
        assert!(n.contains(&"prev=<BOS>"));
        assert!(n.contains(&"next=<EOS>"));
        assert!(n.contains(&"sent_initial"));
    }

    #[test]
    fn single_token_candidate_skips_last_name_feature() {
        let (toks, cands) = setup("Smith spoke.");
        let last = Gazetteer::from_names(["smith"]);
        let feats = candidate_features(
            &cands[0],
            &toks,
            &Gazetteer::default(),
            &last,
            &FeatureConfig::default(),
        );
        assert!(!names(&feats).contains(&"last_in_gaz"));
    }
}
