//! Text-processing substrate for Helix's information-extraction task.
//!
//! The paper's second demo application "identifies person mentions from
//! news articles" (§3) — the canonical DeepDive workload. That pipeline
//! needs sentence splitting, tokenization, candidate extraction
//! (capitalized token runs), gazetteer lookups, and contextual features.
//! The paper used Stanford CoreNLP-class tooling on the JVM; this crate is
//! the deliberately compact Rust equivalent that exercises the same
//! workflow structure: several expensive pre-processing operators feeding a
//! learner.

#![warn(missing_docs)]

pub mod candidates;
pub mod features;
pub mod gazetteer;
pub mod sentence;
pub mod tokenize;

pub use candidates::{extract_candidates, Candidate};
pub use gazetteer::Gazetteer;
pub use sentence::split_sentences;
pub use tokenize::{tokenize, Token};
