//! Whitespace/punctuation tokenizer with byte-span tracking.

/// A token with its byte offsets into the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text.
    pub text: String,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// Whether the token starts with an ASCII uppercase letter.
    pub fn is_capitalized(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
    }

    /// Whether every character is alphabetic.
    pub fn is_alphabetic(&self) -> bool {
        !self.text.is_empty() && self.text.chars().all(|c| c.is_alphabetic())
    }

    /// Word shape: `X` for upper, `x` for lower, `9` for digit, else the
    /// character itself (collapsed runs). E.g. `"McGee"` → `"XxXx"`,
    /// `"1984"` → `"9"`.
    pub fn shape(&self) -> String {
        let mut shape = String::new();
        let mut last = '\0';
        for c in self.text.chars() {
            let s = if c.is_ascii_uppercase() {
                'X'
            } else if c.is_lowercase() {
                'x'
            } else if c.is_ascii_digit() {
                '9'
            } else {
                c
            };
            if s != last {
                shape.push(s);
                last = s;
            }
        }
        shape
    }
}

/// Splits text into word and punctuation tokens.
///
/// Words are maximal runs of alphanumerics plus internal apostrophes and
/// hyphens (`O'Brien`, `vice-chair`); each punctuation character is its own
/// token. Whitespace separates but never appears in tokens.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes = text.char_indices().collect::<Vec<_>>();
    let mut i = 0;
    while i < bytes.len() {
        let (offset, c) = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() {
            let start = offset;
            let mut j = i;
            while j < bytes.len() {
                let (_, cj) = bytes[j];
                let is_word = cj.is_alphanumeric()
                    || ((cj == '\'' || cj == '-')
                        && j + 1 < bytes.len()
                        && bytes[j + 1].1.is_alphanumeric()
                        && j > i);
                if !is_word {
                    break;
                }
                j += 1;
            }
            let end = if j < bytes.len() {
                bytes[j].0
            } else {
                text.len()
            };
            tokens.push(Token {
                text: text[start..end].to_string(),
                start,
                end,
            });
            i = j;
        } else {
            let start = offset;
            let end = if i + 1 < bytes.len() {
                bytes[i + 1].0
            } else {
                text.len()
            };
            tokens.push(Token {
                text: text[start..end].to_string(),
                start,
                end,
            });
            i += 1;
        }
    }
    tokens
}

/// Extracts n-grams of token texts (lowercased), used as bag features.
pub fn ngrams(tokens: &[Token], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens
        .windows(n)
        .map(|w| {
            w.iter()
                .map(|t| t.text.to_lowercase())
                .collect::<Vec<_>>()
                .join("_")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_words_and_punctuation() {
        let toks = tokenize("Hello, world!");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Hello", ",", "world", "!"]);
    }

    #[test]
    fn spans_index_into_source() {
        let text = "Ann met Bob.";
        for tok in tokenize(text) {
            assert_eq!(&text[tok.start..tok.end], tok.text);
        }
    }

    #[test]
    fn keeps_internal_apostrophes_and_hyphens() {
        let texts: Vec<String> = tokenize("O'Brien co-chairs")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, vec!["O'Brien", "co-chairs"]);
    }

    #[test]
    fn trailing_apostrophe_is_separate() {
        let texts: Vec<String> = tokenize("dogs' bones")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, vec!["dogs", "'", "bones"]);
    }

    #[test]
    fn handles_unicode_words() {
        let toks = tokenize("Zoë naïve");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text, "Zoë");
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn capitalization_and_shape() {
        let toks = tokenize("McGee saw 1984");
        assert!(toks[0].is_capitalized());
        assert!(!toks[1].is_capitalized());
        assert_eq!(toks[0].shape(), "XxXx");
        assert_eq!(toks[2].shape(), "9");
    }

    #[test]
    fn ngrams_join_lowercased() {
        let toks = tokenize("The Quick fox");
        assert_eq!(ngrams(&toks, 2), vec!["the_quick", "quick_fox"]);
        assert!(ngrams(&toks, 4).is_empty());
        assert!(ngrams(&toks, 0).is_empty());
    }
}
