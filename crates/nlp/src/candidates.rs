//! Person-mention candidate extraction.

use crate::tokenize::Token;

/// A candidate mention: a maximal run of capitalized alphabetic tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Index of the first token of the run.
    pub token_start: usize,
    /// One past the last token of the run.
    pub token_end: usize,
    /// Byte span start in the source text.
    pub start: usize,
    /// Byte span end in the source text.
    pub end: usize,
    /// The candidate surface text (tokens joined by single spaces).
    pub text: String,
}

impl Candidate {
    /// Number of tokens in the candidate.
    pub fn num_tokens(&self) -> usize {
        self.token_end - self.token_start
    }
}

/// Extracts maximal runs of capitalized alphabetic tokens as candidates.
///
/// Runs are capped at `max_len` tokens (longer runs are split greedily),
/// and single-token runs are kept — "Cher" is a valid person mention.
/// Sentence-initial tokens are included; disambiguation is the learner's
/// job, with features from [`crate::features`].
pub fn extract_candidates(tokens: &[Token], max_len: usize) -> Vec<Candidate> {
    let max_len = max_len.max(1);
    let mut candidates = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_capitalized() && tokens[i].is_alphabetic() {
            let mut j = i;
            while j < tokens.len()
                && j - i < max_len
                && tokens[j].is_capitalized()
                && tokens[j].is_alphabetic()
            {
                j += 1;
            }
            let text = tokens[i..j]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            candidates.push(Candidate {
                token_start: i,
                token_end: j,
                start: tokens[i].start,
                end: tokens[j - 1].end,
                text,
            });
            i = j;
        } else {
            i += 1;
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    #[test]
    fn finds_capitalized_runs() {
        let toks = tokenize("Yesterday, John Smith met Mary in Paris.");
        let cands = extract_candidates(&toks, 4);
        let texts: Vec<&str> = cands.iter().map(|c| c.text.as_str()).collect();
        assert_eq!(texts, vec!["Yesterday", "John Smith", "Mary", "Paris"]);
    }

    #[test]
    fn adjacent_capitalized_tokens_form_maximal_runs() {
        let toks = tokenize("Call John Smith today.");
        let cands = extract_candidates(&toks, 4);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].text, "Call John Smith");
    }

    #[test]
    fn punctuation_breaks_runs() {
        let toks = tokenize("Smith, Jones and Lee");
        let cands = extract_candidates(&toks, 4);
        let texts: Vec<&str> = cands.iter().map(|c| c.text.as_str()).collect();
        assert_eq!(texts, vec!["Smith", "Jones", "Lee"]);
    }

    #[test]
    fn long_runs_split_at_max_len() {
        let toks = tokenize("Alpha Beta Gamma Delta");
        let cands = extract_candidates(&toks, 2);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].text, "Alpha Beta");
        assert_eq!(cands[1].text, "Gamma Delta");
    }

    #[test]
    fn byte_spans_cover_surface_text() {
        let text = "call John Smith today.";
        let toks = tokenize(text);
        let cands = extract_candidates(&toks, 4);
        let smith = cands.iter().find(|c| c.text == "John Smith").unwrap();
        assert_eq!(&text[smith.start..smith.end], "John Smith");
        assert_eq!(smith.num_tokens(), 2);
    }

    #[test]
    fn no_candidates_in_lowercase_text() {
        let toks = tokenize("all lower case words here");
        assert!(extract_candidates(&toks, 4).is_empty());
    }

    #[test]
    fn numbers_are_not_candidates() {
        let toks = tokenize("Room 42 is open");
        let cands = extract_candidates(&toks, 4);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].text, "Room");
    }
}
