//! Rule-based sentence splitting.

/// Common abbreviations that end with a period but do not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "Mr.", "Mrs.", "Ms.", "Dr.", "Prof.", "Sen.", "Rep.", "Gov.", "St.", "Jr.", "Sr.", "Inc.",
    "Corp.", "Co.", "Ltd.", "U.S.", "U.K.", "a.m.", "p.m.", "etc.", "vs.", "Gen.", "Col.",
];

/// Splits text into sentences on `.`, `!`, `?` followed by whitespace and
/// an uppercase letter, with an abbreviation blocklist.
///
/// Returns `(start, end)` byte spans plus the sentence text; spans cover
/// the trimmed sentence so they index into the original document.
pub fn split_sentences(text: &str) -> Vec<(usize, usize, String)> {
    let bytes: Vec<(usize, char)> = text.char_indices().collect();
    let mut sentences = Vec::new();
    let mut start = 0usize;

    let mut i = 0;
    while i < bytes.len() {
        let (offset, c) = bytes[i];
        if c == '.' || c == '!' || c == '?' {
            // Lookahead: whitespace then uppercase (or end of text).
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].1.is_whitespace() {
                j += 1;
            }
            let next_is_upper = j < bytes.len() && bytes[j].1.is_uppercase();
            let at_end = j >= bytes.len();
            let boundary_ok = at_end || (j > i + 1 && next_is_upper);
            let is_abbrev = c == '.' && ends_with_abbreviation(text, offset);
            if boundary_ok && !is_abbrev {
                let end = offset + c.len_utf8();
                push_trimmed(text, start, end, &mut sentences);
                start = if j < bytes.len() {
                    bytes[j].0
                } else {
                    text.len()
                };
                i = j;
                continue;
            }
        }
        i += 1;
    }
    if start < text.len() {
        push_trimmed(text, start, text.len(), &mut sentences);
    }
    sentences
}

fn push_trimmed(text: &str, start: usize, end: usize, out: &mut Vec<(usize, usize, String)>) {
    let raw = &text[start..end];
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return;
    }
    let lead = raw.len() - raw.trim_start().len();
    let trail = raw.len() - raw.trim_end().len();
    out.push((start + lead, end - trail, trimmed.to_string()));
}

/// Whether the period at `period_offset` terminates a known abbreviation.
fn ends_with_abbreviation(text: &str, period_offset: usize) -> bool {
    let upto = &text[..=period_offset];
    ABBREVIATIONS.iter().any(|abbr| upto.ends_with(abbr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_simple_sentences() {
        let s = split_sentences("Ann runs. Bob walks! Who wins? Nobody.");
        let texts: Vec<&str> = s.iter().map(|(_, _, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            vec!["Ann runs.", "Bob walks!", "Who wins?", "Nobody."]
        );
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = split_sentences("Dr. Smith met Mr. Jones. They talked.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].2, "Dr. Smith met Mr. Jones.");
    }

    #[test]
    fn lowercase_continuation_does_not_split() {
        let s = split_sentences("He arrived at 3 p.m. and left soon after. Done.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn spans_index_into_document() {
        let doc = "  One here. Two there.  ";
        for (start, end, text) in split_sentences(doc) {
            assert_eq!(&doc[start..end], text);
        }
    }

    #[test]
    fn unterminated_final_sentence_kept() {
        let s = split_sentences("First one. Second has no end");
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].2, "Second has no end");
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   ").is_empty());
    }
}
