//! Adaptive-optimizer payoff: a warm engine re-planning from memo
//! observations versus a cold engine planning from name-keyed estimates
//! alone, on the scaled census workload.
//!
//! Two rows in one group:
//!
//! * `optimizer_replan/adaptive_warm` — an engine with an accumulated
//!   memo and a warm store, re-planning on every run (factor 1.0, the
//!   always-adapt setting). This measures the steady-state analyst
//!   iteration *including* the adaptive re-plan's overhead — the
//!   divergence scan and the second `plan_states` pass.
//! * `optimizer_replan/estimate_cold` — a fresh engine per sample over an
//!   empty store: first-iteration planning from estimates only, computing
//!   everything.
//!
//! The CI gate asserts `adaptive_warm <= estimate_cold` within the run:
//! observed-cost planning plus reuse must never lose to cold estimates,
//! otherwise the adaptive path's overhead has swallowed its payoff.
//!
//! Run with `cargo bench -p helix-bench --bench optimizer`. Set
//! `HELIX_BENCH_FAST=1` for the reduced CI configuration and
//! `HELIX_BENCH_JSON=path.json` to capture machine-readable results.

use criterion::{criterion_group, criterion_main, Criterion};
use helix_core::{Engine, EngineConfig};
use helix_workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use std::path::{Path, PathBuf};

fn fast_mode() -> bool {
    std::env::var_os("HELIX_BENCH_FAST").is_some_and(|v| v != "0")
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-bench-opt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn engine(store: &Path, replan_factor: f64) -> Engine {
    Engine::new(EngineConfig::helix(store).with_replan_factor(replan_factor)).unwrap()
}

fn bench_optimizer(c: &mut Criterion) {
    let fast = fast_mode();
    let samples = if fast { 5 } else { 10 };
    let data = bench_dir("data");
    generate_census(
        &data,
        &CensusDataSpec {
            train_rows: if fast { 2_000 } else { 8_000 },
            test_rows: if fast { 500 } else { 2_000 },
            ..Default::default()
        },
    )
    .unwrap();
    let params = CensusParams::initial(&data);

    let mut group = c.benchmark_group("optimizer_replan");
    group.sample_size(samples);

    // Warm adaptive: two priming runs build the store, the memo, and the
    // observed-cost history; every sample then runs the steady-state
    // analyst iteration through the always-replan path.
    let warm = engine(&bench_dir("warm"), 1.0);
    warm.run(&census_workflow(&params).unwrap()).unwrap();
    warm.run(&census_workflow(&params).unwrap()).unwrap();
    assert!(
        warm.optimizer_stats().replans_triggered > 0,
        "the warm engine must actually exercise the adaptive path"
    );
    group.bench_function("adaptive_warm", |b| {
        b.iter(|| warm.run(&census_workflow(&params).unwrap()).unwrap())
    });

    // Cold estimate-only: a fresh engine over an empty store per sample —
    // first-iteration planning with nothing but name-keyed estimates.
    let cold_root = bench_dir("cold");
    let mut next = 0u32;
    group.bench_function("estimate_cold", |b| {
        b.iter(|| {
            next += 1;
            let cold = engine(&cold_root.join(format!("s{next}")), f64::INFINITY);
            cold.run(&census_workflow(&params).unwrap()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
