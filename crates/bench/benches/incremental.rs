//! Incremental-data payoff: a delta rerun over a warm store versus a
//! from-scratch recompute of the same (grown) dataset, on the scaled
//! census workload.
//!
//! Two rows in one group:
//!
//! * `incremental/incremental_delta` — one long-lived engine whose store
//!   already holds the previous run's partitions. Each sample appends a
//!   small labeled batch (setup, untimed) and then reruns the workflow:
//!   only the tail chunk's row range recomputes through the row-aligned
//!   prefix; unchanged partitions are served from the store.
//! * `incremental/full_recompute` — a fresh engine over an empty store
//!   per sample, handed the identical grown dataset: everything
//!   recomputes from the CSV up.
//!
//! The CI gate asserts `incremental_delta <= full_recompute` within the
//! run: serving unchanged partitions from the store must never lose to
//! recomputing them, otherwise chunk bookkeeping has swallowed its
//! payoff.
//!
//! Run with `cargo bench -p helix-bench --bench incremental`. Set
//! `HELIX_BENCH_FAST=1` for the reduced CI configuration and
//! `HELIX_BENCH_JSON=path.json` to capture machine-readable results.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use helix_core::{data, Engine, EngineConfig};
use helix_workloads::census::{
    self, census_workflow, generate_census, CensusDataSpec, CensusParams,
};
use std::path::PathBuf;

fn fast_mode() -> bool {
    std::env::var_os("HELIX_BENCH_FAST").is_some_and(|v| v != "0")
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-bench-incr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Rows per appended batch — one analyst labeling pass, far smaller than
/// a chunk, so each delta dirties exactly one tail partition.
const BATCH: usize = 16;

fn bench_incremental(c: &mut Criterion) {
    let fast = fast_mode();
    let samples = if fast { 5 } else { 10 };
    let spec = CensusDataSpec::scaled(if fast { 10 } else { 40 });

    let mut group = c.benchmark_group("incremental");
    group.sample_size(samples);

    // Delta rerun: prime the store with one full run, then append one
    // labeled batch per sample (untimed setup) and rerun.
    let inc_data = bench_dir("inc-data");
    generate_census(&inc_data, &spec).unwrap();
    let inc_params = CensusParams::initial(&inc_data);
    let engine = Engine::new(EngineConfig::helix(bench_dir("inc-store"))).unwrap();
    engine.run(&census_workflow(&inc_params).unwrap()).unwrap();
    let mut round = 0u64;
    group.bench_function("incremental_delta", |b| {
        b.iter_batched(
            || {
                round += 1;
                let rows = census::labeled_rows(BATCH, 10_000 + round);
                data::append_lines(&inc_data.join("train.csv"), &rows).unwrap();
            },
            |()| engine.run(&census_workflow(&inc_params).unwrap()).unwrap(),
            BatchSize::PerIteration,
        )
    });

    // From-scratch twin: the same growth pattern, but every sample gets a
    // fresh engine over an empty store and recomputes the whole dataset.
    let full_data = bench_dir("full-data");
    generate_census(&full_data, &spec).unwrap();
    let full_params = CensusParams::initial(&full_data);
    let full_stores = bench_dir("full-stores");
    let mut n = 0u64;
    group.bench_function("full_recompute", |b| {
        b.iter_batched(
            || {
                n += 1;
                let rows = census::labeled_rows(BATCH, 10_000 + n);
                data::append_lines(&full_data.join("train.csv"), &rows).unwrap();
                Engine::new(EngineConfig::helix(full_stores.join(format!("s{n}")))).unwrap()
            },
            |engine| engine.run(&census_workflow(&full_params).unwrap()).unwrap(),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
