//! Solver-scaling ablation: Dinic vs Edmonds–Karp, and the full PSP-based
//! recomputation plan, on layered DAGs shaped like real workflow graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_mincut::{FlowNetwork, Project, ProjectSelection};

/// Builds a layered flow network: `layers` layers of `width` vertices,
/// dense edges between adjacent layers.
fn layered_network(layers: usize, width: usize) -> (FlowNetwork, usize, usize) {
    let n = layers * width + 2;
    let source = n - 2;
    let sink = n - 1;
    let mut net = FlowNetwork::new(n);
    let mut seed = 0x2545f4914f6cdd1du64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for v in 0..width {
        net.add_edge(source, v, next() % 50 + 1);
    }
    for layer in 0..layers - 1 {
        for a in 0..width {
            for b in 0..width {
                net.add_edge(layer * width + a, (layer + 1) * width + b, next() % 20 + 1);
            }
        }
    }
    for v in 0..width {
        net.add_edge((layers - 1) * width + v, sink, next() % 50 + 1);
    }
    (net, source, sink)
}

fn bench_maxflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow_layered");
    for &(layers, width) in &[(4usize, 8usize), (8, 16), (16, 24)] {
        let label = format!("{layers}x{width}");
        group.bench_with_input(
            BenchmarkId::new("dinic", &label),
            &(layers, width),
            |b, &(l, w)| {
                b.iter_batched(
                    || layered_network(l, w),
                    |(mut net, s, t)| net.dinic(s, t).max_flow,
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("edmonds_karp", &label),
            &(layers, width),
            |b, &(l, w)| {
                b.iter_batched(
                    || layered_network(l, w),
                    |(mut net, s, t)| net.edmonds_karp(s, t).max_flow,
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

/// PSP instance shaped like a workflow recomputation problem: a chain of
/// `n` stages with random profits and prerequisite edges.
fn psp_instance(n: usize) -> ProjectSelection {
    let mut psp = ProjectSelection::new();
    let mut seed = 88172645463325252u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for _ in 0..n {
        psp.add_project(Project::new((next() % 2000) as i64 - 1000));
    }
    for i in 1..n {
        psp.require(i, i - 1);
        if i >= 4 {
            psp.require(i, i - 4);
        }
    }
    psp
}

fn bench_psp(c: &mut Criterion) {
    let mut group = c.benchmark_group("project_selection");
    for &n in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let psp = psp_instance(n);
            b.iter(|| psp.solve().profit)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maxflow, bench_psp);
criterion_main!(benches);
