//! Materialization-strategy ablation: 3-iteration census mini-series under
//! each policy, plus a storage-budget sweep for the Helix online rule.
//!
//! `HELIX_BENCH_FAST=1` selects the reduced CI configuration and
//! `HELIX_BENCH_JSON=path.json` captures machine-readable results for the
//! benchmark-regression gate (see the criterion shim docs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_core::materialize::MaterializationPolicyKind;
use helix_core::{Engine, EngineConfig};
use helix_workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};

fn mini_series(dir: &std::path::Path, config: EngineConfig) -> f64 {
    let engine = Engine::new(config).unwrap();
    let mut params = CensusParams::initial(dir);
    let mut total = 0.0;
    total += engine
        .run(&census_workflow(&params).unwrap())
        .unwrap()
        .total_secs;
    params.include_marital_status = true;
    total += engine
        .run(&census_workflow(&params).unwrap())
        .unwrap()
        .total_secs;
    params.reg_param = 0.02;
    total += engine
        .run(&census_workflow(&params).unwrap())
        .unwrap()
        .total_secs;
    total
}

fn bench_strategies(c: &mut Criterion) {
    let fast = std::env::var_os("HELIX_BENCH_FAST").is_some_and(|v| v != "0");
    let samples = if fast { 5 } else { 10 };
    let dir = std::env::temp_dir().join(format!("helix-bench-mat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: if fast { 400 } else { 800 },
            test_rows: if fast { 100 } else { 200 },
            ..Default::default()
        },
    )
    .unwrap();

    let mut group = c.benchmark_group("materialization_strategy");
    group.sample_size(samples);
    for policy in [
        MaterializationPolicyKind::HelixOnline,
        MaterializationPolicyKind::All,
        MaterializationPolicyKind::Never,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let store = dir.join(format!("store-{policy:?}"));
                    let _ = std::fs::remove_dir_all(&store);
                    let config = EngineConfig {
                        materialization: policy,
                        ..EngineConfig::helix(store)
                    };
                    mini_series(&dir, config)
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("storage_budget_sweep");
    group.sample_size(samples);
    for budget_mb in [1u64, 16, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{budget_mb}MiB")),
            &budget_mb,
            |b, &budget_mb| {
                b.iter(|| {
                    let store = dir.join(format!("store-b{budget_mb}"));
                    let _ = std::fs::remove_dir_all(&store);
                    let config = EngineConfig::helix(store).with_budget(budget_mb << 20);
                    mini_series(&dir, config)
                })
            },
        );
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
