//! Scheduler speedup and executor comparison on the census and NLP
//! (IE + news) workloads.
//!
//! Four groups:
//!
//! * `scheduler_first_iteration` — full-engine first iterations at 1
//!   thread vs N threads. The first iteration computes every node, so it
//!   carries the full inter-operator parallelism of each DAG: census fans
//!   one scan into the extractor set, IE runs five independent feature
//!   UDFs over one candidate collection, and the news classifier is a
//!   pure extractor fan-out.
//! * `scheduler_scaled` — the same three workloads on the parameterized
//!   scaled generators (`CensusDataSpec::scaled` / `NewsDataSpec::scaled`)
//!   with operator partitioning engaged, measuring the
//!   sequential/parallel crossover documented in docs/PERFORMANCE.md. The
//!   CI regression gate (`bench_guard --compare`) asserts Nthr ≤ 1thr for
//!   the heavy-per-row workloads (`ie`, `news`) here.
//! * `scheduler_executor` — the ready-queue executor vs the historical
//!   wave-barrier baseline (and the sequential loop) on the *same*
//!   compiled first-iteration plan, isolating raw executor performance
//!   from compilation and materialization. The CI regression gate
//!   asserts ready ≤ wave here.
//! * `scheduler_warm` — the edit→rerun case: a persistent session flips
//!   the learner's regularization each sample, so only the learner tail
//!   recomputes against a warm store and a warm worker pool. This is the
//!   paper's human-in-the-loop latency, as opposed to the cold first
//!   iterations above.
//!
//! Run with `cargo bench -p helix-bench --bench scheduler`. Set
//! `HELIX_BENCH_FAST=1` for the reduced CI configuration and
//! `HELIX_BENCH_JSON=path.json` to capture machine-readable results (see
//! the criterion shim docs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_core::compiler::compile;
use helix_core::cost::CostModel;
use helix_core::recompute::RecomputationPolicy;
use helix_core::scheduler::execute_plan_with;
use helix_core::store::StoreOptions;
use helix_core::{Engine, EngineConfig, ExecStrategy, LearnerParam, Session, Workflow};
use helix_workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use helix_workloads::ie::{ie_workflow, IeParams};
use helix_workloads::news::{generate_news, news_workflow, NewsDataSpec, NewsParams};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Reduced sizes for the CI regression job (`HELIX_BENCH_FAST=1`): the
/// comparison stays two-sided but each sample is a few hundred ms.
fn fast_mode() -> bool {
    std::env::var_os("HELIX_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Thread count for the parallel rows: all hardware threads, but at least
/// 4 so the comparison stays two-sided even on small containers (extra
/// threads on a starved box cost little; on a multi-core runner this is
/// where the ≥1.5× census speedup shows up).
fn bench_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4)
}

/// One fresh-engine first iteration at the given thread count; the store
/// directory is recreated per call so every run computes everything.
fn run_once(workflow: &Workflow, store_dir: &Path, threads: usize) -> f64 {
    let _ = std::fs::remove_dir_all(store_dir);
    let engine = Engine::new(EngineConfig::helix(store_dir).with_parallelism(threads)).unwrap();
    let report = engine.run(workflow).unwrap();
    assert!(report.computed() > 0, "first iteration must compute");
    report.total_secs
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-bench-sched-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The three workloads with every optional feature wired in, so the DAGs
/// are at full width (the paper's late-iteration configuration).
fn workloads() -> Vec<(&'static str, Workflow)> {
    let fast = fast_mode();
    let census_dir = bench_dir("census");
    generate_census(
        &census_dir,
        &CensusDataSpec {
            train_rows: if fast { 3_000 } else { 12_000 },
            test_rows: if fast { 800 } else { 3_000 },
            ..Default::default()
        },
    )
    .unwrap();
    let mut census_params = CensusParams::initial(&census_dir);
    census_params.include_marital_status = true;
    census_params.include_interaction = true;
    census_params.include_capital_loss = true;
    let census = census_workflow(&census_params).unwrap();

    let news_dir = bench_dir("news");
    generate_news(
        &news_dir,
        &NewsDataSpec {
            docs: if fast { 120 } else { 400 },
            ..Default::default()
        },
    )
    .unwrap();
    let mut ie_params = IeParams::initial(&news_dir);
    ie_params.feat_context = true;
    ie_params.feat_shape = true;
    ie_params.feat_gazetteer = true;
    ie_params.feat_title = true;
    let ie = ie_workflow(&ie_params).unwrap();

    let mut news_params = NewsParams::initial(&news_dir);
    news_params.feat_titles = true;
    news_params.feat_orgs = true;
    let news = news_workflow(&news_params).unwrap();

    vec![("census", census), ("ie", ie), ("news", news)]
}

/// Like [`run_once`] but with an explicit operator-partition threshold,
/// so wide nodes split into row-range partitions at bench scale.
fn run_scaled(workflow: &Workflow, store_dir: &Path, threads: usize, partition_rows: usize) -> f64 {
    let _ = std::fs::remove_dir_all(store_dir);
    let engine = Engine::new(
        EngineConfig::helix(store_dir)
            .with_parallelism(threads)
            .with_partition_rows(partition_rows),
    )
    .unwrap();
    let report = engine.run(workflow).unwrap();
    assert!(report.computed() > 0, "first iteration must compute");
    report.total_secs
}

/// The scaled configurations: the seed-deterministic generators at 10x
/// (CI fast mode) or larger multiples of their bench base size, paired
/// with a partition threshold sized to the workload's per-row cost (cheap
/// census rows get coarse partitions; expensive NLP rows get fine ones).
/// Returns `(tag, workflow, partition_rows)`.
fn scaled_workloads() -> Vec<(&'static str, Workflow, usize)> {
    let fast = fast_mode();
    let census_dir = bench_dir("scaled-census");
    generate_census(
        &census_dir,
        &CensusDataSpec::scaled(if fast { 10 } else { 100 }),
    )
    .unwrap();
    let census = census_workflow(&CensusParams::bench(&census_dir)).unwrap();

    let news_dir = bench_dir("scaled-news");
    generate_news(&news_dir, &NewsDataSpec::scaled(if fast { 10 } else { 30 })).unwrap();
    let ie = ie_workflow(&IeParams::bench(&news_dir)).unwrap();
    let news = news_workflow(&NewsParams::bench(&news_dir)).unwrap();

    vec![("census", census, 256), ("ie", ie, 512), ("news", news, 32)]
}

fn bench_scheduler(c: &mut Criterion) {
    let threads = bench_threads();
    let samples = if fast_mode() { 5 } else { 10 };
    let workloads = workloads();

    let mut group = c.benchmark_group("scheduler_first_iteration");
    group.sample_size(samples);
    for (tag, workflow) in &workloads {
        // The parallel row's label is machine-independent ("Nthr", not
        // the actual count) so the committed regression baseline keys
        // stay valid when runner core counts change.
        for (label, t) in [("1thr", 1usize), ("Nthr", threads)] {
            let store = bench_dir(&format!("store-{tag}-{t}"));
            group.bench_with_input(BenchmarkId::new(*tag, label), &t, |b, &t| {
                b.iter(|| run_once(workflow, &store, t))
            });
        }
    }
    group.finish();

    // Scaled generators with operator partitioning engaged: the Nthr row
    // must beat 1thr on the heavy-per-row workloads (the CI crossover
    // gate); census is measured but ungated — its cheap rows sit near the
    // crossover on small runners.
    let mut group = c.benchmark_group("scheduler_scaled");
    group.sample_size(samples);
    for (tag, workflow, partition_rows) in &scaled_workloads() {
        for (label, t) in [("1thr", 1usize), ("Nthr", threads)] {
            let store = bench_dir(&format!("scaled-store-{tag}-{t}"));
            group.bench_with_input(BenchmarkId::new(*tag, label), &t, |b, &t| {
                b.iter(|| run_scaled(workflow, &store, t, *partition_rows))
            });
        }
    }
    group.finish();

    // Raw executor comparison on identical compiled plans: an empty store
    // and a no-op merge keep every sample a pure all-compute execution.
    let mut group = c.benchmark_group("scheduler_executor");
    group.sample_size(samples);
    for (tag, workflow) in &workloads {
        let store_dir = bench_dir(&format!("exec-{tag}"));
        let _ = std::fs::remove_dir_all(&store_dir);
        let store = StoreOptions::new(&store_dir)
            .budget_bytes(1 << 30)
            .open()
            .unwrap();
        let cm = CostModel::new();
        let plan = compile(workflow, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        for (label, strategy) in [
            ("seq", ExecStrategy::Sequential),
            ("wave", ExecStrategy::WaveBarrier),
            ("ready", ExecStrategy::ReadyQueue),
        ] {
            group.bench_with_input(BenchmarkId::new(*tag, label), &strategy, |b, &strategy| {
                b.iter(|| {
                    execute_plan_with(workflow, &plan, &store, strategy, threads, |_, _, _| Ok(()))
                        .unwrap()
                })
            });
        }
    }
    group.finish();

    // Warm edit→rerun iterations: one persistent session per row; each
    // sample flips the learner's regularization and reruns, so the
    // change tracker reuses everything upstream of the learner and the
    // run measures the human-in-the-loop latency the engine optimizes.
    let census = &workloads
        .iter()
        .find(|(tag, _)| *tag == "census")
        .expect("census workload present")
        .1;
    let mut group = c.benchmark_group("scheduler_warm");
    group.sample_size(samples);
    for (label, t) in [("1thr", 1usize), ("Nthr", threads)] {
        let dir = bench_dir(&format!("warm-{t}"));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Arc::new(
            Engine::new(EngineConfig::helix(dir.join("store")).with_parallelism(t)).unwrap(),
        );
        let mut session = Session::new(engine, "warm-bench", census.clone());
        session.iterate().unwrap(); // cold run outside the measurement
        let mut flip = false;
        group.bench_with_input(BenchmarkId::new("census_edit_rerun", label), &t, |b, _| {
            b.iter(|| {
                flip = !flip;
                let reg = if flip { 0.01 } else { 0.1 };
                session
                    .set_learner_param("predictions", LearnerParam::RegParam(reg))
                    .unwrap();
                session.iterate().unwrap().total_secs
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
