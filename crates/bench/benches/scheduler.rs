//! Wave-scheduler speedup: 1-thread vs N-thread first-iteration execution
//! on the census and NLP (IE + news) workloads.
//!
//! The first iteration computes every node, so it carries the full
//! inter-operator parallelism of each DAG: census fans one scan into the
//! extractor set, IE runs five independent feature UDFs over one candidate
//! collection, and the news classifier is a pure extractor fan-out. The
//! `threads=1` rows are the pre-scheduler baseline; the `threads=N` rows
//! are what the engine now does by default.
//!
//! Run with `cargo bench --bench scheduler`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_core::{Engine, EngineConfig};
use helix_workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use helix_workloads::ie::{ie_workflow, IeParams};
use helix_workloads::news::{generate_news, news_workflow, NewsDataSpec, NewsParams};
use std::path::{Path, PathBuf};

/// Thread count for the parallel rows: all hardware threads, but at least
/// 4 so the comparison stays two-sided even on small containers (extra
/// threads on a starved box cost little; on a multi-core runner this is
/// where the ≥1.5× census speedup shows up).
fn bench_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4)
}

/// One fresh-engine first iteration at the given thread count; the store
/// directory is recreated per call so every run computes everything.
fn run_once(workflow: &helix_core::Workflow, store_dir: &Path, threads: usize) -> f64 {
    let _ = std::fs::remove_dir_all(store_dir);
    let mut engine = Engine::new(EngineConfig::helix(store_dir).with_parallelism(threads)).unwrap();
    let report = engine.run(workflow).unwrap();
    assert!(report.computed() > 0, "first iteration must compute");
    report.total_secs
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-bench-sched-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bench_scheduler(c: &mut Criterion) {
    let threads = bench_threads();

    // Census: all optional features wired so the extractor fan-out is at
    // full width (the paper's late-iteration configuration).
    let census_dir = bench_dir("census");
    generate_census(
        &census_dir,
        &CensusDataSpec {
            train_rows: 12_000,
            test_rows: 3_000,
            ..Default::default()
        },
    )
    .unwrap();
    let mut census_params = CensusParams::initial(&census_dir);
    census_params.include_marital_status = true;
    census_params.include_interaction = true;
    census_params.include_capital_loss = true;
    let census = census_workflow(&census_params).unwrap();

    // IE over the news corpus with the full feature-UDF fan-out.
    let news_dir = bench_dir("news");
    generate_news(
        &news_dir,
        &NewsDataSpec {
            docs: 400,
            ..Default::default()
        },
    )
    .unwrap();
    let mut ie_params = IeParams::initial(&news_dir);
    ie_params.feat_context = true;
    ie_params.feat_shape = true;
    ie_params.feat_gazetteer = true;
    ie_params.feat_title = true;
    let ie = ie_workflow(&ie_params).unwrap();

    // News density classifier: the widest DAG of the three.
    let mut news_params = NewsParams::initial(&news_dir);
    news_params.feat_titles = true;
    news_params.feat_orgs = true;
    let news = news_workflow(&news_params).unwrap();

    let mut group = c.benchmark_group("scheduler_first_iteration");
    group.sample_size(10);
    for (tag, workflow) in [("census", &census), ("ie", &ie), ("news", &news)] {
        for t in [1usize, threads] {
            let store = bench_dir(&format!("store-{tag}-{t}"));
            group.bench_with_input(BenchmarkId::new(tag, format!("{t}thr")), &t, |b, &t| {
                b.iter(|| run_once(workflow, &store, t))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
