//! Binary-codec throughput: encode/decode speed bounds materialization
//! cost, which the online optimizer's `l_i` estimates track.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use helix_dataflow::{codec, DataCollection, DataType, Row, Schema, Value};

fn collection(rows: usize) -> DataCollection {
    let schema = Schema::of(&[
        ("id", DataType::Int),
        ("name", DataType::Str),
        ("score", DataType::Float),
        ("feats", DataType::List),
    ]);
    let rows = (0..rows as i64)
        .map(|i| {
            Row(vec![
                Value::Int(i),
                Value::Str(format!("entity-{i}")),
                Value::Float(i as f64 * 0.25),
                Value::List(vec![
                    Value::List(vec![Value::Str(format!("f{}", i % 50)), Value::Float(1.0)]),
                    Value::List(vec![Value::Str("bias".into()), Value::Float(1.0)]),
                ]),
            ])
        })
        .collect();
    DataCollection::from_rows_unchecked(schema, rows)
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for &rows in &[1_000usize, 20_000] {
        let dc = collection(rows);
        let encoded = codec::encode(&dc);
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", rows), &dc, |b, dc| {
            b.iter(|| codec::encode(dc).len())
        });
        group.bench_with_input(BenchmarkId::new("decode", rows), &encoded, |b, bytes| {
            b.iter(|| codec::decode(bytes).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
