//! Fig. 2(b) as a criterion bench: the 10-iteration Census series per
//! system on a reduced dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_baselines::SystemKind;
use helix_bench::census_series;
use helix_workloads::census::{generate_census, CensusDataSpec};

fn bench_fig2b(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("helix-bench-fig2b-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: 1_000,
            test_rows: 250,
            ..Default::default()
        },
    )
    .unwrap();

    let mut group = c.benchmark_group("fig2b_census_series");
    group.sample_size(10);
    for system in [
        SystemKind::Helix,
        SystemKind::DeepDiveSim,
        SystemKind::KeystoneSim,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(system.label()),
            &system,
            |b, &system| {
                b.iter(|| {
                    let series = census_series(system, &dir, &dir).expect("series");
                    series.total_secs()
                })
            },
        );
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_fig2b);
criterion_main!(benches);
