//! Serving-path round-trips and load: the HTTP front end under
//! concurrent analyst sessions.
//!
//! Three groups:
//!
//! * `serving_roundtrip` — single-request latency floor over a loopback
//!   socket: `GET /healthz` (pure protocol overhead: accept, parse,
//!   route, respond) and a warm `POST iterate` (protocol + a full
//!   all-loads engine iteration), measured against a live server.
//! * `serving_concurrent` — N analysts each driving create → iterate →
//!   edit → iterate over their own sessions at once, the remote version
//!   of the multi-session burst. One sample is the whole burst, so the
//!   number reflects queueing, engine sharing, and store contention —
//!   not just per-request cost.
//! * `serving_load` — the load harness: N concurrent keep-alive
//!   analysts hammering the server, reported as per-request latency
//!   **percentiles** (p50/p95/p99 via `criterion::record_metric`, not
//!   timed samples) plus shed counters, against a `Connection: close`
//!   control group and a deterministic overload scenario. These rows
//!   feed the CI `bench_guard` gate; see `docs/PERFORMANCE.md`.
//!
//! Run with `cargo bench -p helix-bench --bench serving`. Set
//! `HELIX_BENCH_FAST=1` for the reduced CI configuration.

use criterion::{criterion_group, criterion_main, record_metric, BenchmarkId, Criterion};
use helix_core::{Engine, EngineConfig, SessionManager, Workflow};
use helix_server::client::{self, Client};
use helix_server::routes::{Api, WorkflowRegistry};
use helix_server::server::{Server, ServerConfig, ServerHandle};
use helix_workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_mode() -> bool {
    std::env::var_os("HELIX_BENCH_FAST").is_some_and(|v| v != "0")
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-bench-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A server over a fresh engine with the census template registered.
fn serve(tag: &str, workers: usize) -> ServerHandle {
    let dir = bench_dir(tag);
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: if fast_mode() { 2_000 } else { 8_000 },
            test_rows: if fast_mode() { 500 } else { 2_000 },
            ..Default::default()
        },
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(dir.join("store"));
    let engine = Arc::new(Engine::new(EngineConfig::helix(dir.join("store"))).unwrap());
    let manager = Arc::new(SessionManager::new(engine));
    let mut registry = WorkflowRegistry::new();
    let params = CensusParams::initial(&dir);
    registry.register("census", move || -> helix_core::Result<Workflow> {
        census_workflow(&params)
    });
    Server::bind(
        ("127.0.0.1", 0),
        Api::new(manager, registry),
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn bench_serving(c: &mut Criterion) {
    let samples = if fast_mode() { 5 } else { 10 };

    let mut group = c.benchmark_group("serving_roundtrip");
    group.sample_size(samples);
    {
        let server = serve("latency", 4);
        let addr = server.addr();
        group.bench_function("healthz", |b| {
            b.iter(|| client::get(addr, "/healthz").unwrap().expect_ok())
        });
        // Warm the store once so the timed iterations are the analyst's
        // steady state: everything reusable loads.
        client::post(addr, "/sessions", r#"{"name":"warm","workflow":"census"}"#)
            .unwrap()
            .expect_ok();
        client::post(addr, "/sessions/warm/iterate", "")
            .unwrap()
            .expect_ok();
        group.bench_function("iterate_warm", |b| {
            b.iter(|| {
                client::post(addr, "/sessions/warm/iterate", "")
                    .unwrap()
                    .expect_ok()
            })
        });
        drop(server);
    }
    group.finish();

    let mut group = c.benchmark_group("serving_concurrent");
    group.sample_size(samples);
    for analysts in [2usize, 8] {
        let server = serve(&format!("burst-{analysts}"), 4);
        let addr = server.addr();
        // Warm shared intermediates so samples measure serving, not the
        // one-off cold compute.
        client::post(
            addr,
            "/sessions",
            r#"{"name":"warmup","workflow":"census"}"#,
        )
        .unwrap()
        .expect_ok();
        client::post(addr, "/sessions/warmup/iterate", "")
            .unwrap()
            .expect_ok();
        let mut round = 0usize;
        group.bench_with_input(
            BenchmarkId::new("analysts", analysts),
            &analysts,
            |b, &analysts| {
                b.iter(|| {
                    round += 1;
                    std::thread::scope(|scope| {
                        for i in 0..analysts {
                            let name = format!("a{round}-{i}");
                            scope.spawn(move || {
                                client::post(
                                    addr,
                                    "/sessions",
                                    &format!(r#"{{"name":"{name}","workflow":"census"}}"#),
                                )
                                .unwrap()
                                .expect_ok();
                                client::post(addr, &format!("/sessions/{name}/iterate"), "")
                                    .unwrap()
                                    .expect_ok();
                                client::post(
                                    addr,
                                    &format!("/sessions/{name}/edits"),
                                    &format!(
                                        r#"{{"kind":"set_learner_param","learner":"predictions","param":"seed","value":{}}}"#,
                                        1000 + i
                                    ),
                                )
                                .unwrap()
                                .expect_ok();
                                client::post(addr, &format!("/sessions/{name}/iterate"), "")
                                    .unwrap()
                                    .expect_ok();
                                client::delete(addr, &format!("/sessions/{name}")).unwrap().expect_ok();
                            });
                        }
                    });
                })
            },
        );
        drop(server);
    }
    group.finish();
}

/// Nearest-rank percentile over an already-sorted latency set.
fn percentile_ns(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Records p50/p95/p99 of `latencies` under `serving_load/<scenario>/p*`.
fn record_percentiles(scenario: &str, mut latencies: Vec<u128>) {
    latencies.sort_unstable();
    for (tag, p) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        record_metric(
            format!("serving_load/{scenario}/{tag}"),
            percentile_ns(&latencies, p),
        );
    }
}

/// N analysts, each timing `requests` round-trips through `run_request`;
/// returns every observed latency in nanoseconds.
fn drive_analysts(
    analysts: usize,
    requests: usize,
    run_request: impl Fn(usize, usize) + Sync,
) -> Vec<u128> {
    let run_request = &run_request;
    let mut all = Vec::with_capacity(analysts * requests);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..analysts)
            .map(|a| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(requests);
                    for r in 0..requests {
                        let start = Instant::now();
                        run_request(a, r);
                        lat.push(start.elapsed().as_nanos());
                    }
                    lat
                })
            })
            .collect();
        for handle in handles {
            all.extend(handle.join().unwrap());
        }
    });
    all
}

/// The load harness (see module docs). Latency percentiles and shed
/// counters are emitted with `record_metric`, so the rows reach
/// `HELIX_BENCH_JSON` and the CI gate even though no scenario uses
/// criterion's per-sample timing.
fn bench_serving_load(c: &mut Criterion) {
    let (analysts, requests) = if c.is_test_mode() {
        (2usize, 3usize)
    } else if fast_mode() {
        (4, 50)
    } else {
        (8, 200)
    };

    // -- keep-alive analysts vs Connection: close control -------------------
    // Sized within capacity (workers == analysts): under keep-alive a
    // worker is pinned per connection, so this measures steady-state
    // latency, not queueing. The `close` control pays a TCP connect per
    // request; keep-alive must not be slower (the CI ordering gate).
    {
        let server = serve("load", analysts.max(2));
        let addr = server.addr();
        let keepalive = drive_analysts(analysts, requests, |a, _| {
            // One persistent client per analyst thread, reused across its
            // whole request loop.
            thread_local! {
                static CLIENT: std::cell::RefCell<Option<Client>> =
                    const { std::cell::RefCell::new(None) };
            }
            let _ = a;
            CLIENT.with(|slot| {
                let mut slot = slot.borrow_mut();
                let client = slot.get_or_insert_with(|| Client::new(addr));
                client.get("/healthz").unwrap().expect_ok();
            });
        });
        record_percentiles("keepalive", keepalive);
        record_metric(
            "serving_load/keepalive/shed_total",
            u128::from(server.stats().shed),
        );

        let close = drive_analysts(analysts, requests, |_, _| {
            client::get(addr, "/healthz").unwrap().expect_ok();
        });
        record_percentiles("close", close);
        drop(server);
    }

    // -- keep-alive analysts iterating their own warm sessions --------------
    // The paper's workload shape: per-request latency of the full
    // edit→rerun loop over persistent connections. Recorded (not gated):
    // iteration time is engine-bound and noisier than the protocol rows.
    {
        let iterate_rounds = if c.is_test_mode() {
            1
        } else if fast_mode() {
            3
        } else {
            10
        };
        let server = serve("load-iter", analysts.max(2));
        let addr = server.addr();
        // Setup (untimed): one session per analyst, first iteration warm.
        std::thread::scope(|scope| {
            for a in 0..analysts {
                scope.spawn(move || {
                    let mut client = Client::new(addr);
                    client
                        .post(
                            "/sessions",
                            &format!(r#"{{"name":"analyst{a}","workflow":"census"}}"#),
                        )
                        .unwrap()
                        .expect_ok();
                    client
                        .post(&format!("/sessions/analyst{a}/iterate"), "")
                        .unwrap()
                        .expect_ok();
                });
            }
        });
        let iterate = drive_analysts(analysts, iterate_rounds, |a, _| {
            thread_local! {
                static CLIENT: std::cell::RefCell<Option<Client>> =
                    const { std::cell::RefCell::new(None) };
            }
            CLIENT.with(|slot| {
                let mut slot = slot.borrow_mut();
                let client = slot.get_or_insert_with(|| Client::new(addr));
                client
                    .post(&format!("/sessions/analyst{a}/iterate"), "")
                    .unwrap()
                    .expect_ok();
            });
        });
        record_percentiles("iterate", iterate);
        drop(server);
    }

    // -- deterministic overload: every offered-over-capacity connection
    //    sheds with 503, none spawns a thread, and the count is exact ----
    {
        let dir = bench_dir("load-overload");
        let _ = std::fs::remove_dir_all(dir.join("store"));
        let engine = Arc::new(Engine::new(EngineConfig::helix(dir.join("store"))).unwrap());
        let server = Server::bind(
            ("127.0.0.1", 0),
            Api::new(
                Arc::new(SessionManager::new(engine)),
                WorkflowRegistry::new(),
            ),
            ServerConfig {
                workers: 2,
                queue_depth: 2,
                read_timeout: Duration::from_secs(2),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();

        // Pin both workers with stalled half-requests for read_timeout.
        let mut stalled: Vec<TcpStream> = (0..2)
            .map(|_| {
                let mut conn = TcpStream::connect(addr).unwrap();
                conn.write_all(b"GET /heal").unwrap();
                conn.flush().unwrap();
                conn
            })
            .collect();
        std::thread::sleep(Duration::from_millis(150));
        // Fill both queue slots with requests that succeed post-stall.
        let queued: Vec<_> = (0..2)
            .map(|_| std::thread::spawn(move || client::get(addr, "/healthz").unwrap().status))
            .collect();
        std::thread::sleep(Duration::from_millis(150));

        // Capacity exhausted: these must all shed deterministically.
        let offered = 10usize;
        let mut shed_503 = 0u32;
        for _ in 0..offered {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                .unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut raw = String::new();
            let _ = conn.read_to_string(&mut raw);
            if raw.starts_with("HTTP/1.1 503") {
                shed_503 += 1;
            }
        }
        for q in queued {
            assert_eq!(q.join().unwrap(), 200, "queued requests must be served");
        }
        for conn in &mut stalled {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        record_metric(
            "serving_load/overload/shed_total",
            u128::from(server.stats().shed),
        );
        record_metric(
            "serving_load/overload/shed_503_observed",
            u128::from(shed_503),
        );
        record_metric(
            "serving_load/overload/shed_dropped",
            u128::from(server.stats().shed_dropped),
        );
        drop(server);
    }
}

criterion_group!(benches, bench_serving, bench_serving_load);
criterion_main!(benches);
