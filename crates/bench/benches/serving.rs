//! Serving-path round-trips: the HTTP front end under concurrent
//! analyst sessions.
//!
//! Two groups:
//!
//! * `serving_roundtrip` — single-request latency floor over a loopback
//!   socket: `GET /healthz` (pure protocol overhead: accept, parse,
//!   route, respond) and a warm `POST iterate` (protocol + a full
//!   all-loads engine iteration), measured against a live server.
//! * `serving_concurrent` — N analysts each driving create → iterate →
//!   edit → iterate over their own sessions at once, the remote version
//!   of the multi-session burst. One sample is the whole burst, so the
//!   number reflects queueing, engine sharing, and store contention —
//!   not just per-request cost.
//!
//! Run with `cargo bench -p helix-bench --bench serving`. Set
//! `HELIX_BENCH_FAST=1` for the reduced CI configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_core::{Engine, EngineConfig, SessionManager, Workflow};
use helix_server::client;
use helix_server::routes::{Api, WorkflowRegistry};
use helix_server::server::{Server, ServerConfig, ServerHandle};
use helix_workloads::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
use std::path::PathBuf;
use std::sync::Arc;

fn fast_mode() -> bool {
    std::env::var_os("HELIX_BENCH_FAST").is_some_and(|v| v != "0")
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-bench-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A server over a fresh engine with the census template registered.
fn serve(tag: &str, workers: usize) -> ServerHandle {
    let dir = bench_dir(tag);
    generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: if fast_mode() { 2_000 } else { 8_000 },
            test_rows: if fast_mode() { 500 } else { 2_000 },
            ..Default::default()
        },
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(dir.join("store"));
    let engine = Arc::new(Engine::new(EngineConfig::helix(dir.join("store"))).unwrap());
    let manager = Arc::new(SessionManager::new(engine));
    let mut registry = WorkflowRegistry::new();
    let params = CensusParams::initial(&dir);
    registry.register("census", move || -> helix_core::Result<Workflow> {
        census_workflow(&params)
    });
    Server::bind(
        ("127.0.0.1", 0),
        Api::new(manager, registry),
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn bench_serving(c: &mut Criterion) {
    let samples = if fast_mode() { 5 } else { 10 };

    let mut group = c.benchmark_group("serving_roundtrip");
    group.sample_size(samples);
    {
        let server = serve("latency", 4);
        let addr = server.addr();
        group.bench_function("healthz", |b| {
            b.iter(|| client::get(addr, "/healthz").unwrap().expect_ok())
        });
        // Warm the store once so the timed iterations are the analyst's
        // steady state: everything reusable loads.
        client::post(addr, "/sessions", r#"{"name":"warm","workflow":"census"}"#)
            .unwrap()
            .expect_ok();
        client::post(addr, "/sessions/warm/iterate", "")
            .unwrap()
            .expect_ok();
        group.bench_function("iterate_warm", |b| {
            b.iter(|| {
                client::post(addr, "/sessions/warm/iterate", "")
                    .unwrap()
                    .expect_ok()
            })
        });
        drop(server);
    }
    group.finish();

    let mut group = c.benchmark_group("serving_concurrent");
    group.sample_size(samples);
    for analysts in [2usize, 8] {
        let server = serve(&format!("burst-{analysts}"), 4);
        let addr = server.addr();
        // Warm shared intermediates so samples measure serving, not the
        // one-off cold compute.
        client::post(
            addr,
            "/sessions",
            r#"{"name":"warmup","workflow":"census"}"#,
        )
        .unwrap()
        .expect_ok();
        client::post(addr, "/sessions/warmup/iterate", "")
            .unwrap()
            .expect_ok();
        let mut round = 0usize;
        group.bench_with_input(
            BenchmarkId::new("analysts", analysts),
            &analysts,
            |b, &analysts| {
                b.iter(|| {
                    round += 1;
                    std::thread::scope(|scope| {
                        for i in 0..analysts {
                            let name = format!("a{round}-{i}");
                            scope.spawn(move || {
                                client::post(
                                    addr,
                                    "/sessions",
                                    &format!(r#"{{"name":"{name}","workflow":"census"}}"#),
                                )
                                .unwrap()
                                .expect_ok();
                                client::post(addr, &format!("/sessions/{name}/iterate"), "")
                                    .unwrap()
                                    .expect_ok();
                                client::post(
                                    addr,
                                    &format!("/sessions/{name}/edits"),
                                    &format!(
                                        r#"{{"kind":"set_learner_param","learner":"predictions","param":"seed","value":{}}}"#,
                                        1000 + i
                                    ),
                                )
                                .unwrap()
                                .expect_ok();
                                client::post(addr, &format!("/sessions/{name}/iterate"), "")
                                    .unwrap()
                                    .expect_ok();
                                client::delete(addr, &format!("/sessions/{name}")).unwrap().expect_ok();
                            });
                        }
                    });
                })
            },
        );
        drop(server);
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
