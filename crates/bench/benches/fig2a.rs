//! Fig. 2(a) as a criterion bench: full 10-iteration IE series per system
//! on a reduced corpus. The `fig2` binary produces the paper-scale table;
//! this target tracks regressions in the end-to-end iteration loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_baselines::SystemKind;
use helix_bench::ie_series;
use helix_workloads::news::{generate_news, NewsDataSpec};

fn bench_fig2a(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("helix-bench-fig2a-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    generate_news(
        &dir,
        &NewsDataSpec {
            docs: 60,
            ..Default::default()
        },
    )
    .unwrap();

    let mut group = c.benchmark_group("fig2a_ie_series");
    group.sample_size(10);
    for system in [SystemKind::Helix, SystemKind::DeepDiveSim] {
        group.bench_with_input(
            BenchmarkId::from_parameter(system.label()),
            &system,
            |b, &system| {
                b.iter(|| {
                    let series = ie_series(system, &dir, &dir).expect("series");
                    assert!(series.total_secs() > 0.0);
                    series.total_secs()
                })
            },
        );
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_fig2a);
criterion_main!(benches);
