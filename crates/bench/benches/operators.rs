//! Per-operator throughput: the substrate costs the optimizer reasons
//! about (scan, extract, assemble, train).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use helix_core::exec;
use helix_core::ops::{ExtractorKind, LearnerSpec, NodeOutput, OperatorKind};
use helix_workloads::census::{generate_census, CensusDataSpec, FIELDS};

fn bench_operators(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("helix-bench-ops-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let rows_n = 5_000usize;
    let (train, test) = generate_census(
        &dir,
        &CensusDataSpec {
            train_rows: rows_n,
            test_rows: 500,
            ..Default::default()
        },
    )
    .unwrap();

    let source = exec::execute(
        &OperatorKind::CsvSource {
            train_path: train,
            test_path: Some(test),
        },
        "data",
        &[],
    )
    .unwrap();
    let scan_kind = OperatorKind::CsvScan {
        fields: FIELDS.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
    };

    let mut group = c.benchmark_group("operators");
    group.throughput(Throughput::Elements(rows_n as u64));
    group.bench_function("csv_scan", |b| {
        b.iter(|| exec::execute(&scan_kind, "rows", &[&source]).unwrap())
    });

    let rows = exec::execute(&scan_kind, "rows", &[&source]).unwrap();
    let edu_kind = OperatorKind::FieldExtractor {
        field: "education".into(),
        kind: ExtractorKind::Categorical,
    };
    group.bench_function("field_extractor", |b| {
        b.iter(|| exec::execute(&edu_kind, "edu", &[&rows]).unwrap())
    });

    let edu = exec::execute(&edu_kind, "edu", &[&rows]).unwrap();
    let target_kind = OperatorKind::FieldExtractor {
        field: "target".into(),
        kind: ExtractorKind::Numeric,
    };
    let target = exec::execute(&target_kind, "target", &[&rows]).unwrap();
    group.bench_function("assemble", |b| {
        b.iter(|| {
            exec::execute(
                &OperatorKind::AssembleFeatures,
                "income",
                &[&rows, &edu, &target],
            )
            .unwrap()
        })
    });

    let income = exec::execute(
        &OperatorKind::AssembleFeatures,
        "income",
        &[&rows, &edu, &target],
    )
    .unwrap();
    group.sample_size(10);
    group.bench_function("train_logreg", |b| {
        b.iter(|| {
            exec::execute(
                &OperatorKind::Train(LearnerSpec::default()),
                "model",
                &[&income],
            )
            .unwrap()
        })
    });

    let model = exec::execute(
        &OperatorKind::Train(LearnerSpec::default()),
        "model",
        &[&income],
    )
    .unwrap();
    group.bench_function("apply", |b| {
        b.iter(|| exec::execute(&OperatorKind::Apply, "preds", &[&model, &income]).unwrap())
    });
    group.finish();

    // Keep outputs alive until the end so nothing is optimized away.
    assert!(matches!(model, NodeOutput::Model(_)));
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
