//! Durability overhead on the store's put path, and recovery (reopen)
//! cost.
//!
//! Two groups:
//!
//! * `durability_put` — one materialization (encode + write + rename +
//!   ledger commit) of a fixed ~8 KB collection under each durability
//!   setting: `volatile` (no WAL), `wal_nosync` (logged, OS-buffered),
//!   and `wal_fsync` (logged, fsync'd per record). The CI gate holds the
//!   `volatile` row within 1.05x of the committed baseline — the durable
//!   tier must cost nothing when switched off — and asserts
//!   volatile ≤ wal_fsync within the run (the fsync tax is real, so if
//!   the ordering inverts the measurement is broken).
//! * `durability_recovery` — wall time of `StoreOptions::open` over a
//!   WAL directory holding several hundred committed entries: the
//!   restart latency a served deployment pays before it can answer.
//!
//! Run with `cargo bench -p helix-bench --bench durability`. Set
//! `HELIX_BENCH_FAST=1` for the reduced CI configuration and
//! `HELIX_BENCH_JSON=path.json` to capture machine-readable results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_core::signature::Signature;
use helix_core::store::{Durability, StoreOptions};
use helix_core::NodeOutput;
use helix_dataflow::{DataCollection, DataType, Row, Schema, Value};
use std::path::PathBuf;

fn fast_mode() -> bool {
    std::env::var_os("HELIX_BENCH_FAST").is_some_and(|v| v != "0")
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-bench-durab-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A ~8 KB collection: big enough that encode/write dominate fixed
/// syscall overhead, small enough that thousands of puts fit any runner.
fn payload() -> NodeOutput {
    let schema = Schema::of(&[("x", DataType::Int), ("y", DataType::Float)]);
    let rows = (0..500)
        .map(|i| Row(vec![Value::Int(i), Value::Float(i as f64 * 0.5)]))
        .collect();
    NodeOutput::Data(DataCollection::new(schema, rows).unwrap())
}

fn bench_durability(c: &mut Criterion) {
    let samples = if fast_mode() { 10 } else { 20 };

    let mut group = c.benchmark_group("durability_put");
    group.sample_size(samples);
    for (label, durability) in [
        ("volatile", Durability::Volatile),
        ("wal_nosync", Durability::wal_nosync()),
        ("wal_fsync", Durability::wal()),
    ] {
        let store = StoreOptions::new(bench_dir(&format!("put-{label}")))
            .budget_bytes(1 << 30)
            .durability(durability)
            .open()
            .unwrap();
        let output = payload();
        // Fresh signatures per put: every sample is a first-time
        // materialization, never an overwrite.
        let mut next_sig = 1u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                next_sig += 1;
                store.put(Signature(next_sig), &output).unwrap()
            })
        });
    }
    group.finish();

    // Reopen cost over a populated WAL directory. The first open compacts
    // the log into the snapshot, so steady state (what the samples
    // measure) is a snapshot load plus an empty-tail replay.
    let mut group = c.benchmark_group("durability_recovery");
    group.sample_size(samples);
    let entries = if fast_mode() { 128u64 } else { 512 };
    let dir = bench_dir("recovery");
    {
        let store = StoreOptions::new(&dir)
            .budget_bytes(1 << 30)
            .durability(Durability::wal_nosync())
            .open()
            .unwrap();
        let output = payload();
        for sig in 1..=entries {
            store.put(Signature(sig), &output).unwrap();
        }
    }
    group.bench_with_input(
        BenchmarkId::new("open", entries),
        &entries,
        |b, &entries| {
            b.iter(|| {
                let store = StoreOptions::new(&dir)
                    .budget_bytes(1 << 30)
                    .durability(Durability::wal_nosync())
                    .open()
                    .unwrap();
                assert_eq!(store.len(), entries as usize);
                store
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
