//! Recomputation-policy ablation: solver latency of the optimal PSP plan
//! vs the greedy baselines on synthetic workflow DAGs, over DAG size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_core::ops::{OperatorKind, Udf};
use helix_core::recompute::{plan_states, NodeCosts, RecomputationPolicy};
use helix_core::workflow::{NodeRef, Workflow};

/// Builds a synthetic workflow DAG: `depth` layers of `width` UDF nodes,
/// each wired to two nodes of the previous layer, single sink output.
fn synthetic_workflow(depth: usize, width: usize) -> (Workflow, Vec<NodeCosts>) {
    let mut w = Workflow::new("synthetic");
    let mut prev: Vec<NodeRef> = Vec::new();
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let dummy_udf = || {
        Udf::new("v1", |inputs: &[&helix_dataflow::DataCollection]| {
            Ok(inputs.first().map(|dc| (*dc).clone()).unwrap_or_else(|| {
                helix_dataflow::DataCollection::empty(helix_dataflow::Schema::of(&[]))
            }))
        })
    };
    for layer in 0..depth {
        let mut current = Vec::with_capacity(width);
        for i in 0..width {
            let name = format!("n{layer}_{i}");
            let node = if prev.is_empty() {
                w.add(name, OperatorKind::UserDefined(dummy_udf()), &[])
                    .unwrap()
            } else {
                let a = &prev[(next() as usize) % prev.len()];
                let b = &prev[(next() as usize) % prev.len()];
                w.add(name, OperatorKind::UserDefined(dummy_udf()), &[a, b])
                    .unwrap()
            };
            current.push(node);
        }
        prev = current;
    }
    let sink = w
        .add(
            "sink",
            OperatorKind::UserDefined(dummy_udf()),
            &prev.iter().collect::<Vec<_>>(),
        )
        .unwrap();
    w.output(&sink);

    let costs = (0..w.len())
        .map(|_| NodeCosts {
            compute_us: next() % 100_000 + 100,
            load_us: if next() % 2 == 0 {
                Some(next() % 50_000 + 50)
            } else {
                None
            },
        })
        .collect();
    (w, costs)
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("recompute_policies");
    for &(depth, width) in &[(4usize, 4usize), (8, 8), (16, 16)] {
        let (w, costs) = synthetic_workflow(depth, width);
        let active = vec![true; w.len()];
        let label = format!("{}nodes", w.len());
        for policy in [
            RecomputationPolicy::Optimal,
            RecomputationPolicy::ComputeAll,
            RecomputationPolicy::LoadAllAvailable,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{policy:?}"), &label),
                &policy,
                |b, &policy| b.iter(|| plan_states(&w, &active, &costs, policy).unwrap().len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
