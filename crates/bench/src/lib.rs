//! Benchmark harness: runs the paper's iteration scripts against every
//! system and reports per-iteration and cumulative runtimes (Fig. 2),
//! plus the ablation scenarios described in DESIGN.md.

#![warn(missing_docs)]

use helix_baselines::SystemKind;
use helix_core::Result;
use helix_workloads::census::{census_iterations, census_workflow, CensusParams};
use helix_workloads::ie::{ie_iterations, ie_workflow, IeParams};
use helix_workloads::IterationStage;
use std::fmt::Write as _;
use std::path::Path;

/// One iteration's measurement for one system.
#[derive(Debug, Clone)]
pub struct IterRecord {
    /// 0-based iteration number (0 = initial version).
    pub iteration: usize,
    /// `P`/`M`/`E` category letter (`-` for the initial run).
    pub stage: char,
    /// What the scripted user changed.
    pub description: String,
    /// Wall seconds for this iteration.
    pub secs: f64,
    /// Cumulative wall seconds including this iteration.
    pub cumulative: f64,
}

/// The full series for one system on one application.
#[derive(Debug, Clone)]
pub struct SystemSeries {
    /// Which system ran.
    pub system: SystemKind,
    /// Per-iteration records; shorter than the script when the system
    /// does not support later modifications (DeepDive on Census).
    pub records: Vec<IterRecord>,
}

impl SystemSeries {
    /// Total cumulative runtime.
    pub fn total_secs(&self) -> f64 {
        self.records.last().map(|r| r.cumulative).unwrap_or(0.0)
    }
}

/// Runs the Census (Fig. 2b) iteration script for one system.
///
/// `data_dir` must already contain `train.csv`/`test.csv`; `work_dir`
/// receives the system's store.
pub fn census_series(system: SystemKind, data_dir: &Path, work_dir: &Path) -> Result<SystemSeries> {
    let mut params = CensusParams::initial(data_dir);
    let script = census_iterations();
    // Census is not DeepDive's native domain: ML/eval edits hit components
    // it does not expose, truncating its series (paper Fig. 2(b)).
    run_series(
        system,
        work_dir,
        &mut params,
        &script,
        census_workflow,
        true,
    )
}

/// Runs the IE (Fig. 2a) iteration script for one system.
pub fn ie_series(system: SystemKind, data_dir: &Path, work_dir: &Path) -> Result<SystemSeries> {
    let mut params = IeParams::initial(data_dir);
    let script = ie_iterations();
    // IE (knowledge-base construction) is DeepDive's home turf: it runs
    // the whole script in Fig. 2(a).
    run_series(system, work_dir, &mut params, &script, ie_workflow, false)
}

fn run_series<P>(
    system: SystemKind,
    work_dir: &Path,
    params: &mut P,
    script: &[helix_workloads::IterationSpec<P>],
    build: impl Fn(&P) -> Result<helix_core::Workflow>,
    respect_supports: bool,
) -> Result<SystemSeries> {
    // Warm-up: run the initial workflow once on a throwaway engine so page
    // cache, allocator, and thread-pool effects do not bias whichever
    // system happens to run first in the process.
    {
        let warm_dir = work_dir.join("store-warmup");
        let _ = std::fs::remove_dir_all(&warm_dir);
        let warm = SystemKind::KeystoneSim.build_engine(&warm_dir)?;
        warm.run(&build(params)?)?;
        warm.run(&build(params)?)?;
        let _ = std::fs::remove_dir_all(&warm_dir);
    }

    let store_dir = work_dir.join(format!("store-{}", system.label()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let engine = system.build_engine(&store_dir)?;
    let mut records = Vec::new();
    let mut cumulative = 0.0f64;

    let initial = engine.run(&build(params)?)?;
    cumulative += initial.total_secs;
    records.push(IterRecord {
        iteration: 0,
        stage: '-',
        description: "initial version".into(),
        secs: initial.total_secs,
        cumulative,
    });

    for (i, spec) in script.iter().enumerate() {
        if respect_supports && !system.supports(spec.stage) {
            // The paper's Fig. 2(b): DeepDive's series simply stops once
            // the scripted user touches components it does not expose.
            break;
        }
        (spec.apply)(params);
        let report = engine.run(&build(params)?)?;
        cumulative += report.total_secs;
        records.push(IterRecord {
            iteration: i + 1,
            stage: spec.stage.letter(),
            description: spec.description.to_string(),
            secs: report.total_secs,
            cumulative,
        });
    }
    Ok(SystemSeries { system, records })
}

/// Renders the per-iteration table for a set of system series (rows =
/// iterations of the longest series; cells = cumulative seconds).
pub fn render_table(title: &str, series: &[SystemSeries]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let longest = series
        .iter()
        .max_by_key(|s| s.records.len())
        .expect("non-empty series");
    let _ = write!(out, "{:<4} {:<5} {:<38}", "iter", "type", "change");
    for s in series {
        let _ = write!(out, " {:>15}", s.system.label());
    }
    let _ = writeln!(out);
    for (row, rec) in longest.records.iter().enumerate() {
        let _ = write!(
            out,
            "{:<4} {:<5} {:<38}",
            rec.iteration, rec.stage, rec.description
        );
        for s in series {
            match s.records.get(row) {
                Some(r) => {
                    let _ = write!(out, " {:>15.3}", r.cumulative);
                }
                None => {
                    let _ = write!(out, " {:>15}", "—");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
    for s in series {
        let _ = writeln!(
            out,
            "  {:<15} total {:>9.3}s over {} iterations",
            s.system.label(),
            s.total_secs(),
            s.records.len()
        );
    }
    out
}

/// Renders cumulative-runtime curves as a fixed-width ASCII chart (the
/// CLI stand-in for Fig. 2's plots).
pub fn render_chart(series: &[SystemSeries]) -> String {
    const WIDTH: usize = 60;
    let max = series
        .iter()
        .map(SystemSeries::total_secs)
        .fold(0.0f64, f64::max);
    if max <= 0.0 {
        return String::new();
    }
    let mut out = String::new();
    for s in series {
        let _ = writeln!(out, "{}", s.system.label());
        for rec in &s.records {
            let bar = ((rec.cumulative / max) * WIDTH as f64).round() as usize;
            let _ = writeln!(
                out,
                "  it{:<2} {} |{}{}| {:.2}s",
                rec.iteration,
                rec.stage,
                "█".repeat(bar),
                " ".repeat(WIDTH - bar.min(WIDTH)),
                rec.cumulative
            );
        }
    }
    out
}

/// Serializes series to CSV (`system,iteration,stage,secs,cumulative`).
pub fn to_csv(series: &[SystemSeries]) -> String {
    let mut out = String::from("system,iteration,stage,description,secs,cumulative\n");
    for s in series {
        for r in &s.records {
            let _ = writeln!(
                out,
                "{},{},{},\"{}\",{:.6},{:.6}",
                s.system.label(),
                r.iteration,
                r.stage,
                r.description,
                r.secs,
                r.cumulative
            );
        }
    }
    out
}

/// Returns the stage of census iteration `i` (1-based), for assertions.
pub fn census_stage(i: usize) -> Option<IterationStage> {
    census_iterations().get(i.checked_sub(1)?).map(|s| s.stage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_workloads::census::{generate_census, CensusDataSpec};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn census_series_shapes_match_the_paper() {
        let dir = tmpdir("series");
        generate_census(
            &dir,
            &CensusDataSpec {
                train_rows: 400,
                test_rows: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let helix = census_series(SystemKind::Helix, &dir, &dir).unwrap();
        let keystone = census_series(SystemKind::KeystoneSim, &dir, &dir).unwrap();
        let deepdive = census_series(SystemKind::DeepDiveSim, &dir, &dir).unwrap();
        assert_eq!(helix.records.len(), 12, "initial + 11 scripted iterations");
        assert_eq!(
            deepdive.records.len(),
            3,
            "DeepDive stops after iteration 2"
        );
        assert!(
            helix.total_secs() < keystone.total_secs(),
            "Helix {:.3}s must beat KeystoneML-sim {:.3}s",
            helix.total_secs(),
            keystone.total_secs()
        );
        let table = render_table("t", &[helix.clone(), keystone, deepdive]);
        assert!(table.contains("HELIX"));
        assert!(table.contains("—"), "truncated series renders dashes");
        let chart = render_chart(std::slice::from_ref(&helix));
        assert!(chart.contains("█"));
        let csv = to_csv(&[helix]);
        assert!(csv.lines().count() > 10);
    }
}
