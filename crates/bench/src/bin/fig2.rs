//! Regenerates the paper's evaluation figures from scratch.
//!
//! ```text
//! cargo run -p helix-bench --release --bin fig2 -- [a|b|unopt|all] [--fast]
//! ```
//!
//! * `a` — Fig. 2(a): cumulative runtime on the IE task, Helix vs
//!   DeepDive-sim, 10 iterations.
//! * `b` — Fig. 2(b): cumulative runtime on Census classification, Helix
//!   vs DeepDive-sim vs KeystoneML-sim (DeepDive's series stops after
//!   iteration 2, as in the paper).
//! * `unopt` — demo §3: Helix vs unoptimized Helix on both tasks.
//!
//! CSV output lands in `bench_results/`.

use helix_baselines::SystemKind;
use helix_bench::{census_series, ie_series, render_chart, render_table, to_csv, SystemSeries};
use helix_workloads::census::{generate_census, CensusDataSpec};
use helix_workloads::news::{generate_news, NewsDataSpec};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    if !matches!(which.as_str(), "a" | "b" | "unopt" | "all") {
        eprintln!("unknown figure `{which}`; usage: fig2 [a|b|unopt|all] [--fast]");
        std::process::exit(2);
    }

    let out_dir = PathBuf::from("bench_results");
    std::fs::create_dir_all(&out_dir).expect("create bench_results/");
    let work = std::env::temp_dir().join(format!("helix-fig2-{}", std::process::id()));
    std::fs::create_dir_all(&work).expect("create work dir");

    if which == "a" || which == "all" || which == "unopt" {
        let ie_dir = work.join("ie-data");
        let spec = if fast {
            NewsDataSpec {
                docs: 120,
                ..Default::default()
            }
        } else {
            NewsDataSpec::default()
        };
        let data = generate_news(&ie_dir, &spec).expect("generate news corpus");
        println!(
            "generated IE corpus: {} docs, {} gold mentions\n",
            spec.docs, data.mentions
        );
        if which != "unopt" {
            run_fig2a(&ie_dir, &work, &out_dir);
        }
        if which == "unopt" || which == "all" {
            run_unopt_ie(&ie_dir, &work, &out_dir);
        }
    }
    if which == "b" || which == "all" || which == "unopt" {
        let census_dir = work.join("census-data");
        let spec = if fast {
            CensusDataSpec {
                train_rows: 2_000,
                test_rows: 500,
                ..Default::default()
            }
        } else {
            CensusDataSpec::default()
        };
        generate_census(&census_dir, &spec).expect("generate census data");
        println!(
            "generated census data: {} train / {} test rows\n",
            spec.train_rows, spec.test_rows
        );
        if which != "unopt" {
            run_fig2b(&census_dir, &work, &out_dir);
        }
        if which == "unopt" || which == "all" {
            run_unopt_census(&census_dir, &work, &out_dir);
        }
    }
}

fn run_fig2a(data_dir: &Path, work: &Path, out_dir: &Path) {
    println!("=== Figure 2(a): IE task, cumulative runtime ===\n");
    let systems = [SystemKind::Helix, SystemKind::DeepDiveSim];
    let series: Vec<SystemSeries> = systems
        .iter()
        .map(|s| ie_series(*s, data_dir, work).expect("ie series"))
        .collect();
    finish("Figure 2(a) — IE task", &series, out_dir, "fig2a.csv");
    let helix = series[0].total_secs();
    let deepdive = series[1].total_secs();
    println!(
        "HELIX cumulative is {:.0}% lower than DeepDive-sim (paper: ~60% lower)\n",
        (1.0 - helix / deepdive) * 100.0
    );
}

fn run_fig2b(data_dir: &Path, work: &Path, out_dir: &Path) {
    println!("=== Figure 2(b): Census classification, cumulative runtime ===\n");
    let systems = [
        SystemKind::Helix,
        SystemKind::DeepDiveSim,
        SystemKind::KeystoneSim,
    ];
    let series: Vec<SystemSeries> = systems
        .iter()
        .map(|s| census_series(*s, data_dir, work).expect("census series"))
        .collect();
    finish(
        "Figure 2(b) — Census classification",
        &series,
        out_dir,
        "fig2b.csv",
    );
    let helix = series[0].total_secs();
    let keystone = series[2].total_secs();
    println!(
        "KeystoneML-sim / HELIX cumulative ratio: {:.1}x (paper: ~an order of magnitude)\n",
        keystone / helix
    );
}

fn run_unopt_ie(data_dir: &Path, work: &Path, out_dir: &Path) {
    println!("=== Demo §3: Helix vs unoptimized Helix (IE) ===\n");
    let series = vec![
        ie_series(SystemKind::Helix, data_dir, work).expect("helix"),
        ie_series(SystemKind::HelixUnopt, data_dir, work).expect("unopt"),
    ];
    finish(
        "Helix vs unoptimized (IE)",
        &series,
        out_dir,
        "unopt_ie.csv",
    );
}

fn run_unopt_census(data_dir: &Path, work: &Path, out_dir: &Path) {
    println!("=== Demo §3: Helix vs unoptimized Helix (Census) ===\n");
    let series = vec![
        census_series(SystemKind::Helix, data_dir, work).expect("helix"),
        census_series(SystemKind::HelixUnopt, data_dir, work).expect("unopt"),
    ];
    finish(
        "Helix vs unoptimized (Census)",
        &series,
        out_dir,
        "unopt_census.csv",
    );
}

fn finish(title: &str, series: &[SystemSeries], out_dir: &Path, csv_name: &str) {
    println!("{}", render_table(title, series));
    println!("{}", render_chart(series));
    let csv_path = out_dir.join(csv_name);
    std::fs::write(&csv_path, to_csv(series)).expect("write csv");
    println!("wrote {}\n", csv_path.display());
}
