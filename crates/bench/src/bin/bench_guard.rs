//! CI benchmark-regression gate.
//!
//! Compares a freshly produced `HELIX_BENCH_JSON` results file (see the
//! criterion shim) against a committed baseline and fails when any
//! benchmark's best-of-samples wall time regressed past the threshold
//! (default 1.25 = +25%). `--compare A<=B` additionally asserts a
//! within-run ordering — used to pin the ready-queue executor at or
//! under the wave-barrier baseline regardless of runner speed.
//!
//! ```text
//! bench_guard --baseline bench_results/BENCH_scheduler_baseline.json \
//!             --current  bench_results/BENCH_scheduler.json \
//!             [--threshold 1.25] \
//!             [--compare "scheduler_executor/news/ready<=scheduler_executor/news/wave"]...
//! ```
//!
//! Refreshing baselines after an intentional perf change: capture a run
//! (`HELIX_BENCH_FAST=1 HELIX_BENCH_JSON=<current path> cargo bench …`),
//! then regenerate the committed baseline from it instead of hand-editing
//! JSON:
//!
//! ```text
//! bench_guard --write-baselines \
//!             --current  bench_results/BENCH_scheduler.json \
//!             --baseline bench_results/BENCH_scheduler_baseline.json
//! ```
//!
//! The write mode validates that the captured file parses, prints the
//! per-benchmark delta against the old baseline (when one exists), and
//! only then overwrites it; commit the result.

use helix_server::json::Json;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parses the criterion shim's JSON output with the real JSON parser
/// shared with the HTTP front end (`helix_server::json`). Accepts the
/// full `{"benchmarks": [...]}` document, and — for resilience against
/// hand-assembled fixtures — falls back to parsing individual benchmark
/// objects line by line. Returns `id → min_ns`.
fn parse_results(text: &str) -> Result<BTreeMap<String, u128>, String> {
    let mut out = BTreeMap::new();
    match Json::parse(text) {
        Ok(doc) => {
            let entries = doc
                .get("benchmarks")
                .and_then(Json::as_array)
                .map(<[Json]>::to_vec)
                // A bare benchmark object (or array of them) also counts.
                .unwrap_or_else(|| match doc {
                    Json::Arr(items) => items,
                    other => vec![other],
                });
            for entry in &entries {
                insert_entry(entry, &mut out)?;
            }
        }
        Err(_) => {
            // Not one document: treat each line holding a benchmark
            // object (possibly comma-terminated) as its own entry.
            for line in text.lines() {
                let line = line.trim().trim_end_matches(',');
                if !line.starts_with('{') {
                    continue;
                }
                if let Ok(entry) = Json::parse(line) {
                    insert_entry(&entry, &mut out)?;
                }
            }
        }
    }
    if out.is_empty() {
        return Err("no benchmark entries found".into());
    }
    Ok(out)
}

fn insert_entry(entry: &Json, out: &mut BTreeMap<String, u128>) -> Result<(), String> {
    let Some(id) = entry.get("id").and_then(Json::as_str) else {
        return Ok(()); // not a benchmark record
    };
    let min_ns = entry
        .get("min_ns")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("benchmark `{id}` is missing min_ns"))?;
    out.insert(id.to_string(), min_ns as u128);
    Ok(())
}

fn load(path: &str) -> Result<BTreeMap<String, u128>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_results(&text).map_err(|e| format!("{path}: {e}"))
}

struct Args {
    baseline: Option<String>,
    current: String,
    threshold: f64,
    compares: Vec<(String, String)>,
    write_baselines: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut current = None;
    let mut threshold: Option<f64> = None;
    let mut compares = Vec::new();
    let mut write_baselines = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = Some(value("--current")?),
            "--threshold" => {
                threshold = Some(
                    value("--threshold")?
                        .parse()
                        .map_err(|e| format!("bad --threshold: {e}"))?,
                )
            }
            "--compare" => {
                let spec = value("--compare")?;
                let (a, b) = spec
                    .split_once("<=")
                    .ok_or_else(|| format!("--compare expects `A<=B`, got `{spec}`"))?;
                compares.push((a.trim().to_string(), b.trim().to_string()));
            }
            "--write-baselines" => write_baselines = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if write_baselines {
        if baseline.is_none() {
            return Err("--write-baselines requires --baseline (the file to regenerate)".into());
        }
        if !compares.is_empty() {
            return Err("--write-baselines does not take --compare".into());
        }
        if threshold.is_some() {
            return Err(
                "--write-baselines does not take --threshold (regeneration is ungated)".into(),
            );
        }
    }
    Ok(Args {
        baseline,
        current: current.ok_or("--current is required")?,
        threshold: threshold.unwrap_or(1.25),
        compares,
        write_baselines,
    })
}

/// Regenerates `baseline_path` from the captured results at
/// `current_path`: validates the capture parses, reports per-benchmark
/// deltas against the old baseline when one exists, then overwrites the
/// file verbatim (the shim's JSON is already the baseline format).
/// Returns the human-readable summary on success.
fn write_baseline(current_path: &str, baseline_path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(current_path)
        .map_err(|e| format!("cannot read {current_path}: {e}"))?;
    let current = parse_results(&text).map_err(|e| format!("{current_path}: {e}"))?;
    let mut summary = String::new();
    let old = match std::fs::read_to_string(baseline_path) {
        Ok(old_text) => match parse_results(&old_text) {
            Ok(map) => Some(map),
            Err(e) => {
                summary.push_str(&format!(
                    "warning: existing baseline {baseline_path} is unparseable ({e}); \
                     treating all entries as new\n"
                ));
                None
            }
        },
        Err(_) => None,
    };
    for (id, &cur_ns) in &current {
        let line = match old.as_ref().and_then(|map| map.get(id)) {
            Some(&old_ns) => {
                let ratio = cur_ns as f64 / old_ns.max(1) as f64;
                format!("{id}: {old_ns} ns -> {cur_ns} ns ({ratio:.2}x)")
            }
            None => format!("{id}: {cur_ns} ns (new)"),
        };
        summary.push_str(&line);
        summary.push('\n');
    }
    if let Some(old) = &old {
        for id in old.keys() {
            if !current.contains_key(id) {
                summary.push_str(&format!("{id}: dropped (not in capture)\n"));
            }
        }
    }
    std::fs::write(baseline_path, &text)
        .map_err(|e| format!("cannot write {baseline_path}: {e}"))?;
    summary.push_str(&format!(
        "wrote {} entries to {baseline_path}\n",
        current.len()
    ));
    Ok(summary)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("bench_guard: {err}");
            return ExitCode::FAILURE;
        }
    };
    if args.write_baselines {
        let baseline = args.baseline.as_deref().expect("checked in parse_args");
        return match write_baseline(&args.current, baseline) {
            Ok(summary) => {
                print!("{summary}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("bench_guard: {err}");
                ExitCode::FAILURE
            }
        };
    }
    let current = match load(&args.current) {
        Ok(map) => map,
        Err(err) => {
            eprintln!("bench_guard: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = Vec::new();

    if let Some(baseline_path) = &args.baseline {
        match load(baseline_path) {
            Ok(baseline) => {
                for (id, &base_ns) in &baseline {
                    match current.get(id) {
                        None => failures.push(format!(
                            "`{id}` is in the baseline but missing from {} — \
                             renamed benchmarks need a refreshed baseline",
                            args.current
                        )),
                        Some(&cur_ns) => {
                            let ratio = cur_ns as f64 / base_ns.max(1) as f64;
                            let verdict = if ratio > args.threshold {
                                failures.push(format!(
                                    "`{id}` regressed: {cur_ns} ns vs baseline {base_ns} ns \
                                     ({ratio:.2}x > {:.2}x allowed)",
                                    args.threshold
                                ));
                                "REGRESSED"
                            } else {
                                "ok"
                            };
                            println!("{verdict:>9}  {id}: {cur_ns} ns (baseline {base_ns} ns, {ratio:.2}x)");
                        }
                    }
                }
            }
            Err(err) => failures.push(err),
        }
    }

    for (a, b) in &args.compares {
        match (current.get(a), current.get(b)) {
            (Some(&a_ns), Some(&b_ns)) => {
                let limit = b_ns as f64 * args.threshold;
                if a_ns as f64 > limit {
                    failures.push(format!(
                        "`{a}` ({a_ns} ns) exceeds `{b}` ({b_ns} ns) by more than {:.2}x",
                        args.threshold
                    ));
                } else {
                    println!(
                        "       ok  {a} ({a_ns} ns) <= {b} ({b_ns} ns) within {:.2}x",
                        args.threshold
                    );
                }
            }
            _ => failures.push(format!(
                "--compare `{a}<={b}`: one of the ids is missing from {}",
                args.current
            )),
        }
    }

    if failures.is_empty() {
        println!("bench_guard: all checks passed");
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("bench_guard: {failure}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"benchmarks": [
  {"id": "scheduler_executor/news/ready", "min_ns": 100, "median_ns": 120, "mean_ns": 130, "samples": 5},
  {"id": "scheduler_executor/news/wave", "min_ns": 150, "median_ns": 170, "mean_ns": 180, "samples": 5}
]}
"#;

    #[test]
    fn parses_shim_output() {
        let map = parse_results(SAMPLE).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map["scheduler_executor/news/ready"], 100);
        assert_eq!(map["scheduler_executor/news/wave"], 150);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_results("{\"benchmarks\": []}\n").is_err());
    }

    #[test]
    fn write_baselines_copies_capture_and_reports_deltas() {
        let dir = std::env::temp_dir().join(format!("helix-guard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let current = dir.join("current.json");
        let baseline = dir.join("baseline.json");
        let old = r#"{"benchmarks": [
  {"id": "scheduler_executor/news/ready", "min_ns": 80, "median_ns": 90, "mean_ns": 95, "samples": 5},
  {"id": "gone/bench", "min_ns": 10, "median_ns": 11, "mean_ns": 12, "samples": 5}
]}
"#;
        std::fs::write(&current, SAMPLE).unwrap();
        std::fs::write(&baseline, old).unwrap();
        let summary =
            write_baseline(current.to_str().unwrap(), baseline.to_str().unwrap()).unwrap();
        assert!(summary.contains("80 ns -> 100 ns (1.25x)"), "{summary}");
        assert!(summary.contains("scheduler_executor/news/wave: 150 ns (new)"));
        assert!(summary.contains("gone/bench: dropped"));
        // The baseline now *is* the capture, byte for byte, and reparses.
        assert_eq!(std::fs::read_to_string(&baseline).unwrap(), SAMPLE);
        assert_eq!(
            parse_results(&std::fs::read_to_string(&baseline).unwrap()).unwrap()
                ["scheduler_executor/news/ready"],
            100
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_baselines_rejects_unparseable_capture() {
        let dir = std::env::temp_dir().join(format!("helix-guard-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let current = dir.join("current.json");
        let baseline = dir.join("baseline.json");
        std::fs::write(&current, "{\"benchmarks\": []}\n").unwrap();
        std::fs::write(&baseline, SAMPLE).unwrap();
        assert!(write_baseline(current.to_str().unwrap(), baseline.to_str().unwrap()).is_err());
        // A bad capture must never clobber the committed baseline.
        assert_eq!(std::fs::read_to_string(&baseline).unwrap(), SAMPLE);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unescapes_ids() {
        let text =
            r#"  {"id": "odd\"name\\x", "min_ns": 7, "median_ns": 8, "mean_ns": 9, "samples": 1}"#;
        let map = parse_results(text).unwrap();
        assert_eq!(map[r#"odd"name\x"#], 7);
    }
}
