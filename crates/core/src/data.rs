//! Incremental data: per-chunk content hashing and durable CSV append.
//!
//! The Helix paper's human-in-the-loop supplies *data* — labels and new
//! examples — at least as often as workflow edits. This module gives the
//! dataset a Merkle-style identity of its own so the signature machinery
//! can see data change at sub-file granularity:
//!
//! * Every [`crate::ops::OperatorKind::CsvSource`] split file is divided
//!   into **chunks** of `HELIX_DATA_CHUNK_ROWS` non-blank lines (the same
//!   lines [`crate::exec`] turns into source rows), and each chunk is
//!   content-hashed together with its split tag. The per-source
//!   [`SourceManifest`] folds the chunk hashes into one content hash that
//!   replaces the source's *path* parameters inside its signature — two
//!   sources with identical bytes sign identically wherever the files
//!   live, which is what makes an incremental rerun byte-comparable to a
//!   from-scratch rerun on the concatenated data.
//! * [`append_lines`] is the durable ingest path behind
//!   `Session::append_data`: a delta is first staged in a `<file>.ingest`
//!   sidecar (written atomically), then applied to the CSV, then the
//!   sidecar is removed. [`heal_pending_ingest`] replays a sidecar left
//!   behind by a crash — truncate to the recorded base length, re-apply,
//!   remove — so an acknowledged delta survives SIGKILL at any point and a
//!   half-applied one is completed before anyone hashes the file.
//!
//! Chunk hashes also key **partition signatures** (see
//! [`crate::slicing::chunk_plan`]): appending rows leaves every existing
//! chunk's hash intact, so downstream row-aligned partitions keep their
//! store entries and only the new tail recomputes.

use crate::ops::OperatorKind;
use crate::workflow::Workflow;
use crate::{HelixError, Result};
use helix_dataflow::fx::{FxHashMap, FxHasher};
use helix_json::Json;
use std::hash::Hasher;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Default rows per data chunk when `HELIX_DATA_CHUNK_ROWS` is unset:
/// small enough that the census workloads split into several chunks,
/// large enough that chunk bookkeeping stays negligible.
pub const DEFAULT_DATA_CHUNK_ROWS: usize = 512;

/// One contiguous run of non-blank source lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataChunk {
    /// Content hash of the chunk's lines, salted with the split tag.
    pub hash: u64,
    /// Number of non-blank lines (= source rows) the chunk covers.
    pub rows: usize,
}

/// The chunked content identity of one data source.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceManifest {
    /// Hash over all chunk hashes (and the split layout) — the value that
    /// stands in for the source's path parameters during signing.
    pub content_hash: u64,
    /// Chunks in source row order: train-file chunks, then test-file
    /// chunks — exactly the row order `exec_csv_source` emits.
    pub chunks: Vec<DataChunk>,
}

/// Splits one file's non-blank lines into chunks of `chunk_rows`, hashing
/// each with the split tag. A missing or unreadable file contributes no
/// chunks (compile-time signing must not fail on paths that only exist at
/// execution time).
fn chunk_split(path: &Path, split: &str, chunk_rows: usize, out: &mut Vec<DataChunk>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let mut hasher: Option<FxHasher> = None;
    let mut rows = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let h = hasher.get_or_insert_with(|| {
            let mut h = FxHasher::default();
            h.write(split.as_bytes());
            h.write_u8(0xfe);
            h
        });
        h.write(line.as_bytes());
        h.write_u8(0xfd);
        rows += 1;
        if rows == chunk_rows {
            out.push(DataChunk {
                hash: hasher.take().unwrap().finish(),
                rows,
            });
            rows = 0;
        }
    }
    if let Some(h) = hasher {
        out.push(DataChunk {
            hash: h.finish(),
            rows,
        });
    }
}

/// Builds the [`SourceManifest`] for a data-source operator, healing any
/// pending ingest sidecar first so a half-applied delta is never hashed.
/// `None` for operators that are not chunkable data sources.
pub fn source_manifest(kind: &OperatorKind, chunk_rows: usize) -> Option<SourceManifest> {
    let OperatorKind::CsvSource {
        train_path,
        test_path,
    } = kind
    else {
        return None;
    };
    let chunk_rows = chunk_rows.max(1);
    let mut chunks = Vec::new();
    let mut combined = FxHasher::default();
    let mut split = |path: &Path, tag: &str| {
        let _ = heal_pending_ingest(path);
        combined.write(tag.as_bytes());
        combined.write_u8(0xfe);
        let start = chunks.len();
        chunk_split(path, tag, chunk_rows, &mut chunks);
        for chunk in &chunks[start..] {
            combined.write_u64(chunk.hash);
        }
    };
    split(train_path, crate::SPLIT_TRAIN);
    if let Some(test) = test_path {
        split(test, crate::SPLIT_TEST);
    }
    Some(SourceManifest {
        content_hash: combined.finish(),
        chunks,
    })
}

/// Manifests for every chunkable source of a workflow, keyed by node
/// index.
pub fn workflow_manifests(
    workflow: &Workflow,
    chunk_rows: usize,
) -> FxHashMap<usize, SourceManifest> {
    let mut map = FxHashMap::default();
    for (i, node) in workflow.nodes().iter().enumerate() {
        if let Some(manifest) = source_manifest(&node.kind, chunk_rows) {
            map.insert(i, manifest);
        }
    }
    map
}

/// Path of the ingest sidecar staged next to a data file.
fn sidecar_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".ingest");
    path.with_file_name(name)
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("ingest-tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn io_err(path: &Path, op: &str, e: std::io::Error) -> HelixError {
    HelixError::Store(format!("{op} {}: {e}", path.display()))
}

/// Applies a staged sidecar to the data file: truncate to the recorded
/// base length, append the payload, fsync, remove the sidecar. Idempotent.
fn apply_sidecar(path: &Path, base_len: u64, payload: &str) -> Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(path)
        .map_err(|e| io_err(path, "open", e))?;
    file.set_len(base_len)
        .map_err(|e| io_err(path, "truncate", e))?;
    let mut file = file;
    use std::io::Seek;
    file.seek(std::io::SeekFrom::End(0))
        .map_err(|e| io_err(path, "seek", e))?;
    file.write_all(payload.as_bytes())
        .map_err(|e| io_err(path, "append", e))?;
    file.sync_all().map_err(|e| io_err(path, "fsync", e))?;
    std::fs::remove_file(sidecar_path(path)).map_err(|e| io_err(path, "unstage", e))?;
    Ok(())
}

/// Completes a delta left half-applied by a crash. The sidecar is written
/// atomically, so its presence means a complete staged delta: re-apply it
/// (truncating any torn partial append first) and remove it. A no-op when
/// no sidecar exists.
pub fn heal_pending_ingest(path: &Path) -> Result<bool> {
    let sidecar = sidecar_path(path);
    let Ok(text) = std::fs::read_to_string(&sidecar) else {
        return Ok(false);
    };
    let json = Json::parse(&text).map_err(|e| {
        HelixError::Store(format!("corrupt ingest sidecar {}: {e}", sidecar.display()))
    })?;
    let base_len = json.get("base_len").and_then(Json::as_u64).unwrap_or(0);
    let payload = json
        .get("payload")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    apply_sidecar(path, base_len, &payload)?;
    Ok(true)
}

/// Durably appends `lines` to a CSV data file. On return the delta is on
/// disk and crash-safe: either the call fails (and the file is untouched
/// or will be healed to include the delta), or the data survives SIGKILL
/// at any later point. Returns the number of lines appended.
///
/// Blank lines are rejected — they would be invisible to the source
/// operator and make the acknowledged row count a lie.
pub fn append_lines(path: &Path, lines: &[String]) -> Result<usize> {
    if lines
        .iter()
        .any(|l| l.trim().is_empty() || l.contains('\n'))
    {
        return Err(HelixError::Workflow(
            "data rows must be non-blank single lines".into(),
        ));
    }
    if lines.is_empty() {
        return Ok(0);
    }
    heal_pending_ingest(path)?;
    let base_len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    // If the file exists without a trailing newline, the payload opens
    // with one so the first appended row starts a fresh line.
    let needs_newline = base_len > 0 && {
        use std::io::{Read, Seek};
        let mut f = std::fs::File::open(path).map_err(|e| io_err(path, "open", e))?;
        f.seek(std::io::SeekFrom::End(-1))
            .map_err(|e| io_err(path, "seek", e))?;
        let mut last = [0u8; 1];
        f.read_exact(&mut last)
            .map_err(|e| io_err(path, "read", e))?;
        last[0] != b'\n'
    };
    let mut payload = String::new();
    if needs_newline {
        payload.push('\n');
    }
    for line in lines {
        payload.push_str(line);
        payload.push('\n');
    }
    let record = Json::obj(vec![
        ("base_len", Json::Num(base_len as f64)),
        ("payload", Json::str(&payload)),
    ]);
    let sidecar = sidecar_path(path);
    write_atomic(&sidecar, record.to_string().as_bytes())
        .map_err(|e| io_err(&sidecar, "stage", e))?;
    apply_sidecar(path, base_len, &payload)?;
    Ok(lines.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-data-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn source(train: &Path) -> OperatorKind {
        OperatorKind::CsvSource {
            train_path: train.to_path_buf(),
            test_path: None,
        }
    }

    #[test]
    fn missing_file_hashes_deterministically() {
        let kind = source(Path::new("/nonexistent/train.csv"));
        let a = source_manifest(&kind, 4).unwrap();
        let b = source_manifest(&kind, 4).unwrap();
        assert_eq!(a, b);
        assert!(a.chunks.is_empty());
    }

    #[test]
    fn append_extends_chunks_without_touching_existing_hashes() {
        let dir = tmpdir("chunks");
        let train = dir.join("train.csv");
        std::fs::write(&train, "a,1\nb,2\nc,3\n").unwrap();
        let before = source_manifest(&source(&train), 2).unwrap();
        assert_eq!(before.chunks.len(), 2);
        append_lines(&train, &["d,4".into(), "e,5".into()]).unwrap();
        let after = source_manifest(&source(&train), 2).unwrap();
        assert_eq!(after.chunks.len(), 3);
        // The full first chunk is untouched; only the partial tail grew.
        assert_eq!(after.chunks[0], before.chunks[0]);
        assert_ne!(after.content_hash, before.content_hash);
        assert_eq!(after.chunks.iter().map(|c| c.rows).sum::<usize>(), 5);
    }

    #[test]
    fn content_hash_ignores_paths() {
        let dir = tmpdir("paths");
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        std::fs::write(&a, "x,1\ny,2\n").unwrap();
        std::fs::write(&b, "x,1\ny,2\n").unwrap();
        let ma = source_manifest(&source(&a), 8).unwrap();
        let mb = source_manifest(&source(&b), 8).unwrap();
        assert_eq!(ma, mb);
    }

    #[test]
    fn same_lines_in_different_splits_hash_differently() {
        let dir = tmpdir("splits");
        let f = dir.join("f.csv");
        std::fs::write(&f, "x,1\n").unwrap();
        let train_only = source_manifest(&source(&f), 8).unwrap();
        let test_only = source_manifest(
            &OperatorKind::CsvSource {
                train_path: dir.join("empty.csv"),
                test_path: Some(f.clone()),
            },
            8,
        )
        .unwrap();
        assert_ne!(train_only.content_hash, test_only.content_hash);
    }

    #[test]
    fn append_without_trailing_newline_starts_fresh_line() {
        let dir = tmpdir("newline");
        let train = dir.join("train.csv");
        std::fs::write(&train, "a,1").unwrap();
        append_lines(&train, &["b,2".into()]).unwrap();
        assert_eq!(std::fs::read_to_string(&train).unwrap(), "a,1\nb,2\n");
    }

    #[test]
    fn blank_rows_rejected() {
        let dir = tmpdir("blank");
        let train = dir.join("train.csv");
        std::fs::write(&train, "a,1\n").unwrap();
        assert!(append_lines(&train, &["  ".into()]).is_err());
        assert!(append_lines(&train, &["a\nb".into()]).is_err());
        assert_eq!(std::fs::read_to_string(&train).unwrap(), "a,1\n");
    }

    #[test]
    fn heal_replays_staged_delta_over_torn_append() {
        let dir = tmpdir("heal");
        let train = dir.join("train.csv");
        std::fs::write(&train, "a,1\n").unwrap();
        // Simulate a crash after staging but mid-append: sidecar present,
        // file holds a torn partial write.
        let record = Json::obj(vec![
            ("base_len", Json::Num(4.0)),
            ("payload", Json::str("b,2\nc,3\n")),
        ]);
        std::fs::write(sidecar_path(&train), record.to_string()).unwrap();
        std::fs::write(&train, "a,1\nb,").unwrap();
        assert!(heal_pending_ingest(&train).unwrap());
        assert_eq!(std::fs::read_to_string(&train).unwrap(), "a,1\nb,2\nc,3\n");
        assert!(!sidecar_path(&train).exists());
        // Idempotent: healing again is a no-op.
        assert!(!heal_pending_ingest(&train).unwrap());
    }
}
