//! The DAG optimizer: from a workflow to a physical execution plan.
//!
//! Compilation stitches the pieces together exactly as paper §2.2
//! describes: the intermediate code generator (here: the workflow *is* the
//! operator DAG), the iterative change tracker (Merkle signatures vs the
//! previous version), the program slicer, and the recomputation optimizer,
//! yielding a [`CompiledPlan`] the engine executes.

use crate::cost::{secs_to_us, CostModel};
use crate::memo::{DecisionSource, MemoTable};
use crate::recompute::{plan_states, NodeCosts, NodeState, RecomputationPolicy};
use crate::signature::{
    compute_signatures_with_data, track_changes, ChangeKind, ChangeReport, Signature,
};
use crate::slicing::{self, NodeChunks};
use crate::store::IntermediateStore;
use crate::workflow::{NodeId, Workflow};
use crate::Result;
use helix_dataflow::fx::FxHashMap;

/// Default compute estimate for operators never observed before (50 ms):
/// large enough that loading a small cached result wins, small enough that
/// a plan never *depends* on the estimate being right — unknown nodes have
/// no materialization and must compute regardless.
const DEFAULT_COMPUTE_SECS: f64 = 0.05;

/// The physical plan for one iteration.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    /// Topological execution order over all nodes.
    pub order: Vec<NodeId>,
    /// Merkle signature per node.
    pub signatures: Vec<Signature>,
    /// Slice mask: nodes feeding outputs.
    pub active: Vec<bool>,
    /// Load/compute/prune decision per node.
    pub states: Vec<NodeState>,
    /// Costs used by the optimizer (µs), for reports and tests.
    pub costs: Vec<NodeCosts>,
    /// Where each node's planning cost came from: `Estimate` out of
    /// [`compile`], flipped to `Observed` per memo-backed node when
    /// [`adapt_plan_with_memo`] re-plans.
    pub sources: Vec<DecisionSource>,
    /// Diff against the previous iteration, when one exists.
    pub change: Option<ChangeReport>,
    /// Per-partition signatures over the row-aligned region downstream of
    /// chunkable data sources (`None` for nodes outside it) — the keys the
    /// scheduler uses to serve unchanged partitions from the store after a
    /// data delta. See [`crate::slicing::chunk_plan`].
    pub chunks: Vec<Option<NodeChunks>>,
}

impl CompiledPlan {
    /// Number of nodes planned to load from the store.
    pub fn load_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == NodeState::Load)
            .count()
    }

    /// Number of nodes planned to compute.
    pub fn compute_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == NodeState::Compute)
            .count()
    }

    /// Number of pruned nodes (sliced or shadowed by loads).
    pub fn prune_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == NodeState::Prune)
            .count()
    }
}

/// Compiles a workflow into a physical plan.
///
/// `previous` is the signature snapshot of the last executed version (for
/// the change tracker); `None` on the first iteration.
pub fn compile(
    workflow: &Workflow,
    store: &IntermediateStore,
    cost_model: &CostModel,
    policy: RecomputationPolicy,
    previous: Option<&FxHashMap<String, (u64, Signature)>>,
) -> Result<CompiledPlan> {
    compile_with_slicing(workflow, store, cost_model, policy, previous, true)
}

/// [`compile`] with program slicing optionally disabled (the
/// "unoptimized Helix" configuration of the paper's demo §3: every
/// declared operator executes whether or not it feeds an output).
pub fn compile_with_slicing(
    workflow: &Workflow,
    store: &IntermediateStore,
    cost_model: &CostModel,
    policy: RecomputationPolicy,
    previous: Option<&FxHashMap<String, (u64, Signature)>>,
    enable_slicing: bool,
) -> Result<CompiledPlan> {
    let order = workflow.topo_order()?;
    // Chunk the data sources and sign them by *content*: the manifest
    // hash stands in for the source's path parameters, so a data delta is
    // a signature change like any workflow edit, and unchanged chunks
    // keep their partition signatures across deltas.
    let manifests = crate::data::workflow_manifests(workflow, crate::config_env::data_chunk_rows());
    // A source whose files are missing or empty keeps its path-based
    // signature: there is no content to sign, and workflows are routinely
    // compiled before their data exists.
    let data_hashes = manifests
        .iter()
        .filter(|(_, m)| !m.chunks.is_empty())
        .map(|(i, m)| (*i, m.content_hash))
        .collect();
    let signatures = compute_signatures_with_data(workflow, &data_hashes)?;
    let chunks = slicing::chunk_plan(workflow, &manifests)?;
    let slice = if enable_slicing {
        slicing::slice(workflow)?
    } else {
        slicing::Slice {
            active: vec![true; workflow.len()],
        }
    };
    let change = previous.map(|prev| track_changes(workflow, &signatures, prev));

    let mut costs = Vec::with_capacity(workflow.len());
    for (i, node) in workflow.nodes().iter().enumerate() {
        let compute_secs = cost_model
            .compute_estimate_secs(&node.name)
            .unwrap_or(DEFAULT_COMPUTE_SECS);
        // A node is loadable iff the store has an entry under its *current*
        // signature. Stale or never-materialized results simply miss.
        let load_us = store
            .lookup(signatures[i])
            .map(|meta| secs_to_us(cost_model.load_estimate_secs(meta.bytes)));
        costs.push(NodeCosts {
            compute_us: secs_to_us(compute_secs),
            load_us,
        });
    }

    let states = plan_states(workflow, &slice.active, &costs, policy)?;
    let sources = vec![DecisionSource::Estimate; workflow.len()];
    Ok(CompiledPlan {
        order,
        signatures,
        active: slice.active,
        states,
        costs,
        sources,
        change,
        chunks,
    })
}

/// The adaptive re-plan: replaces estimate-backed compute costs with
/// memo-observed per-signature history and re-runs the recomputation
/// optimizer when they diverge.
///
/// For every active node whose signature has compute history in `memo`,
/// the divergence ratio `max(observed/estimate, estimate/observed)` is
/// compared against `replan_factor` (clamped to ≥ 1; a factor of exactly
/// `1.0` re-plans whenever *any* memo-backed node exists, which keeps
/// tests deterministic; `f64::INFINITY` disables re-planning). When any
/// node diverges, all memo-backed compute costs are swapped in,
/// [`plan_states`] runs again over the same slice mask, those nodes'
/// [`CompiledPlan::sources`] flip to [`DecisionSource::Observed`], and
/// `Ok(true)` is returned. Only `states`/`costs`/`sources` change —
/// signatures, order, and the slice are untouched, so execution results
/// stay byte-identical; only load/compute/store choices may move.
pub fn adapt_plan_with_memo(
    workflow: &Workflow,
    plan: &mut CompiledPlan,
    memo: &MemoTable,
    policy: RecomputationPolicy,
    replan_factor: f64,
) -> Result<bool> {
    let factor = if replan_factor.is_nan() {
        f64::INFINITY
    } else {
        replan_factor.max(1.0)
    };
    if factor.is_infinite() || memo.is_empty() {
        return Ok(false);
    }
    // Memo-backed compute costs for active nodes, and whether any
    // diverges from the estimate by the configured factor.
    let mut observed_us: Vec<Option<u64>> = vec![None; workflow.len()];
    let mut diverged = false;
    for (i, slot) in observed_us.iter_mut().enumerate() {
        if !plan.active[i] {
            continue;
        }
        let Some(secs) = memo.observed_compute_secs(plan.signatures[i]) else {
            continue;
        };
        let us = secs_to_us(secs);
        *slot = Some(us);
        let est = plan.costs[i].compute_us.max(1) as f64;
        let obs = us.max(1) as f64;
        if (obs / est).max(est / obs) >= factor {
            diverged = true;
        }
    }
    if !diverged {
        return Ok(false);
    }
    for (i, us) in observed_us.iter().enumerate() {
        if let Some(us) = us {
            plan.costs[i].compute_us = *us;
            plan.sources[i] = DecisionSource::Observed;
        }
    }
    plan.states = plan_states(workflow, &plan.active, &plan.costs, policy)?;
    Ok(true)
}

/// Convenience for reports: pairs each node name with its plan state and
/// change kind.
pub fn describe_plan(
    workflow: &Workflow,
    plan: &CompiledPlan,
) -> Vec<(String, NodeState, ChangeKind)> {
    workflow
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let change = plan
                .change
                .as_ref()
                .map(|c| c.kinds[i])
                .unwrap_or(ChangeKind::Added);
            (node.name.clone(), plan.states[i], change)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ExtractorKind, LearnerSpec, NodeOutput, OperatorKind};
    use crate::signature::{compute_signatures, snapshot};
    use helix_dataflow::{DataCollection, DataType, Schema};

    fn tmp_store(tag: &str) -> IntermediateStore {
        let dir = std::env::temp_dir().join(format!("helix-compile-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        crate::store::StoreOptions::new(dir)
            .budget_bytes(1 << 24)
            .open()
            .unwrap()
    }

    fn census_like() -> Workflow {
        let mut w = Workflow::new("census");
        let src = w.csv_source("data", "train.csv", None::<&str>).unwrap();
        let rows = w
            .csv_scanner(
                "rows",
                &src,
                &[("age", DataType::Int), ("target", DataType::Int)],
            )
            .unwrap();
        let age = w
            .field_extractor("age_f", &rows, "age", ExtractorKind::Numeric)
            .unwrap();
        let target = w
            .field_extractor("target_f", &rows, "target", ExtractorKind::Numeric)
            .unwrap();
        let income = w.assemble("income", &rows, &[&age], &target).unwrap();
        let preds = w
            .learner("predictions", &income, LearnerSpec::default())
            .unwrap();
        w.output(&preds);
        w
    }

    #[test]
    fn first_iteration_computes_everything_active() {
        let w = census_like();
        let store = tmp_store("first");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        assert_eq!(plan.load_count(), 0);
        assert_eq!(plan.compute_count(), w.len());
        assert!(plan.change.is_none());
    }

    #[test]
    fn materialized_results_become_loads() {
        let w = census_like();
        let store = tmp_store("loads");
        let mut cm = CostModel::new();
        // Pretend every node ran for 1s and the assembled result was
        // materialized.
        let sigs = compute_signatures(&w).unwrap();
        for node in w.nodes() {
            cm.observe_compute(&node.name, 1.0);
        }
        let income = w.by_name("income").unwrap();
        let out = NodeOutput::Data(DataCollection::empty(Schema::of(&[("x", DataType::Int)])));
        store.put(sigs[income.index()], &out).unwrap();

        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        assert_eq!(plan.states[income.index()], NodeState::Load);
        // Ancestors of income are shadowed by the load.
        let rows = w.by_name("rows").unwrap();
        assert_eq!(plan.states[rows.index()], NodeState::Prune);
        // Model still computes (no materialization).
        let model = w.by_name("predictions__model").unwrap();
        assert_eq!(plan.states[model.index()], NodeState::Compute);
    }

    #[test]
    fn changed_operator_invalidates_materialization() {
        let w1 = census_like();
        let store = tmp_store("invalidate");
        let mut cm = CostModel::new();
        for node in w1.nodes() {
            cm.observe_compute(&node.name, 1.0);
        }
        let sigs1 = compute_signatures(&w1).unwrap();
        let income = w1.by_name("income").unwrap();
        let out = NodeOutput::Data(DataCollection::empty(Schema::of(&[("x", DataType::Int)])));
        store.put(sigs1[income.index()], &out).unwrap();

        // Change the scanner: income's signature changes, the entry is stale.
        let mut w2 = census_like();
        w2.replace_operator(
            "rows",
            OperatorKind::CsvScan {
                fields: vec![
                    ("age".to_string(), DataType::Float),
                    ("target".to_string(), DataType::Int),
                ],
            },
        )
        .unwrap();
        let prev = snapshot(&w1, &sigs1);
        let plan = compile(&w2, &store, &cm, RecomputationPolicy::Optimal, Some(&prev)).unwrap();
        assert_eq!(plan.states[income.index()], NodeState::Compute);
        let change = plan.change.as_ref().unwrap();
        assert_eq!(
            change.kinds[w2.by_name("rows").unwrap().index()],
            ChangeKind::LocallyChanged
        );
        assert_eq!(
            change.kinds[income.index()],
            ChangeKind::TransitivelyAffected
        );
    }

    #[test]
    fn adapt_plan_swaps_in_observed_costs_when_diverged() {
        let w = census_like();
        let store = tmp_store("adapt");
        let cm = CostModel::new();
        let mut plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let income = w.by_name("income").unwrap().index();

        // Empty memo: nothing to adapt.
        let memo = crate::memo::MemoTable::new();
        assert!(
            !adapt_plan_with_memo(&w, &mut plan, &memo, RecomputationPolicy::Optimal, 4.0).unwrap()
        );

        // Observed cost 100× the 50 ms default estimate: diverged at 4×.
        let mut memo = crate::memo::MemoTable::new();
        memo.record(
            plan.signatures[income],
            "income",
            &[],
            crate::memo::Observation {
                exec_secs: 5.0,
                output_bytes: 1024,
                loaded: false,
                rows: 10,
                run: 0,
            },
        );
        assert!(
            adapt_plan_with_memo(&w, &mut plan, &memo, RecomputationPolicy::Optimal, 4.0).unwrap()
        );
        assert_eq!(plan.sources[income], DecisionSource::Observed);
        assert_eq!(plan.costs[income].compute_us, secs_to_us(5.0));
        // Non-memo-backed nodes keep their estimate provenance.
        let rows = w.by_name("rows").unwrap().index();
        assert_eq!(plan.sources[rows], DecisionSource::Estimate);

        // Infinity disables re-planning outright.
        let mut plan2 = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        assert!(!adapt_plan_with_memo(
            &w,
            &mut plan2,
            &memo,
            RecomputationPolicy::Optimal,
            f64::INFINITY
        )
        .unwrap());
        assert!(plan2.sources.iter().all(|s| *s == DecisionSource::Estimate));

        // A factor of exactly 1.0 re-plans whenever history exists, even
        // with zero divergence (deterministic-test semantics).
        let mut memo_eq = crate::memo::MemoTable::new();
        memo_eq.record(
            plan2.signatures[income],
            "income",
            &[],
            crate::memo::Observation {
                exec_secs: DEFAULT_COMPUTE_SECS,
                output_bytes: 0,
                loaded: false,
                rows: 0,
                run: 0,
            },
        );
        assert!(
            adapt_plan_with_memo(&w, &mut plan2, &memo_eq, RecomputationPolicy::Optimal, 1.0)
                .unwrap()
        );
        assert_eq!(plan2.sources[income], DecisionSource::Observed);
    }

    #[test]
    fn describe_plan_lists_every_node() {
        let w = census_like();
        let store = tmp_store("describe");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let desc = describe_plan(&w, &plan);
        assert_eq!(desc.len(), w.len());
        assert!(desc.iter().any(|(name, ..)| name == "income"));
    }
}
