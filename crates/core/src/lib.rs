//! Helix core: a declarative ML workflow system that optimizes execution
//! *across* human-in-the-loop iterations (Xin et al., VLDB 2018).
//!
//! # Architecture (paper Fig. 1c)
//!
//! * **Programming interface** — [`workflow`] provides the DSL: named
//!   operator declarations (`FieldExtractor`, `Bucketizer`,
//!   `InteractionFeature`, `Learner`, `Reducer`, UDFs) wired into a DAG of
//!   data collections.
//! * **Compilation** — [`compiler`] turns a [`workflow::Workflow`] into an
//!   optimized physical plan: Merkle-style operator
//!   [signatures](signature) drive the *iterative change tracker*, the
//!   [program slicer](slicing) prunes operators that do not contribute to
//!   outputs, and the [recomputation optimizer](recompute) picks the
//!   cost-optimal `{load, compute, prune}` state per node in PTIME via a
//!   reduction to the Project Selection Problem (`helix-mincut`).
//! * **Execution** — [`engine`] runs the plan through the ready-queue
//!   [`scheduler`] (operators execute the instant their dependencies are
//!   satisfied, on work-stealing workers; stateful outcomes merge in plan
//!   order), measures real per-operator costs, and consults the online
//!   [materialization optimizer](materialize) after every operator
//!   completes, under a storage budget enforced by the sharded
//!   [intermediate store](store).
//! * **Iteration support** — [`session`] is the serving-shaped API: a
//!   [`session::Session`] owns a live workflow plus typed edit handles and
//!   iterates over a shared `&self` engine, and a
//!   [`session::SessionManager`] multiplexes many concurrent sessions over
//!   one store; [`version`] keeps every workflow version with its metrics
//!   (the Versions/Metrics tabs of §3.1); [`viz`] renders DAGs (DOT +
//!   ASCII) and git-style version diffs.

#![warn(missing_docs)]

pub mod compiler;
pub mod config_env;
pub mod cost;
pub mod data;
pub mod engine;
pub mod error;
pub mod exec;
pub mod materialize;
pub mod memo;
pub mod ops;
pub(crate) mod persist;
pub mod pool;
pub mod recompute;
pub mod report;
pub mod scheduler;
pub mod session;
pub mod signature;
pub mod slicing;
pub mod store;
pub mod version;
pub mod viz;
pub mod workflow;

pub use engine::{Engine, EngineConfig, EngineRecovery, Lineage, OptimizerStats, RunOptions};
pub use error::HelixError;
pub use materialize::MaterializationPolicyKind;
pub use memo::{DecisionSource, MemoEntry, MemoTable, Observation, OfflineOutcome};
pub use ops::{
    EvalSpec, ExtractorKind, LearnerSpec, MetricKind, ModelType, NodeOutput, OperatorKind, Udf,
};
pub use pool::WorkerPool;
pub use recompute::{NodeState, RecomputationPolicy};
pub use report::IterationReport;
pub use scheduler::{default_parallelism, default_partition_rows, ExecOpts, ExecStrategy};
pub use session::{
    LearnerParam, Session, SessionHandle, SessionManager, UncertainExample, WorkflowEdit,
};
pub use store::{default_store_shards, Durability, IntermediateStore, RecoveryInfo, StoreOptions};
pub use workflow::{NodeId, NodeRef, Workflow};

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, HelixError>;

/// `Mutex::lock` without poison propagation — the crate-wide policy for
/// engine, session, and scheduler state: a panicking sibling thread must
/// not wedge unrelated work, and every shared structure is only mutated
/// at well-defined merge points, so a poisoned guard's contents are
/// still consistent.
pub(crate) fn lock<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Name of the split column threaded through source collections.
pub const SPLIT_COL: &str = "__split__";
/// Split value for training rows.
pub const SPLIT_TRAIN: &str = "train";
/// Split value for held-out rows.
pub const SPLIT_TEST: &str = "test";
