//! The online materialization optimizer.
//!
//! Deciding what to persist for *future* iterations is NP-hard even under
//! strong simplifying assumptions (knapsack reduction, paper §2.3), the
//! iteration count is unknown, and decisions must be made the moment an
//! operator finishes (buffering candidates for deferred decisions is
//! prohibitive). Helix therefore uses the paper's online cost rule: at
//! iteration `t`, materializing node `i` is worth it when
//!
//! ```text
//! r_i = 2·l_i − (c_i + Σ_{j ∈ A(i)} c_j) < 0
//! ```
//!
//! i.e. one write plus one future load (`2·l_i`) beats recomputing `i`
//! from scratch through all its ancestors — and the output fits the
//! remaining storage budget. `MaterializeAll` (DeepDive) and `Never`
//! (KeystoneML) are provided as the baselines Fig. 2 compares against, and
//! [`offline_optimal`] is the exact knapsack used in ablation benches.

/// Everything the policy may consult when an operator completes.
#[derive(Debug, Clone, Copy)]
pub struct MaterializationContext {
    /// Estimated cost (seconds) to load this output back in a future
    /// iteration — also the estimated cost to write it now.
    pub load_cost_secs: f64,
    /// Observed compute cost of this node, this iteration (seconds).
    pub compute_cost_secs: f64,
    /// Sum of the compute costs of all ancestors (seconds).
    pub ancestors_compute_secs: f64,
    /// Size of the output in bytes.
    pub size_bytes: u64,
    /// Bytes still available under the storage budget.
    pub remaining_budget_bytes: u64,
    /// Expected number of future loads of this output, from observed
    /// per-signature reuse history (`1.0` — the paper's single-future-
    /// load assumption — when no history exists).
    pub expected_reuse: f64,
    /// Whether the offline Optimal pass pinned this signature: pinned
    /// outputs materialize whenever they fit, regardless of the rule.
    pub pinned: bool,
}

impl MaterializationContext {
    /// The reduction estimate `r_i` (negative ⇒ materialize),
    /// generalized from the paper's rule by the expected reuse count
    /// `f`: one write plus `f` future loads against `f` saved
    /// recomputations,
    ///
    /// ```text
    /// r_i = (1 + f)·l_i − f·(c_i + Σ_{j ∈ A(i)} c_j)
    /// ```
    ///
    /// At `f = 1` this is exactly the paper's `2·l − (c + anc)`.
    pub fn reduction(&self) -> f64 {
        let f = if self.expected_reuse.is_finite() && self.expected_reuse > 0.0 {
            self.expected_reuse
        } else {
            1.0
        };
        (1.0 + f) * self.load_cost_secs - f * (self.compute_cost_secs + self.ancestors_compute_secs)
    }
}

/// Which materialization policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaterializationPolicyKind {
    /// Helix's online heuristic (`r_i < 0` and budget).
    #[default]
    HelixOnline,
    /// Materialize every intermediate that fits (DeepDive).
    All,
    /// Never materialize (KeystoneML).
    Never,
}

impl MaterializationPolicyKind {
    /// Decides whether to materialize the completed node.
    pub fn decide(&self, ctx: &MaterializationContext) -> bool {
        let fits = ctx.size_bytes <= ctx.remaining_budget_bytes;
        match self {
            MaterializationPolicyKind::HelixOnline => fits && (ctx.pinned || ctx.reduction() < 0.0),
            MaterializationPolicyKind::All => fits,
            MaterializationPolicyKind::Never => false,
        }
    }
}

/// A candidate for the offline (exact) formulation: value is the run-time
/// reduction of having it materialized next iteration; weight its size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfflineCandidate {
    /// Expected future benefit in seconds (clamped at ≥ 0).
    pub benefit_secs: f64,
    /// Size in bytes.
    pub size_bytes: u64,
}

/// Exact 0/1-knapsack over materialization candidates (the NP-hard
/// formulation the online rule approximates). Exponential-free DP over a
/// byte-bucketed budget; used in tests and the ablation bench, not in the
/// engine's hot path.
///
/// Returns the chosen candidate indices.
pub fn offline_optimal(candidates: &[OfflineCandidate], budget_bytes: u64) -> Vec<usize> {
    assert!(
        candidates.len() <= 64,
        "offline solver limited to 64 candidates"
    );
    if candidates.is_empty() || budget_bytes == 0 {
        return Vec::new();
    }
    // Bucket sizes to keep the DP table small: 1 KiB granularity.
    const BUCKET: u64 = 1024;
    let cap = (budget_bytes / BUCKET) as usize;
    let weights: Vec<usize> = candidates
        .iter()
        .map(|c| (c.size_bytes.div_ceil(BUCKET)) as usize)
        .collect();
    let values: Vec<f64> = candidates.iter().map(|c| c.benefit_secs.max(0.0)).collect();
    // Carry the chosen set as a bitmask beside each DP cell: exact and
    // traceback-free (the 1-D keep-matrix traceback is subtly incorrect).
    let mut best = vec![0.0f64; cap + 1];
    let mut mask = vec![0u64; cap + 1];
    for i in 0..candidates.len() {
        if weights[i] > cap {
            continue;
        }
        for w in (weights[i]..=cap).rev() {
            let with = best[w - weights[i]] + values[i];
            if with > best[w] {
                best[w] = with;
                mask[w] = mask[w - weights[i]] | (1 << i);
            }
        }
    }
    (0..candidates.len())
        .filter(|i| mask[cap] & (1 << i) != 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(
        load: f64,
        compute: f64,
        ancestors: f64,
        size: u64,
        remaining: u64,
    ) -> MaterializationContext {
        MaterializationContext {
            load_cost_secs: load,
            compute_cost_secs: compute,
            ancestors_compute_secs: ancestors,
            size_bytes: size,
            remaining_budget_bytes: remaining,
            expected_reuse: 1.0,
            pinned: false,
        }
    }

    #[test]
    fn expected_reuse_biases_the_rule_and_one_is_the_paper() {
        // Borderline node: 2·1.0 − (0.9 + 0.9) > 0 ⇒ skip at f = 1.
        let mut c = ctx(1.0, 0.9, 0.9, 1024, 1 << 20);
        assert!(!MaterializationPolicyKind::HelixOnline.decide(&c));
        // Observed heavy reuse (f = 4): 5·1.0 − 4·1.8 < 0 ⇒ materialize.
        c.expected_reuse = 4.0;
        assert!(MaterializationPolicyKind::HelixOnline.decide(&c));
        // Degenerate reuse values fall back to the paper's rule.
        c.expected_reuse = f64::NAN;
        assert_eq!(
            c.reduction(),
            2.0 * c.load_cost_secs - (c.compute_cost_secs + c.ancestors_compute_secs)
        );
    }

    #[test]
    fn pinned_outputs_materialize_when_they_fit() {
        let mut c = ctx(1.0, 0.1, 0.1, 1024, 1 << 20);
        assert!(!MaterializationPolicyKind::HelixOnline.decide(&c));
        c.pinned = true;
        assert!(MaterializationPolicyKind::HelixOnline.decide(&c));
        c.remaining_budget_bytes = 0;
        assert!(!MaterializationPolicyKind::HelixOnline.decide(&c));
        // Pins never override `Never`.
        assert!(!MaterializationPolicyKind::Never.decide(&c));
    }

    #[test]
    fn helix_materializes_expensive_cheap_to_store_nodes() {
        // Costs 10s to recompute through ancestors, loads in 0.1s.
        let c = ctx(0.1, 4.0, 6.0, 1024, 1 << 20);
        assert!(c.reduction() < 0.0);
        assert!(MaterializationPolicyKind::HelixOnline.decide(&c));
    }

    #[test]
    fn helix_skips_cheap_to_recompute_nodes() {
        // Recomputes in 0.2s, loading costs 1s each way.
        let c = ctx(1.0, 0.1, 0.1, 1024, 1 << 20);
        assert!(c.reduction() > 0.0);
        assert!(!MaterializationPolicyKind::HelixOnline.decide(&c));
    }

    #[test]
    fn budget_gates_all_policies_that_write() {
        let c = ctx(0.1, 50.0, 50.0, 2048, 1024);
        assert!(!MaterializationPolicyKind::HelixOnline.decide(&c));
        assert!(!MaterializationPolicyKind::All.decide(&c));
        let c_fits = ctx(0.1, 50.0, 50.0, 512, 1024);
        assert!(MaterializationPolicyKind::All.decide(&c_fits));
    }

    #[test]
    fn never_never_materializes() {
        let c = ctx(0.0, 1e9, 1e9, 0, u64::MAX);
        assert!(!MaterializationPolicyKind::Never.decide(&c));
    }

    #[test]
    fn offline_optimal_picks_best_value_under_budget() {
        let candidates = vec![
            OfflineCandidate {
                benefit_secs: 10.0,
                size_bytes: 700 * 1024,
            },
            OfflineCandidate {
                benefit_secs: 7.0,
                size_bytes: 400 * 1024,
            },
            OfflineCandidate {
                benefit_secs: 6.0,
                size_bytes: 400 * 1024,
            },
        ];
        // Budget 1 MiB: {0} alone (10.0) loses to {1, 2} (13.0); {0, 1}
        // does not fit (1100 KiB).
        let chosen = offline_optimal(&candidates, 1024 * 1024);
        assert_eq!(chosen, vec![1, 2]);
    }

    #[test]
    fn offline_optimal_matches_brute_force_on_random_instances() {
        // Deterministic pseudo-random instances; exhaustive check over all
        // subsets keeps the solver honest.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20 {
            let n = (next() % 8 + 1) as usize;
            let candidates: Vec<OfflineCandidate> = (0..n)
                .map(|_| OfflineCandidate {
                    benefit_secs: (next() % 100) as f64,
                    size_bytes: (next() % 64 + 1) * 1024,
                })
                .collect();
            let budget = (next() % 128 + 1) * 1024;
            let chosen = offline_optimal(&candidates, budget);
            let chosen_size: u64 = chosen
                .iter()
                .map(|&i| candidates[i].size_bytes.div_ceil(1024))
                .sum();
            assert!(chosen_size * 1024 <= budget.next_multiple_of(1024));
            let chosen_value: f64 = chosen.iter().map(|&i| candidates[i].benefit_secs).sum();
            let mut best = 0.0f64;
            for m in 0u32..(1 << n) {
                let size: u64 = (0..n)
                    .filter(|i| m & (1 << i) != 0)
                    .map(|i| candidates[i].size_bytes.div_ceil(1024))
                    .sum();
                if size <= budget / 1024 {
                    let value: f64 = (0..n)
                        .filter(|i| m & (1 << i) != 0)
                        .map(|i| candidates[i].benefit_secs)
                        .sum();
                    best = best.max(value);
                }
            }
            assert!(
                (chosen_value - best).abs() < 1e-9,
                "{chosen_value} vs {best}"
            );
        }
    }

    #[test]
    fn offline_optimal_respects_budget_exactly() {
        let candidates = vec![
            OfflineCandidate {
                benefit_secs: 5.0,
                size_bytes: 1024,
            },
            OfflineCandidate {
                benefit_secs: 5.0,
                size_bytes: 1024,
            },
        ];
        let chosen = offline_optimal(&candidates, 1024);
        assert_eq!(chosen.len(), 1);
        assert!(offline_optimal(&candidates, 0).is_empty());
        assert!(offline_optimal(&[], 1 << 20).is_empty());
    }

    #[test]
    fn offline_ignores_oversized_items() {
        let candidates = vec![OfflineCandidate {
            benefit_secs: 100.0,
            size_bytes: 1 << 30,
        }];
        assert!(offline_optimal(&candidates, 1024).is_empty());
    }
}
