//! Merkle-style operator signatures for change detection.
//!
//! Each node's signature hashes its operator tag, canonical parameter
//! string, and — crucially — its parents' signatures. A change to any
//! operator therefore changes the signature of *every* downstream node,
//! which gives the paper's "invalidates all results affected by the changes
//! via dependency analysis" (§2.2) for free: the intermediate store is
//! keyed by signature, so stale results simply never match.
//!
//! A pleasant consequence the paper's versioning UI exploits (§3.1 "roll
//! back to a past version"): reverting an edit restores the old signatures,
//! so materializations from before the edit become reusable again.

use crate::workflow::{NodeId, Workflow};
use crate::Result;
use helix_dataflow::fx::FxHasher;
use std::hash::Hasher;

/// A 64-bit node signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(pub u64);

impl Signature {
    /// Hex rendering used for store file names.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Computes signatures for every node, in [`NodeId`] index order.
///
/// # Errors
/// Propagates cycle detection from topological ordering.
pub fn compute_signatures(workflow: &Workflow) -> Result<Vec<Signature>> {
    compute_signatures_with_data(workflow, &helix_dataflow::fx::FxHashMap::default())
}

/// [`compute_signatures`] with per-node **data content hashes** mixed in:
/// for a node index present in `data_hashes` (a chunkable data source, see
/// [`crate::data::workflow_manifests`]), the content hash *replaces* the
/// operator's parameter string in the hash. Source parameters are file
/// paths, so this swap is what makes signatures track what the data *is*
/// rather than where it lives: appending rows changes the source signature
/// (and everything downstream), while relocating identical bytes does not.
pub fn compute_signatures_with_data(
    workflow: &Workflow,
    data_hashes: &helix_dataflow::fx::FxHashMap<usize, u64>,
) -> Result<Vec<Signature>> {
    let order = workflow.topo_order()?;
    let mut sigs = vec![Signature(0); workflow.len()];
    for id in order {
        let node = workflow.node(id);
        let mut hasher = FxHasher::default();
        hasher.write(node.kind.tag().as_bytes());
        hasher.write_u8(0xfe);
        match data_hashes.get(&id.index()) {
            Some(content) => {
                hasher.write(b"data-content");
                hasher.write_u64(*content);
            }
            None => hasher.write(node.kind.params_string().as_bytes()),
        }
        hasher.write_u8(0xff);
        // Parent signatures in wiring order: reordering parents is a change.
        for parent in &node.parents {
            hasher.write_u64(sigs[parent.index()].0);
        }
        sigs[id.index()] = Signature(hasher.finish());
    }
    Ok(sigs)
}

/// How a node differs from the previous iteration, as reported by the
/// iterative change tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// Same signature as last iteration.
    Unchanged,
    /// The node's own operator parameters or wiring changed.
    LocallyChanged,
    /// An ancestor changed; this node's cached results are stale.
    TransitivelyAffected,
    /// The node did not exist in the previous version.
    Added,
}

/// Per-node change report between two workflow versions (matched by node
/// name), plus names that disappeared.
#[derive(Debug, Clone)]
pub struct ChangeReport {
    /// Change kind per node of the *new* workflow.
    pub kinds: Vec<ChangeKind>,
    /// Node names present previously but not anymore.
    pub removed: Vec<String>,
}

impl ChangeReport {
    /// Ids of nodes whose cached results are unusable this iteration.
    pub fn invalidated(&self) -> Vec<NodeId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| !matches!(k, ChangeKind::Unchanged))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Human-readable single-line summary (for the versions browser).
    pub fn summary(&self, workflow: &Workflow) -> String {
        let mut local = Vec::new();
        let mut added = Vec::new();
        for (i, kind) in self.kinds.iter().enumerate() {
            let name = &workflow.nodes()[i].name;
            match kind {
                ChangeKind::LocallyChanged => local.push(name.as_str()),
                ChangeKind::Added => added.push(name.as_str()),
                _ => {}
            }
        }
        let mut parts = Vec::new();
        if !local.is_empty() {
            parts.push(format!("~ {}", local.join(", ")));
        }
        if !added.is_empty() {
            parts.push(format!("+ {}", added.join(", ")));
        }
        if !self.removed.is_empty() {
            parts.push(format!("- {}", self.removed.join(", ")));
        }
        if parts.is_empty() {
            "no changes".to_string()
        } else {
            parts.join("; ")
        }
    }
}

/// The iterative change tracker: diffs the new workflow against the
/// previous version's `(name, local-hash, signature)` records.
///
/// `previous` maps node name → (local hash, merkle signature) from the last
/// iteration; see [`local_hash`].
pub fn track_changes(
    workflow: &Workflow,
    signatures: &[Signature],
    previous: &helix_dataflow::fx::FxHashMap<String, (u64, Signature)>,
) -> ChangeReport {
    let mut kinds = Vec::with_capacity(workflow.len());
    for (i, node) in workflow.nodes().iter().enumerate() {
        let kind = match previous.get(&node.name) {
            None => ChangeKind::Added,
            Some(&(prev_local, prev_sig)) => {
                if prev_sig == signatures[i] {
                    ChangeKind::Unchanged
                } else if prev_local != local_hash(workflow, NodeId(i as u32)) {
                    ChangeKind::LocallyChanged
                } else {
                    ChangeKind::TransitivelyAffected
                }
            }
        };
        kinds.push(kind);
    }
    let removed = previous
        .keys()
        .filter(|name| workflow.by_name(name).is_none())
        .cloned()
        .collect();
    ChangeReport { kinds, removed }
}

/// Hash of a node's *own* definition (tag + params + parent names), i.e.
/// excluding ancestor content — used to distinguish "you edited this
/// operator" from "something upstream changed".
pub fn local_hash(workflow: &Workflow, id: NodeId) -> u64 {
    let node = workflow.node(id);
    let mut hasher = FxHasher::default();
    hasher.write(node.kind.tag().as_bytes());
    hasher.write_u8(0xfe);
    hasher.write(node.kind.params_string().as_bytes());
    hasher.write_u8(0xff);
    for parent in &node.parents {
        hasher.write(workflow.node(*parent).name.as_bytes());
        hasher.write_u8(0xfd);
    }
    hasher.finish()
}

/// Builds the `previous` map for [`track_changes`] from a workflow and its
/// signatures (recorded at the end of each iteration).
pub fn snapshot(
    workflow: &Workflow,
    signatures: &[Signature],
) -> helix_dataflow::fx::FxHashMap<String, (u64, Signature)> {
    let mut map = helix_dataflow::fx::FxHashMap::default();
    for (i, node) in workflow.nodes().iter().enumerate() {
        map.insert(
            node.name.clone(),
            (local_hash(workflow, NodeId(i as u32)), signatures[i]),
        );
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ExtractorKind, LearnerSpec, OperatorKind};
    use crate::workflow::Workflow;
    use helix_dataflow::DataType;

    fn base() -> Workflow {
        let mut w = Workflow::new("t");
        let src = w.csv_source("data", "train.csv", None::<&str>).unwrap();
        let rows = w
            .csv_scanner("rows", &src, &[("x", DataType::Int)])
            .unwrap();
        let ext = w
            .field_extractor("x", &rows, "x", ExtractorKind::Numeric)
            .unwrap();
        let label = w
            .field_extractor("y", &rows, "x", ExtractorKind::Numeric)
            .unwrap();
        let income = w.assemble("income", &rows, &[&ext], &label).unwrap();
        let preds = w
            .learner("predictions", &income, LearnerSpec::default())
            .unwrap();
        w.output(&preds);
        w
    }

    #[test]
    fn identical_workflows_have_identical_signatures() {
        let w1 = base();
        let w2 = base();
        assert_eq!(
            compute_signatures(&w1).unwrap(),
            compute_signatures(&w2).unwrap()
        );
    }

    #[test]
    fn param_change_ripples_downstream_only() {
        let w1 = base();
        let mut w2 = base();
        w2.replace_operator(
            "predictions__model",
            OperatorKind::Train(LearnerSpec {
                reg_param: 0.9,
                ..Default::default()
            }),
        )
        .unwrap();
        let s1 = compute_signatures(&w1).unwrap();
        let s2 = compute_signatures(&w2).unwrap();
        let id = |name: &str| w1.by_name(name).unwrap().index();
        // Upstream unchanged.
        assert_eq!(s1[id("rows")], s2[id("rows")]);
        assert_eq!(s1[id("income")], s2[id("income")]);
        // Model and its dependents changed.
        assert_ne!(s1[id("predictions__model")], s2[id("predictions__model")]);
        assert_ne!(s1[id("predictions")], s2[id("predictions")]);
    }

    #[test]
    fn tracker_classifies_changes() {
        let w1 = base();
        let s1 = compute_signatures(&w1).unwrap();
        let prev = snapshot(&w1, &s1);

        let mut w2 = base();
        w2.replace_operator(
            "predictions__model",
            OperatorKind::Train(LearnerSpec {
                reg_param: 0.9,
                ..Default::default()
            }),
        )
        .unwrap();
        let s2 = compute_signatures(&w2).unwrap();
        let report = track_changes(&w2, &s2, &prev);

        let kind = |name: &str| report.kinds[w2.by_name(name).unwrap().index()];
        assert_eq!(kind("rows"), ChangeKind::Unchanged);
        assert_eq!(kind("predictions__model"), ChangeKind::LocallyChanged);
        assert_eq!(kind("predictions"), ChangeKind::TransitivelyAffected);
        assert!(report.removed.is_empty());
        let summary = report.summary(&w2);
        assert!(summary.contains("predictions__model"));
    }

    #[test]
    fn tracker_reports_added_and_removed() {
        let w1 = base();
        let s1 = compute_signatures(&w1).unwrap();
        let prev = snapshot(&w1, &s1);

        let mut w2 = base();
        let rows = w2.node_ref("rows").unwrap();
        w2.field_extractor("ms", &rows, "marital_status", ExtractorKind::Categorical)
            .unwrap();
        let s2 = compute_signatures(&w2).unwrap();
        let report = track_changes(&w2, &s2, &prev);
        let kind = |name: &str| report.kinds[w2.by_name(name).unwrap().index()];
        assert_eq!(kind("ms"), ChangeKind::Added);

        // Removal: diff w1 against w2's snapshot.
        let prev2 = snapshot(&w2, &s2);
        let report_back = track_changes(&w1, &s1, &prev2);
        assert_eq!(report_back.removed, vec!["ms".to_string()]);
    }

    #[test]
    fn revert_restores_signatures() {
        let w1 = base();
        let mut w2 = base();
        w2.replace_operator(
            "x",
            OperatorKind::FieldExtractor {
                field: "x".into(),
                kind: ExtractorKind::Categorical,
            },
        )
        .unwrap();
        let mut w3 = w2.clone();
        w3.replace_operator(
            "x",
            OperatorKind::FieldExtractor {
                field: "x".into(),
                kind: ExtractorKind::Numeric,
            },
        )
        .unwrap();
        assert_eq!(
            compute_signatures(&w1).unwrap(),
            compute_signatures(&w3).unwrap()
        );
    }

    #[test]
    fn rewiring_changes_signature() {
        let w1 = base();
        let mut w2 = base();
        let rows = w2.node_ref("rows").unwrap();
        let x = w2.node_ref("x").unwrap();
        let y = w2.node_ref("y").unwrap();
        let ms = w2
            .field_extractor("ms", &rows, "marital_status", ExtractorKind::Categorical)
            .unwrap();
        w2.rewire("income", &[&rows, &x, &ms, &y]).unwrap();
        let s1 = compute_signatures(&w1).unwrap();
        let s2 = compute_signatures(&w2).unwrap();
        let id = |w: &Workflow, n: &str| w.by_name(n).unwrap().index();
        assert_ne!(s1[id(&w1, "income")], s2[id(&w2, "income")]);
        assert_eq!(s1[id(&w1, "x")], s2[id(&w2, "x")]);
    }
}
