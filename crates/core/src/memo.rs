//! The optimizer memo: persistent per-signature runtime history and the
//! offline Optimal-materialization pass built on top of it.
//!
//! Helix's online decisions (paper §2.3) run on *estimates* — name-keyed
//! EMAs in [`crate::cost`] plus a disk model. The memo is the layer that
//! makes those decisions data-driven across runs **and** process
//! restarts: every executed node records an [`Observation`] under its
//! Merkle [`Signature`] (exec time, output bytes, load-vs-compute
//! outcome, row count), and the engine consults the memo to
//!
//! * override compute-cost estimates with observed per-signature history
//!   when they diverge (the adaptive re-plan, see
//!   [`crate::compiler::adapt_plan_with_memo`]),
//! * bias the online materialization rule by observed reuse frequency
//!   ([`MemoEntry::expected_reuse`]), and
//! * derive per-node partition thresholds from observed per-row cost
//!   ([`MemoEntry::observed_per_row_secs`]).
//!
//! [`solve_offline`] is the paper's offline Optimal-materialization
//! formulation solved over the accumulated history: the memo's signature
//! DAG is fed through the same Project-Selection/min-cut reduction the
//! recomputation optimizer uses (`helix-mincut`), candidate
//! materialization sets are costed exactly, and the best set — never
//! worse than the online rule's — is returned for the engine to pin.
//! The memo itself persists through the durable tier beside the engine
//! meta (see `crate::persist`), so a restarted engine plans from history,
//! not from zero.

use crate::cost::{secs_to_us, CostModel};
use crate::materialize::{offline_optimal, OfflineCandidate};
use crate::signature::Signature;
use helix_dataflow::fx::{FxHashMap, FxHashSet};
use helix_mincut::{Project, ProjectSelection};
use std::collections::VecDeque;

/// Observations kept per signature: a small sliding window so the memo
/// tracks *recent* behaviour (data grows, machines change) without
/// unbounded growth.
pub const MEMO_WINDOW: usize = 8;

/// Compute estimate for memo entries that were only ever loaded (no
/// compute sample survives in the window); mirrors the compiler's
/// default for never-observed operators.
const FALLBACK_COMPUTE_SECS: f64 = 0.05;

/// Bounds on [`MemoEntry::expected_reuse`]: even a signature seen dozens
/// of times must not make the materialization rule unconditional, and a
/// single sighting must not disable it below the paper's baseline.
const MIN_EXPECTED_REUSE: f64 = 0.5;
const MAX_EXPECTED_REUSE: f64 = 4.0;

/// Where a node's planning cost came from in the executed plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionSource {
    /// The name-keyed EMA estimate (or the cold-start default).
    #[default]
    Estimate,
    /// A memo-backed per-signature runtime observation (the adaptive
    /// re-plan replaced the estimate).
    Observed,
}

impl std::fmt::Display for DecisionSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecisionSource::Estimate => write!(f, "estimate"),
            DecisionSource::Observed => write!(f, "observed"),
        }
    }
}

/// One recorded execution of a signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Wall-clock seconds the node took (compute or load).
    pub exec_secs: f64,
    /// Output size in bytes (encoded size for loads, estimated in-memory
    /// size for computes; 0 when unknown).
    pub output_bytes: u64,
    /// Whether the node was served from the store.
    pub loaded: bool,
    /// Rows in the node's data output (0 for models and unknown shapes).
    pub rows: u64,
    /// Logical run counter at record time (see [`MemoTable::begin_run`]);
    /// the age signal behind observation decay.
    pub run: u64,
}

/// Weight applied to observations older than the decay horizon
/// (`HELIX_MEMO_DECAY_RUNS`): stale samples still vote — a signature not
/// seen recently has nothing newer — but four fresh samples outweigh the
/// entire stale tail.
const STALE_OBSERVATION_WEIGHT: f64 = 0.25;

/// Accumulated runtime history for one signature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoEntry {
    /// Node name at last sighting (names are advisory — the signature is
    /// the identity; kept for reports and the offline pass).
    pub name: String,
    /// Signatures of the node's parents at last sighting — the edges of
    /// the memo's own DAG, which the offline pass plans over.
    pub parents: Vec<Signature>,
    /// Sliding window of the last [`MEMO_WINDOW`] executions.
    pub observations: VecDeque<Observation>,
    /// Lifetime count of executions served by a load (reuse events).
    pub reuse_hits: u64,
    /// Lifetime count of executions (loads + computes).
    pub runs: u64,
}

impl MemoEntry {
    /// Mean observed compute seconds over the window, if any execution
    /// actually computed (loads carry no compute signal).
    pub fn observed_compute_secs(&self) -> Option<f64> {
        let samples: Vec<f64> = self
            .observations
            .iter()
            .filter(|o| !o.loaded)
            .map(|o| o.exec_secs)
            .collect();
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }

    /// [`MemoEntry::observed_compute_secs`] with recency weighting: a
    /// sample whose logical run is at least `decay_runs` behind
    /// `current_run` contributes with weight
    /// `STALE_OBSERVATION_WEIGHT` (0.25) instead of 1. This is the fix for the
    /// "memo observations never decay" problem: after the data grows or
    /// the machine changes, fresh timings take over the aggregate within
    /// a couple of runs instead of being averaged down by the whole
    /// window.
    pub fn observed_compute_secs_decayed(&self, current_run: u64, decay_runs: u64) -> Option<f64> {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for o in self.observations.iter().filter(|o| !o.loaded) {
            let weight = if current_run.saturating_sub(o.run) >= decay_runs.max(1) {
                STALE_OBSERVATION_WEIGHT
            } else {
                1.0
            };
            weighted += weight * o.exec_secs;
            total += weight;
        }
        (total > 0.0).then(|| weighted / total)
    }

    /// Most recent non-zero output size, if known.
    pub fn observed_bytes(&self) -> Option<u64> {
        self.observations
            .iter()
            .rev()
            .map(|o| o.output_bytes)
            .find(|&b| b > 0)
    }

    /// Mean observed per-row compute cost, when the node computed over a
    /// known row count — the signal partition sizing is derived from.
    pub fn observed_per_row_secs(&self) -> Option<f64> {
        let samples: Vec<f64> = self
            .observations
            .iter()
            .filter(|o| !o.loaded && o.rows > 0)
            .map(|o| o.exec_secs / o.rows as f64)
            .collect();
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }

    /// Expected number of *future* accesses of this signature, estimated
    /// from its lifetime access count and clamped to keep one noisy
    /// signature from dominating the materialization rule. `1.0` — the
    /// paper's single-future-load assumption — when nothing is known.
    pub fn expected_reuse(&self) -> f64 {
        if self.runs == 0 {
            return 1.0;
        }
        (self.runs as f64).clamp(MIN_EXPECTED_REUSE, MAX_EXPECTED_REUSE)
    }
}

/// The persistent memo table: per-signature runtime history plus the
/// lifetime observation counter surfaced in `GET /stats`.
#[derive(Debug, Clone, Default)]
pub struct MemoTable {
    entries: FxHashMap<u64, MemoEntry>,
    observations_recorded: u64,
    current_run: u64,
}

impl MemoTable {
    /// An empty memo.
    pub fn new() -> MemoTable {
        MemoTable::default()
    }

    /// Number of signatures with history.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo holds no history at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime count of observations recorded (not capped by the
    /// per-entry window).
    pub fn observations_recorded(&self) -> u64 {
        self.observations_recorded
    }

    /// History for one signature.
    pub fn get(&self, sig: Signature) -> Option<&MemoEntry> {
        self.entries.get(&sig.0)
    }

    /// The logical run counter: how many engine runs have merged their
    /// observations into this memo.
    pub fn current_run(&self) -> u64 {
        self.current_run
    }

    /// Advances the logical run counter. The engine calls this once per
    /// iteration before merging that run's observations, so every
    /// observation carries the run it was measured in and
    /// [`MemoTable::observed_compute_secs`] can age it out.
    pub fn begin_run(&mut self) {
        self.current_run += 1;
    }

    /// Decay-aware observed compute seconds for a signature: recent
    /// window samples at full weight, samples older than
    /// `HELIX_MEMO_DECAY_RUNS` logical runs down-weighted (see
    /// [`MemoEntry::observed_compute_secs_decayed`]).
    pub fn observed_compute_secs(&self, sig: Signature) -> Option<f64> {
        self.get(sig)?
            .observed_compute_secs_decayed(self.current_run, crate::config_env::memo_decay_runs())
    }

    /// Records one execution of `sig`, evicting the oldest window slot
    /// when full.
    pub fn record(
        &mut self,
        sig: Signature,
        name: &str,
        parents: &[Signature],
        observation: Observation,
    ) {
        let entry = self.entries.entry(sig.0).or_default();
        entry.name = name.to_string();
        entry.parents = parents.to_vec();
        if entry.observations.len() >= MEMO_WINDOW {
            entry.observations.pop_front();
        }
        entry.observations.push_back(Observation {
            run: self.current_run,
            ..observation
        });
        entry.runs += 1;
        if observation.loaded {
            entry.reuse_hits += 1;
        }
        self.observations_recorded += 1;
    }

    /// Every `(signature, entry)` pair, in unspecified order (persistence
    /// sorts by signature for stable files).
    pub fn entries(&self) -> impl Iterator<Item = (Signature, &MemoEntry)> {
        self.entries.iter().map(|(&sig, e)| (Signature(sig), e))
    }

    /// Rebuilds a memo from persisted parts (the inverse of
    /// [`MemoTable::entries`] + [`MemoTable::observations_recorded`]).
    pub fn from_parts(
        entries: impl IntoIterator<Item = (Signature, MemoEntry)>,
        observations_recorded: u64,
        current_run: u64,
    ) -> MemoTable {
        MemoTable {
            entries: entries.into_iter().map(|(sig, e)| (sig.0, e)).collect(),
            observations_recorded,
            current_run,
        }
    }
}

/// What the offline Optimal pass decided over the accumulated history.
#[derive(Debug, Clone, Default)]
pub struct OfflineOutcome {
    /// The chosen materialization set (signatures to pin).
    pub chosen: Vec<Signature>,
    /// Expected next-access cost of the chosen set over the memo DAG
    /// (execution via min-cut plus one write per chosen entry), seconds.
    pub chosen_cost_secs: f64,
    /// The same cost measure for the set the paper's *online* rule would
    /// have materialized — by construction `chosen_cost_secs` never
    /// exceeds this.
    pub online_cost_secs: f64,
    /// Signatures that were eligible (have compute and size history).
    pub candidates: usize,
}

/// Internal per-candidate costing extracted from a memo entry.
struct Costed {
    sig: Signature,
    compute_secs: f64,
    load_secs: f64,
    size_bytes: u64,
    ancestors_compute_secs: f64,
    expected_reuse: f64,
    parents: Vec<usize>,
    is_sink: bool,
}

/// The paper's offline Optimal-materialization pass over the memo's
/// signature DAG.
///
/// Candidate sets — the exact knapsack over expected benefits
/// ([`offline_optimal`]), a simulation of the online rule, materialize-
/// everything-that-fits, and the empty set — are each costed exactly by
/// running the Project-Selection/min-cut reduction over the memo DAG
/// with loads available for exactly that set (plus one write per
/// member), and the cheapest wins. Including the online rule's own set
/// among the candidates guarantees the returned plan's total cost never
/// exceeds the online heuristic's on the same history.
pub fn solve_offline(memo: &MemoTable, cost: &CostModel, budget_bytes: u64) -> OfflineOutcome {
    // Stable order: sort by signature so the pass is deterministic.
    let mut sigs: Vec<Signature> = memo.entries().map(|(sig, _)| sig).collect();
    sigs.sort_unstable_by_key(|s| s.0);
    let index: FxHashMap<u64, usize> = sigs.iter().enumerate().map(|(i, s)| (s.0, i)).collect();

    // Build the memo DAG (edges restricted to signatures the memo knows)
    // and per-node costs from observed history, falling back to the cost
    // model where the window holds no compute sample.
    let mut has_child = vec![false; sigs.len()];
    let mut nodes: Vec<Costed> = sigs
        .iter()
        .map(|&sig| {
            let entry = memo.get(sig).expect("signature from iteration");
            let compute_secs = memo
                .observed_compute_secs(sig)
                .or_else(|| cost.compute_estimate_secs(&entry.name))
                .unwrap_or(FALLBACK_COMPUTE_SECS);
            let size_bytes = entry.observed_bytes().unwrap_or(0);
            let parents: Vec<usize> = entry
                .parents
                .iter()
                .filter_map(|p| index.get(&p.0).copied())
                .collect();
            Costed {
                sig,
                compute_secs,
                load_secs: cost.load_estimate_secs(size_bytes),
                size_bytes,
                ancestors_compute_secs: 0.0,
                expected_reuse: entry.expected_reuse(),
                parents,
                is_sink: true,
            }
        })
        .collect();
    for node in &nodes {
        for &p in &node.parents {
            has_child[p] = true;
        }
    }
    for (node, sink) in nodes.iter_mut().zip(&has_child) {
        node.is_sink = !sink;
    }
    // Ancestor compute sums over the memo DAG. Signatures sort children
    // after parents *only* by accident, so do a fixpoint-free memoized
    // DFS instead: the DAG is small (it holds executed signatures).
    let order = topo_order(&nodes);
    for &i in &order {
        let sum: f64 = nodes[i]
            .parents
            .iter()
            .map(|&p| nodes[p].compute_secs + nodes[p].ancestors_compute_secs)
            .sum();
        nodes[i].ancestors_compute_secs = sum;
    }

    // Eligible candidates: a known size that fits the budget at all.
    let candidate_ids: Vec<usize> = (0..nodes.len())
        .filter(|&i| nodes[i].size_bytes > 0 && nodes[i].size_bytes <= budget_bytes)
        .collect();

    // Knapsack set: expected benefit = expected future accesses × (saved
    // recompute − load), weight = observed size. The exact solver takes
    // at most 64 items; keep the highest-benefit ones when over.
    let mut ranked = candidate_ids.clone();
    ranked.sort_by(|&a, &b| {
        let benefit = |i: usize| {
            let n = &nodes[i];
            n.expected_reuse * (n.compute_secs + n.ancestors_compute_secs - n.load_secs)
        };
        benefit(b)
            .partial_cmp(&benefit(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ranked.truncate(64);
    let knapsack_items: Vec<OfflineCandidate> = ranked
        .iter()
        .map(|&i| {
            let n = &nodes[i];
            OfflineCandidate {
                benefit_secs: n.expected_reuse
                    * (n.compute_secs + n.ancestors_compute_secs - n.load_secs),
                size_bytes: n.size_bytes,
            }
        })
        .collect();
    let knapsack_set: Vec<usize> = offline_optimal(&knapsack_items, budget_bytes)
        .into_iter()
        .map(|k| ranked[k])
        .collect();

    // The online rule's set, simulated over the same history: materialize
    // when `2·l < c + Σ ancestors` and the running total fits the budget,
    // in deterministic (signature) order.
    let mut online_set = Vec::new();
    let mut online_used = 0u64;
    for &i in &candidate_ids {
        let n = &nodes[i];
        if 2.0 * n.load_secs < n.compute_secs + n.ancestors_compute_secs
            && online_used + n.size_bytes <= budget_bytes
        {
            online_set.push(i);
            online_used += n.size_bytes;
        }
    }

    // Everything that fits, greedily by benefit density.
    let mut all_fits = Vec::new();
    let mut fits_used = 0u64;
    for &i in &ranked {
        if fits_used + nodes[i].size_bytes <= budget_bytes {
            all_fits.push(i);
            fits_used += nodes[i].size_bytes;
        }
    }

    let online_cost = evaluate_set(&nodes, &online_set);
    let empty_set = Vec::new();
    let mut best_set: &[usize] = &online_set;
    let mut best_cost = online_cost;
    for set in [&knapsack_set, &all_fits, &empty_set] {
        let c = evaluate_set(&nodes, set);
        if c < best_cost {
            best_cost = c;
            best_set = set;
        }
    }

    OfflineOutcome {
        chosen: best_set.iter().map(|&i| nodes[i].sig).collect(),
        chosen_cost_secs: best_cost,
        online_cost_secs: online_cost,
        candidates: candidate_ids.len(),
    }
}

/// Topological order of the memo DAG (parents before children). Cycles
/// cannot occur — signatures hash the ancestry — but a defensive visit
/// guard keeps a corrupt memo from hanging the pass.
fn topo_order(nodes: &[Costed]) -> Vec<usize> {
    let mut order = Vec::with_capacity(nodes.len());
    let mut state = vec![0u8; nodes.len()]; // 0 unvisited, 1 open, 2 done
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..nodes.len() {
        if state[root] != 0 {
            continue;
        }
        stack.push((root, 0));
        state[root] = 1;
        while let Some(&mut (i, ref mut next)) = stack.last_mut() {
            if *next < nodes[i].parents.len() {
                let p = nodes[i].parents[*next];
                *next += 1;
                if state[p] == 0 {
                    state[p] = 1;
                    stack.push((p, 0));
                }
            } else {
                state[i] = 2;
                order.push(i);
                stack.pop();
            }
        }
    }
    order
}

/// Exact expected next-access cost of a materialization set `set` over
/// the memo DAG: the min-cut optimal execution cost with loads available
/// for exactly `set`, plus one write per member (the symmetric write
/// model the online rule's `2·l` term assumes).
fn evaluate_set(nodes: &[Costed], set: &[usize]) -> f64 {
    let available: FxHashSet<usize> = set.iter().copied().collect();
    let mut psp = ProjectSelection::new();
    const INF_US: i64 = crate::recompute::LOAD_INFEASIBLE_US as i64;
    // Same reduction as the recomputation optimizer: a_i (make available,
    // profit −l) and b_i (compute, profit l − c, requires a_i and the
    // parents' a). Sinks of the memo DAG are the mandatory outputs.
    for (i, n) in nodes.iter().enumerate() {
        let l = if available.contains(&i) {
            (secs_to_us(n.load_secs) as i64).min(INF_US - 1)
        } else {
            INF_US
        };
        let c = secs_to_us(n.compute_secs) as i64;
        let a = if n.is_sink {
            Project::mandatory(-l)
        } else {
            Project::new(-l)
        };
        psp.add_project(a);
        psp.add_project(Project::new(l - c));
    }
    for (i, n) in nodes.iter().enumerate() {
        psp.require(2 * i + 1, 2 * i);
        for &p in &n.parents {
            psp.require(2 * i + 1, 2 * p);
        }
    }
    let solution = psp.solve();
    let mut exec_us = 0u64;
    for (i, n) in nodes.iter().enumerate() {
        if solution.selected[2 * i + 1] {
            exec_us += secs_to_us(n.compute_secs);
        } else if solution.selected[2 * i] {
            exec_us += secs_to_us(n.load_secs);
        }
    }
    let write_secs: f64 = set.iter().map(|&i| nodes[i].load_secs).sum();
    exec_us as f64 / 1e6 + write_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(secs: f64, bytes: u64, loaded: bool, rows: u64) -> Observation {
        Observation {
            exec_secs: secs,
            output_bytes: bytes,
            loaded,
            rows,
            run: 0,
        }
    }

    #[test]
    fn record_keeps_a_sliding_window() {
        let mut memo = MemoTable::new();
        for i in 0..(MEMO_WINDOW + 3) {
            memo.record(Signature(1), "n", &[], obs(i as f64, 10, false, 5));
        }
        let entry = memo.get(Signature(1)).unwrap();
        assert_eq!(entry.observations.len(), MEMO_WINDOW);
        assert_eq!(entry.runs, (MEMO_WINDOW + 3) as u64);
        assert_eq!(memo.observations_recorded(), (MEMO_WINDOW + 3) as u64);
        // Oldest slots evicted: the first surviving sample is run 3.
        assert_eq!(entry.observations.front().unwrap().exec_secs, 3.0);
    }

    #[test]
    fn observed_stats_split_loads_from_computes() {
        let mut memo = MemoTable::new();
        memo.record(Signature(7), "n", &[], obs(2.0, 100, false, 10));
        memo.record(Signature(7), "n", &[], obs(4.0, 120, false, 10));
        memo.record(Signature(7), "n", &[], obs(0.1, 50, true, 0));
        let e = memo.get(Signature(7)).unwrap();
        assert_eq!(e.observed_compute_secs(), Some(3.0));
        assert_eq!(e.observed_bytes(), Some(50));
        assert!((e.observed_per_row_secs().unwrap() - 0.3).abs() < 1e-12);
        assert_eq!(e.reuse_hits, 1);
        assert_eq!(e.runs, 3);
    }

    #[test]
    fn expected_reuse_clamps_and_defaults() {
        let entry = MemoEntry::default();
        assert_eq!(entry.expected_reuse(), 1.0);
        let mut memo = MemoTable::new();
        for _ in 0..20 {
            memo.record(Signature(1), "n", &[], obs(1.0, 1, true, 0));
        }
        assert_eq!(memo.get(Signature(1)).unwrap().expected_reuse(), 4.0);
        memo.record(Signature(2), "m", &[], obs(1.0, 1, false, 0));
        assert_eq!(memo.get(Signature(2)).unwrap().expected_reuse(), 1.0);
    }

    #[test]
    fn from_parts_roundtrips() {
        let mut memo = MemoTable::new();
        memo.record(Signature(1), "a", &[Signature(2)], obs(1.0, 10, false, 3));
        memo.record(Signature(2), "b", &[], obs(0.5, 20, false, 3));
        let back = MemoTable::from_parts(
            memo.entries().map(|(s, e)| (s, e.clone())),
            memo.observations_recorded(),
            memo.current_run(),
        );
        assert_eq!(back.len(), 2);
        assert_eq!(back.observations_recorded(), 2);
        assert_eq!(back.current_run(), memo.current_run());
        assert_eq!(back.get(Signature(1)), memo.get(Signature(1)));
    }

    #[test]
    fn stale_observations_decay() {
        let mut memo = MemoTable::new();
        // Two slow samples in run 1.
        memo.begin_run();
        memo.record(Signature(1), "n", &[], obs(10.0, 1, false, 0));
        memo.record(Signature(1), "n", &[], obs(10.0, 1, false, 0));
        // Far later, two fast samples.
        for _ in 0..50 {
            memo.begin_run();
        }
        memo.record(Signature(1), "n", &[], obs(1.0, 1, false, 0));
        memo.record(Signature(1), "n", &[], obs(1.0, 1, false, 0));

        let entry = memo.get(Signature(1)).unwrap();
        // Unweighted mean sits at 5.5; the decayed aggregate must land
        // much closer to the fresh 1 s samples.
        assert_eq!(entry.observed_compute_secs(), Some(5.5));
        let decayed = memo.observed_compute_secs(Signature(1)).unwrap();
        assert!((decayed - 2.8).abs() < 1e-9, "got {decayed}");
        // Entries observed only recently are unaffected by decay.
        memo.record(Signature(2), "m", &[], obs(3.0, 1, false, 0));
        assert_eq!(memo.observed_compute_secs(Signature(2)), Some(3.0));
    }

    /// A chain a → b → c where c is expensive through its ancestors and
    /// small on disk: the offline pass must materialize it and beat (or
    /// match) the online rule.
    fn chain_memo() -> MemoTable {
        let mut memo = MemoTable::new();
        let (a, b, c) = (Signature(10), Signature(11), Signature(12));
        for _ in 0..3 {
            memo.record(a, "a", &[], obs(1.0, 4096, false, 0));
            memo.record(b, "b", &[a], obs(1.0, 4096, false, 0));
            memo.record(c, "c", &[b], obs(1.0, 4096, false, 0));
        }
        memo
    }

    #[test]
    fn offline_never_beats_nothing_but_never_loses_to_online() {
        let memo = chain_memo();
        let cost = CostModel::new();
        let outcome = solve_offline(&memo, &cost, 1 << 20);
        assert_eq!(outcome.candidates, 3);
        assert!(
            outcome.chosen_cost_secs <= outcome.online_cost_secs,
            "offline {} must be ≤ online {}",
            outcome.chosen_cost_secs,
            outcome.online_cost_secs
        );
        // Loading the 4 KiB tail is far cheaper than 3 s of recompute.
        assert!(
            outcome.chosen.contains(&Signature(12)),
            "the chain tail is the obvious pin: {:?}",
            outcome.chosen
        );
    }

    #[test]
    fn offline_respects_a_zero_budget() {
        let memo = chain_memo();
        let outcome = solve_offline(&memo, &CostModel::new(), 0);
        assert!(outcome.chosen.is_empty());
        assert_eq!(outcome.chosen_cost_secs, outcome.online_cost_secs);
    }

    #[test]
    fn offline_on_empty_memo_is_empty() {
        let outcome = solve_offline(&MemoTable::new(), &CostModel::new(), 1 << 20);
        assert!(outcome.chosen.is_empty());
        assert_eq!(outcome.candidates, 0);
    }

    #[test]
    fn decision_source_renders_for_the_wire() {
        assert_eq!(DecisionSource::Estimate.to_string(), "estimate");
        assert_eq!(DecisionSource::Observed.to_string(), "observed");
    }
}
