//! Error type for Helix core.

use std::fmt;

/// Errors raised while compiling or executing workflows.
#[derive(Debug)]
pub enum HelixError {
    /// Workflow construction error (duplicate names, bad wiring).
    Workflow(String),
    /// Compilation error (cycles, missing nodes, invalid plans).
    Compile(String),
    /// Execution error from an operator.
    Exec(String),
    /// Intermediate store failure.
    Store(String),
    /// Substrate error.
    Dataflow(helix_dataflow::DataflowError),
    /// ML substrate error.
    Ml(helix_ml::MlError),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for HelixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HelixError::Workflow(msg) => write!(f, "workflow error: {msg}"),
            HelixError::Compile(msg) => write!(f, "compile error: {msg}"),
            HelixError::Exec(msg) => write!(f, "execution error: {msg}"),
            HelixError::Store(msg) => write!(f, "store error: {msg}"),
            HelixError::Dataflow(err) => write!(f, "dataflow error: {err}"),
            HelixError::Ml(err) => write!(f, "ml error: {err}"),
            HelixError::Io(err) => write!(f, "io error: {err}"),
        }
    }
}

impl std::error::Error for HelixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HelixError::Dataflow(err) => Some(err),
            HelixError::Ml(err) => Some(err),
            HelixError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<helix_dataflow::DataflowError> for HelixError {
    fn from(err: helix_dataflow::DataflowError) -> Self {
        HelixError::Dataflow(err)
    }
}

impl From<helix_ml::MlError> for HelixError {
    fn from(err: helix_ml::MlError) -> Self {
        HelixError::Ml(err)
    }
}

impl From<std::io::Error> for HelixError {
    fn from(err: std::io::Error) -> Self {
        HelixError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = HelixError::Compile("cycle detected".into());
        assert!(err.to_string().contains("cycle"));
        assert!(std::error::Error::source(&err).is_none());
        let err: HelixError = std::io::Error::other("disk on fire").into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
