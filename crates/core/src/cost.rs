//! The cost model: per-operator compute costs and a disk I/O model.
//!
//! Helix's optimizers need `c_i` (compute cost) and `l_i` (load cost) per
//! node. Both come from "runtime statistics from the current and prior
//! executions" (paper §2.3): compute costs are exponential moving averages
//! of observed wall times keyed by node *name* (so a re-parameterized
//! operator inherits its old estimate — the best prior available), and
//! load costs follow a latency + size/bandwidth disk model recalibrated
//! from every real store read/write.

use helix_dataflow::fx::FxHashMap;

/// Smoothing factor for cost EMAs: new observations dominate (workloads
/// shift as users edit workflows) while damping scheduler noise.
const EMA_ALPHA: f64 = 0.6;

/// Default disk throughput before any observation (NVMe-class; the first
/// real store read/write recalibrates it immediately).
const DEFAULT_BYTES_PER_SEC: f64 = 2.0 * 1024.0 * 1024.0 * 1024.0;
/// Default fixed per-file I/O latency. Must stay well under typical
/// operator compute times even on small inputs, or the optimizer would
/// conclude that nothing is ever worth materializing at test scale.
const DEFAULT_IO_LATENCY_SEC: f64 = 0.000_02;

/// Transfers smaller than this are latency-dominated: they calibrate the
/// latency term of the I/O model, never the bandwidth term.
const MIN_BANDWIDTH_CALIBRATION_BYTES: u64 = 64 * 1024;

/// Smoothing factor for the latency EMA. Much smaller than [`EMA_ALPHA`]:
/// I/O latency is a property of the machine, not of the workload, so one
/// contended write must not be able to swing load estimates for the next
/// several planning decisions.
const LATENCY_EMA_ALPHA: f64 = 0.2;

/// Cap on a single latency sample fed to the EMA: lets genuinely slow
/// storage converge upward over many observations while bounding how hard
/// one scheduler hiccup can push.
const MAX_LATENCY_SAMPLE_SEC: f64 = 0.01;

/// Mutable cost statistics carried across iterations.
#[derive(Debug, Clone)]
pub struct CostModel {
    compute_secs: FxHashMap<String, f64>,
    bytes_per_sec: f64,
    io_latency_sec: f64,
    /// EMA of (encoded bytes / estimated in-memory bytes): the dictionary
    /// codec typically shrinks feature-heavy collections 5–20×, and load
    /// estimates must reflect on-disk, not in-memory, size.
    encode_ratio: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            compute_secs: FxHashMap::default(),
            bytes_per_sec: DEFAULT_BYTES_PER_SEC,
            io_latency_sec: DEFAULT_IO_LATENCY_SEC,
            encode_ratio: 1.0,
        }
    }
}

impl CostModel {
    /// Fresh model with default disk parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observed compute duration for a node name.
    pub fn observe_compute(&mut self, name: &str, secs: f64) {
        let entry = self.compute_secs.entry(name.to_string());
        match entry {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let old = *e.get();
                e.insert(EMA_ALPHA * secs + (1.0 - EMA_ALPHA) * old);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(secs);
            }
        }
    }

    /// Records an observed I/O transfer (`bytes` in `secs` seconds).
    ///
    /// Transfers below `MIN_BANDWIDTH_CALIBRATION_BYTES` (64 KiB) are
    /// latency-dominated and carry no bandwidth signal — treating a
    /// 200-byte metadata write as a "bytes/secs" sample would collapse the
    /// bandwidth estimate by orders of magnitude, which in turn inflates
    /// every load estimate until the optimizer stops trusting the store.
    /// Small transfers recalibrate the fixed-latency term instead; large
    /// ones recalibrate bandwidth.
    pub fn observe_io(&mut self, bytes: u64, secs: f64) {
        if bytes < MIN_BANDWIDTH_CALIBRATION_BYTES {
            let transfer = bytes as f64 / self.bytes_per_sec;
            let observed_latency = secs - transfer;
            if observed_latency.is_finite() && observed_latency >= 0.0 {
                let sample = observed_latency.min(MAX_LATENCY_SAMPLE_SEC);
                self.io_latency_sec =
                    LATENCY_EMA_ALPHA * sample + (1.0 - LATENCY_EMA_ALPHA) * self.io_latency_sec;
            }
            return;
        }
        // A transfer finishing within the current latency estimate carries
        // no bandwidth signal either (clamping its effective time would
        // fabricate an absurdly high sample); only slower-than-latency
        // transfers recalibrate bandwidth.
        if secs <= self.io_latency_sec {
            return;
        }
        let observed = bytes as f64 / (secs - self.io_latency_sec);
        if observed.is_finite() && observed > 1024.0 {
            self.bytes_per_sec = EMA_ALPHA * observed + (1.0 - EMA_ALPHA) * self.bytes_per_sec;
        }
    }

    /// Records an observed encode ratio (on-disk bytes over the in-memory
    /// estimate the engine had before encoding).
    pub fn observe_encode(&mut self, estimated_bytes: u64, actual_bytes: u64) {
        if estimated_bytes == 0 {
            return;
        }
        let ratio = actual_bytes as f64 / estimated_bytes as f64;
        if ratio.is_finite() && ratio > 0.0 {
            self.encode_ratio = EMA_ALPHA * ratio + (1.0 - EMA_ALPHA) * self.encode_ratio;
        }
    }

    /// Corrects an in-memory size estimate to expected on-disk bytes.
    pub fn expected_encoded_bytes(&self, estimated_bytes: u64) -> u64 {
        (estimated_bytes as f64 * self.encode_ratio).round() as u64
    }

    /// Estimated compute cost for a node name, if previously observed.
    pub fn compute_estimate_secs(&self, name: &str) -> Option<f64> {
        self.compute_secs.get(name).copied()
    }

    /// Estimated cost to load `bytes` from the store.
    pub fn load_estimate_secs(&self, bytes: u64) -> f64 {
        self.io_latency_sec + bytes as f64 / self.bytes_per_sec
    }

    /// Estimated cost to write `bytes` to the store (symmetric model).
    pub fn write_estimate_secs(&self, bytes: u64) -> f64 {
        self.load_estimate_secs(bytes)
    }

    /// Current bandwidth estimate (bytes/sec), exposed for reports.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Number of node names with compute observations.
    pub fn observed_nodes(&self) -> usize {
        self.compute_secs.len()
    }

    /// Every `(node name, EMA seconds)` compute observation — the state
    /// the durable tier persists so cost history accumulates across
    /// restarts (see `crate::persist`).
    pub fn compute_observations(&self) -> impl Iterator<Item = (&str, f64)> {
        self.compute_secs.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Current fixed-latency estimate (seconds), exposed for persistence.
    pub fn io_latency_sec(&self) -> f64 {
        self.io_latency_sec
    }

    /// Current encode-ratio estimate, exposed for persistence.
    pub fn encode_ratio(&self) -> f64 {
        self.encode_ratio
    }

    /// Rebuilds a model from persisted state (the inverse of the
    /// accessors above). Non-finite or non-positive disk parameters fall
    /// back to the defaults so a corrupt state file cannot wedge the
    /// optimizer.
    pub fn from_parts(
        observations: impl IntoIterator<Item = (String, f64)>,
        bytes_per_sec: f64,
        io_latency_sec: f64,
        encode_ratio: f64,
    ) -> CostModel {
        let mut model = CostModel::new();
        if bytes_per_sec.is_finite() && bytes_per_sec > 0.0 {
            model.bytes_per_sec = bytes_per_sec;
        }
        if io_latency_sec.is_finite() && io_latency_sec >= 0.0 {
            model.io_latency_sec = io_latency_sec;
        }
        if encode_ratio.is_finite() && encode_ratio > 0.0 {
            model.encode_ratio = encode_ratio;
        }
        for (name, secs) in observations {
            if secs.is_finite() && secs >= 0.0 {
                model.compute_secs.insert(name, secs);
            }
        }
        model
    }
}

/// Converts seconds to the microsecond integers used by the PSP reduction.
/// Clamps to at least 1µs so that zero-cost nodes still order correctly.
pub fn secs_to_us(secs: f64) -> u64 {
    let us = (secs * 1e6).round();
    if us < 1.0 {
        1
    } else if us > crate::recompute::LOAD_INFEASIBLE_US as f64 / 2.0 {
        crate::recompute::LOAD_INFEASIBLE_US / 2
    } else {
        us as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_taken_verbatim() {
        let mut cm = CostModel::new();
        cm.observe_compute("scan", 2.0);
        assert_eq!(cm.compute_estimate_secs("scan"), Some(2.0));
        assert_eq!(cm.compute_estimate_secs("other"), None);
    }

    #[test]
    fn ema_tracks_recent_observations() {
        let mut cm = CostModel::new();
        cm.observe_compute("scan", 1.0);
        cm.observe_compute("scan", 3.0);
        let est = cm.compute_estimate_secs("scan").unwrap();
        assert!(est > 1.0 && est < 3.0);
        assert!((est - 2.2).abs() < 1e-9, "0.6*3 + 0.4*1 = 2.2, got {est}");
    }

    #[test]
    fn load_estimate_scales_with_size() {
        let cm = CostModel::new();
        let small = cm.load_estimate_secs(1024);
        let big = cm.load_estimate_secs(1024 * 1024 * 1024);
        assert!(big > small * 10.0);
        assert!(small >= DEFAULT_IO_LATENCY_SEC);
    }

    #[test]
    fn io_observation_moves_bandwidth() {
        let mut cm = CostModel::new();
        let before = cm.bytes_per_sec();
        // 16 GiB in one second: much faster than the default.
        cm.observe_io(1 << 34, 1.0);
        assert!(cm.bytes_per_sec() > before);
    }

    #[test]
    fn small_transfers_calibrate_latency_not_bandwidth() {
        let mut cm = CostModel::new();
        let bandwidth = cm.bytes_per_sec();
        // 200 bytes in 1 ms: pure latency, no bandwidth information.
        cm.observe_io(200, 0.001);
        assert_eq!(cm.bytes_per_sec(), bandwidth, "bandwidth must not collapse");
        let latency = cm.load_estimate_secs(0);
        assert!(
            latency > DEFAULT_IO_LATENCY_SEC && latency < 0.01,
            "latency should calibrate toward the observation, got {latency}"
        );
    }

    #[test]
    fn faster_than_latency_transfers_carry_no_bandwidth_signal() {
        let mut cm = CostModel::new();
        // Converge the latency estimate toward 5 ms (slow storage).
        for _ in 0..20 {
            cm.observe_io(200, 0.005);
        }
        let bandwidth = cm.bytes_per_sec();
        // A 64 KiB read served from page cache "faster than latency" must
        // not explode the bandwidth EMA via a clamped divisor.
        cm.observe_io(64 * 1024, 1e-5);
        assert_eq!(cm.bytes_per_sec(), bandwidth);
    }

    #[test]
    fn absurd_io_observations_rejected() {
        let mut cm = CostModel::new();
        let before = cm.bytes_per_sec();
        cm.observe_io(0, 10.0);
        assert_eq!(cm.bytes_per_sec(), before);
    }

    #[test]
    fn secs_to_us_clamps() {
        assert_eq!(secs_to_us(0.0), 1);
        assert_eq!(secs_to_us(1.0), 1_000_000);
        assert!(secs_to_us(1e12) <= crate::recompute::LOAD_INFEASIBLE_US / 2);
    }
}

#[cfg(test)]
mod encode_ratio_tests {
    use super::*;

    #[test]
    fn encode_ratio_calibrates_toward_observations() {
        let mut cm = CostModel::new();
        assert_eq!(cm.expected_encoded_bytes(1000), 1000);
        cm.observe_encode(1000, 100);
        let corrected = cm.expected_encoded_bytes(1000);
        assert!(
            corrected < 600,
            "ratio should shrink estimates, got {corrected}"
        );
        cm.observe_encode(0, 50); // ignored
        cm.observe_encode(1000, u64::MAX); // absurd but finite; still EMA-bounded
        assert!(cm.expected_encoded_bytes(1) >= 1, "ratio stays positive");
    }
}
