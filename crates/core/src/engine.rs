//! The execution engine: runs compiled plans and drives the online
//! materialization optimizer across iterations.
//!
//! # Shared-`&self` execution
//!
//! [`Engine::run`] and [`Engine::run_in`] take `&self`: all cross-run
//! state (the cost model, the global version history, the default
//! [`Lineage`]) lives behind locks, and everything a single run mutates —
//! cost observations, per-node reports, the metric harvest — accumulates
//! in a private per-run context that is merged into the shared state once
//! the run completes. N runs can therefore proceed concurrently over one
//! engine (and its sharded store): cross-run reuse falls out of signature
//! identity, and the store's atomic budget ledger keeps concurrent
//! materializations from jointly overshooting the storage budget. The
//! [`crate::session`] module builds the multi-user API on top of this.

use crate::compiler::CompiledPlan;
use crate::cost::CostModel;
use crate::materialize::{MaterializationContext, MaterializationPolicyKind};
use crate::memo::{MemoTable, Observation, OfflineOutcome};
use crate::ops::{NodeOutput, OperatorKind};
use crate::recompute::RecomputationPolicy;
use crate::report::{IterationReport, NodeReport};
use crate::scheduler;
use crate::signature::{snapshot, ChangeKind, Signature};
use crate::store::{Durability, IntermediateStore, RecoveryInfo, StoreOptions};
use crate::version::VersionStore;
use crate::workflow::Workflow;
use crate::{HelixError, Result};
use helix_dataflow::fx::{FxHashMap, FxHashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Engine configuration: optimization toggles and the storage budget.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Directory for the intermediate store.
    pub store_dir: PathBuf,
    /// Storage budget in bytes (paper §2.3's "maximum storage constraint").
    pub storage_budget_bytes: u64,
    /// Recomputation policy (Helix uses [`RecomputationPolicy::Optimal`]).
    pub recomputation: RecomputationPolicy,
    /// Materialization policy (Helix uses
    /// [`MaterializationPolicyKind::HelixOnline`]).
    pub materialization: MaterializationPolicyKind,
    /// Whether the program slicer prunes operators that do not feed
    /// outputs (off only in the "unoptimized Helix" demo configuration).
    pub enable_slicing: bool,
    /// Worker threads for the ready-queue executor. `1` reproduces the
    /// classic sequential iteration loop; the default is the machine's
    /// available parallelism (overridable via `HELIX_PARALLELISM`).
    /// Results and reports are identical at every setting — see
    /// [`crate::scheduler`].
    pub parallelism: usize,
    /// Shards the intermediate store's entry maps are split across so the
    /// executor's concurrent store traffic does not serialize on one
    /// lock. The default comes from `HELIX_STORE_SHARDS` (falling back to
    /// [`crate::store::DEFAULT_STORE_SHARDS`]); `1` reproduces the
    /// historical single-lock store. Purely a concurrency knob — contents
    /// and budget semantics are identical at every setting.
    pub store_shards: usize,
    /// Rows-per-partition threshold for the scheduler's operator-level
    /// data parallelism: a partitionable node splits into row slices once
    /// its input holds at least twice this many rows. The default comes
    /// from `HELIX_PARTITION_ROWS` (falling back to
    /// [`crate::scheduler::DEFAULT_PARTITION_ROWS`]). Purely a
    /// performance knob — outputs, reports, and errors are identical at
    /// every setting; see `docs/PERFORMANCE.md` for tuning guidance.
    pub partition_rows: usize,
    /// Durability tier for the store and the engine's cross-run state
    /// (cost model, version history, session records). The default comes
    /// from `HELIX_DURABILITY` (falling back to
    /// [`Durability::Volatile`]); under a WAL tier a reopened engine
    /// resumes every session's lineage — see `docs/ARCHITECTURE.md`,
    /// "Durability".
    pub durability: Durability,
    /// Divergence factor for the adaptive re-plan: when a node's
    /// memo-observed compute cost differs from its estimate by at least
    /// this ratio (either direction), the engine re-runs the
    /// recomputation optimizer with observed costs before executing.
    /// Clamped to ≥ 1; exactly `1.0` re-plans whenever any observed
    /// history exists, `f64::INFINITY` disables re-planning. The default
    /// comes from `HELIX_REPLAN_FACTOR` (falling back to 4.0). Purely a
    /// plan-shaping knob — execution results are byte-identical at every
    /// setting; only load/compute/store choices move.
    pub replan_factor: f64,
}

impl EngineConfig {
    /// Full Helix configuration rooted at `store_dir` with a 1 GiB budget.
    pub fn helix(store_dir: impl Into<PathBuf>) -> Self {
        EngineConfig {
            store_dir: store_dir.into(),
            storage_budget_bytes: 1 << 30,
            recomputation: RecomputationPolicy::Optimal,
            materialization: MaterializationPolicyKind::HelixOnline,
            enable_slicing: true,
            parallelism: scheduler::default_parallelism(),
            store_shards: crate::store::default_store_shards(),
            partition_rows: scheduler::default_partition_rows(),
            durability: crate::config_env::durability(),
            replan_factor: crate::config_env::replan_factor(),
        }
    }

    /// The documented environment entry point: a full Helix configuration
    /// rooted at `store_dir` with every runtime knob drawn from the
    /// environment via [`crate::config_env`]. The knobs (one table in
    /// `docs/API.md`):
    ///
    /// | Variable | Field |
    /// |---|---|
    /// | `HELIX_PARALLELISM` | [`EngineConfig::parallelism`] |
    /// | `HELIX_STORE_SHARDS` | [`EngineConfig::store_shards`] |
    /// | `HELIX_PARTITION_ROWS` | [`EngineConfig::partition_rows`] |
    /// | `HELIX_DURABILITY` | [`EngineConfig::durability`] |
    /// | `HELIX_REPLAN_FACTOR` | [`EngineConfig::replan_factor`] |
    /// | `HELIX_WAL_SNAPSHOT_BYTES` | [`EngineConfig::durability`] (WAL compaction threshold) |
    ///
    /// [`EngineConfig::helix`] reads the same knobs; `from_env` is the
    /// spelled-out alias that makes the env dependency explicit at the
    /// call site.
    pub fn from_env(store_dir: impl Into<PathBuf>) -> Self {
        Self::helix(store_dir)
    }

    /// Sets the storage budget.
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.storage_budget_bytes = bytes;
        self
    }

    /// Sets the scheduler thread count (clamped to ≥ 1).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Sets the store shard count (clamped to ≥ 1).
    pub fn with_store_shards(mut self, shards: usize) -> Self {
        self.store_shards = shards.max(1);
        self
    }

    /// Sets the partition threshold (clamped to ≥ 1).
    pub fn with_partition_rows(mut self, rows: usize) -> Self {
        self.partition_rows = rows.max(1);
        self
    }

    /// Sets the durability tier.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Sets the adaptive re-plan divergence factor (clamped to ≥ 1;
    /// `f64::INFINITY` disables re-planning, `1.0` re-plans whenever
    /// observed history exists).
    pub fn with_replan_factor(mut self, factor: f64) -> Self {
        self.replan_factor = if factor.is_nan() {
            f64::INFINITY
        } else {
            factor.max(1.0)
        };
        self
    }
}

/// Per-caller version bookkeeping: the signature snapshot of the last
/// executed workflow version and a 0-based iteration counter.
///
/// A lineage is what makes an iteration sequence *a sequence*: the
/// change tracker diffs each new workflow against `previous` to decide
/// what must recompute. Every [`crate::session::Session`] owns one, so
/// concurrent sessions never see each other's edits as "changes"; the
/// engine keeps a default lineage for callers using [`Engine::run`]
/// directly.
#[derive(Debug, Clone, Default)]
pub struct Lineage {
    previous: Option<FxHashMap<String, (u64, Signature)>>,
    iteration: usize,
}

impl Lineage {
    /// A fresh lineage: no previous version, iteration 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many iterations have executed under this lineage.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Whether at least one iteration has executed.
    pub fn has_history(&self) -> bool {
        self.previous.is_some()
    }

    /// Signatures referenced by the previous iteration, in no particular
    /// order — the set a store retention sweep must keep live for this
    /// lineage's next change-tracker comparison.
    pub fn signatures(&self) -> Vec<Signature> {
        self.previous
            .iter()
            .flat_map(|prev| prev.values().map(|&(_, sig)| sig))
            .collect()
    }

    /// The previous iteration's signature snapshot, for persistence.
    pub(crate) fn previous_map(&self) -> Option<&FxHashMap<String, (u64, Signature)>> {
        self.previous.as_ref()
    }

    /// Rebuilds a lineage from persisted state (the inverse of
    /// [`Lineage::previous_map`] + [`Lineage::iteration`]).
    pub(crate) fn from_parts(
        iteration: usize,
        previous: Option<FxHashMap<String, (u64, Signature)>>,
    ) -> Lineage {
        Lineage {
            previous,
            iteration,
        }
    }
}

/// What [`Engine::new`] recovered from a durable store directory: the
/// store-level WAL replay outcome plus the engine-level state reloaded
/// from the meta file. All zeros for volatile engines and fresh
/// directories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineRecovery {
    /// The store's WAL replay and verification counters.
    pub store: RecoveryInfo,
    /// Versions reloaded into the global history.
    pub recovered_versions: usize,
    /// Cost-model compute observations reloaded.
    pub recovered_cost_observations: usize,
    /// Optimizer-memo signatures reloaded (their history feeds the first
    /// post-restart plan).
    pub recovered_memo_entries: usize,
    /// Whether an engine meta file existed but could not be parsed — the
    /// engine warned and started with fresh cost/version state (the
    /// store's entries still recovered independently).
    pub meta_corrupted: bool,
}

/// Per-run options for [`Engine::run_in`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Session name attributed to the resulting report and version entry
    /// (the multi-tenant history's "who ran this").
    pub session: Option<String>,
    /// Change summary recorded for this version. `None` derives one from
    /// the signature diff; sessions pass their typed edit log here so the
    /// recorded history says what the user *did*, not just what changed.
    pub summary: Option<String>,
}

/// A cost-model observation buffered during a run and replayed into the
/// shared model once the run completes.
#[derive(Debug)]
enum CostEvent {
    Compute { name: String, secs: f64 },
    Io { bytes: u64, secs: f64 },
    Encode { estimated: u64, actual: u64 },
}

/// Everything one run mutates, private to that run. The cost model is a
/// snapshot of the shared model taken at run start: within the run it
/// evolves exactly as the historical `&mut self` engine's did (so
/// materialization decisions are unchanged), and the buffered events are
/// replayed into the shared model under its lock afterwards.
struct RunContext {
    cost: CostModel,
    events: Vec<CostEvent>,
    /// Memo recordings buffered during the run and merged into the
    /// shared memo afterwards: `(signature, name, parent signatures,
    /// observation)` per executed node.
    memo_events: Vec<(Signature, String, Vec<Signature>, Observation)>,
    node_reports: Vec<NodeReport>,
    materialize_secs: f64,
    metrics: Vec<(String, f64)>,
}

impl RunContext {
    fn observe_compute(&mut self, name: &str, secs: f64) {
        self.cost.observe_compute(name, secs);
        self.events.push(CostEvent::Compute {
            name: name.to_string(),
            secs,
        });
    }

    fn observe_io(&mut self, bytes: u64, secs: f64) {
        self.cost.observe_io(bytes, secs);
        self.events.push(CostEvent::Io { bytes, secs });
    }

    fn observe_encode(&mut self, estimated: u64, actual: u64) {
        self.cost.observe_encode(estimated, actual);
        self.events.push(CostEvent::Encode { estimated, actual });
    }
}

use crate::lock;

/// The Helix engine: owns the store, cost model, and version history.
/// Every run method takes `&self`, so one engine (usually behind an
/// `Arc`) serves many concurrent sessions — see the module docs.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    store: IntermediateStore,
    /// Persistent worker pool the scheduler draws helper threads from:
    /// created once with the engine and reused across iterations and
    /// concurrent sessions, so per-run thread construction never lands on
    /// the iteration's critical path. Dropped (and its threads joined)
    /// with the engine.
    pool: std::sync::Arc<crate::pool::WorkerPool>,
    cost_model: Mutex<CostModel>,
    versions: Mutex<VersionStore>,
    /// Version bookkeeping for direct [`Engine::run`] callers. Locked
    /// only briefly to read or publish; [`Engine::run`] serializes on
    /// [`Engine::default_run_gate`] instead, so previews never wait out
    /// a full run.
    default_lineage: Mutex<Lineage>,
    /// Serializes [`Engine::run`] calls (they share one lineage).
    default_run_gate: Mutex<()>,
    /// What this engine recovered at open (all zeros when volatile).
    recovery: EngineRecovery,
    /// Serializes engine-meta snapshot writes so concurrent runs never
    /// interleave two atomic replacements out of order.
    persist_gate: Mutex<()>,
    /// The optimizer memo: per-signature runtime history consulted by
    /// the adaptive re-plan, materialization biasing, partition sizing,
    /// and the offline Optimal pass. Persisted with the engine meta.
    memo: Mutex<MemoTable>,
    /// Signatures pinned by the last offline Optimal pass: they
    /// materialize whenever they fit, regardless of the online rule.
    pinned: Mutex<FxHashSet<u64>>,
    /// Lifetime count of adaptive re-plans (surfaced in `GET /stats`).
    replans_triggered: AtomicU64,
    /// Unix timestamp of the last offline pass (0 = never ran).
    last_offline_unix: AtomicU64,
}

impl Engine {
    /// Opens an engine (and its store) under the configured directory.
    ///
    /// Under a durable [`EngineConfig::durability`] tier this is the
    /// recovery path: the store replays its WAL, and the engine reloads
    /// its cost-model observations and global version history from
    /// `<store_dir>/meta/engine.json`. A corrupt meta file is warned
    /// about and ignored (fresh cost/version state) — open never refuses
    /// to start; see [`Engine::recovery`] for what was reloaded.
    pub fn new(config: EngineConfig) -> Result<Engine> {
        let store = StoreOptions::new(&config.store_dir)
            .budget_bytes(config.storage_budget_bytes)
            .shards(config.store_shards)
            .durability(config.durability)
            .open()?;
        let mut recovery = EngineRecovery {
            store: store.recovery(),
            ..EngineRecovery::default()
        };
        let mut cost_model = CostModel::new();
        let mut versions = VersionStore::new();
        let mut memo = MemoTable::new();
        let mut pinned = FxHashSet::default();
        let mut replans_triggered = 0u64;
        let mut last_offline_unix = 0u64;
        if config.durability.is_durable() {
            crate::persist::sweep_tmp(&crate::persist::meta_dir(&config.store_dir));
            crate::persist::sweep_tmp(&crate::persist::sessions_dir(&config.store_dir));
            let path = crate::persist::engine_meta_path(&config.store_dir);
            match crate::persist::load_engine_meta(&path) {
                Ok(Some(meta)) => {
                    recovery.recovered_cost_observations = meta.cost.observed_nodes();
                    recovery.recovered_versions = meta.versions.len();
                    recovery.recovered_memo_entries = meta.memo.len();
                    cost_model = meta.cost;
                    versions = VersionStore::from_versions(meta.versions);
                    memo = meta.memo;
                    pinned = meta.pinned.iter().map(|s| s.0).collect();
                    replans_triggered = meta.replans_triggered;
                    last_offline_unix = meta.last_offline_unix;
                }
                Ok(None) => {}
                Err(err) => {
                    eprintln!("helix: warning: ignoring corrupt engine meta: {err}");
                    recovery.meta_corrupted = true;
                }
            }
        }
        Ok(Engine {
            config,
            store,
            pool: std::sync::Arc::new(crate::pool::WorkerPool::new()),
            cost_model: Mutex::new(cost_model),
            versions: Mutex::new(versions),
            default_lineage: Mutex::new(Lineage::new()),
            default_run_gate: Mutex::new(()),
            recovery,
            persist_gate: Mutex::new(()),
            memo: Mutex::new(memo),
            pinned: Mutex::new(pinned),
            replans_triggered: AtomicU64::new(replans_triggered),
            last_offline_unix: AtomicU64::new(last_offline_unix),
        })
    }

    /// What this engine recovered when it opened: store WAL counters plus
    /// reloaded version/cost state. All zeros for volatile engines.
    pub fn recovery(&self) -> EngineRecovery {
        self.recovery
    }

    /// Forces a durability checkpoint now: compacts every store WAL shard
    /// into a snapshot and atomically rewrites the engine meta file. A
    /// no-op for volatile engines. (Runs also checkpoint the meta file
    /// automatically after every recorded iteration; this entry point
    /// exists for the server's `POST /admin/snapshot` and orderly
    /// shutdowns.)
    pub fn snapshot_now(&self) -> Result<()> {
        self.store.snapshot_now()?;
        self.persist_meta();
        Ok(())
    }

    /// Atomically rewrites `<store_dir>/meta/engine.json` with the
    /// current cost model and version history. Failures warn rather than
    /// error: persistence must never fail a run that already committed
    /// its results (the next successful checkpoint heals the file).
    fn persist_meta(&self) {
        if !self.config.durability.is_durable() {
            return;
        }
        let _gate = lock(&self.persist_gate);
        let cost = lock(&self.cost_model).clone();
        let versions = lock(&self.versions).clone();
        let memo = lock(&self.memo).clone();
        let pinned: Vec<Signature> = lock(&self.pinned).iter().map(|&s| Signature(s)).collect();
        let path = crate::persist::engine_meta_path(&self.config.store_dir);
        if let Err(err) = crate::persist::save_engine_meta(
            &path,
            &cost,
            &versions,
            &memo,
            &pinned,
            self.replans_triggered.load(Ordering::Relaxed),
            self.last_offline_unix.load(Ordering::Relaxed),
        ) {
            eprintln!("helix: warning: failed to persist engine meta: {err}");
        }
    }

    /// The global version history across all sessions and direct runs
    /// (Versions/Metrics tabs). Returns a point-in-time snapshot, so the
    /// caller can walk history while other sessions keep running — no
    /// lock is held after this returns. For a quick read (a length check,
    /// the latest entry) prefer [`Engine::with_versions`], which skips
    /// the O(history) clone.
    pub fn versions(&self) -> VersionStore {
        lock(&self.versions).clone()
    }

    /// Runs `f` against the live global version history without cloning
    /// it. The history lock is held for the duration of `f`, so keep it
    /// short and never call back into the engine from inside.
    pub fn with_versions<R>(&self, f: impl FnOnce(&VersionStore) -> R) -> R {
        f(&lock(&self.versions))
    }

    /// The intermediate store.
    pub fn store(&self) -> &IntermediateStore {
        &self.store
    }

    /// The live cost model. Returns a point-in-time snapshot — no lock
    /// is held after this returns.
    pub fn cost_model(&self) -> CostModel {
        lock(&self.cost_model).clone()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Compiles a workflow without executing it, against the engine's
    /// default lineage (used by the DAG visualization pane to preview the
    /// optimized plan).
    pub fn compile_only(&self, workflow: &Workflow) -> Result<CompiledPlan> {
        // Clone the lineage out rather than compiling under the lock: a
        // preview only needs a consistent read.
        let lineage = lock(&self.default_lineage).clone();
        self.compile_in(workflow, &lineage)
    }

    /// Compiles a workflow against an explicit lineage without executing
    /// it (sessions preview their own plans this way).
    pub fn compile_in(&self, workflow: &Workflow, lineage: &Lineage) -> Result<CompiledPlan> {
        let cost_model = lock(&self.cost_model);
        crate::compiler::compile_with_slicing(
            workflow,
            &self.store,
            &cost_model,
            self.config.recomputation,
            lineage.previous.as_ref(),
            self.config.enable_slicing,
        )
    }

    /// Runs one iteration against the engine's default lineage: compile →
    /// execute → materialize → record.
    ///
    /// Only `&self` is required, but calls through this entry point
    /// serialize on the default lineage — concurrent callers should each
    /// drive their own [`crate::session::Session`] (or [`Engine::run_in`]
    /// with their own [`Lineage`]) instead.
    pub fn run(&self, workflow: &Workflow) -> Result<IterationReport> {
        // Serialize runs on a dedicated gate and hold the lineage data
        // lock only to read and publish, so `compile_only` previews can
        // read the lineage while a run executes. A failed run publishes
        // nothing, matching `run_in`'s advance-only-on-success contract.
        let _gate = lock(&self.default_run_gate);
        let mut lineage = lock(&self.default_lineage).clone();
        let report = self.run_in(workflow, &mut lineage, RunOptions::default())?;
        *lock(&self.default_lineage) = lineage;
        Ok(report)
    }

    /// Runs one iteration under an explicit [`Lineage`]: compile against
    /// `lineage.previous`, execute, materialize, record into the global
    /// version history, and advance the lineage.
    ///
    /// This is the concurrent entry point: distinct lineages never
    /// contend (beyond brief cost-model/version-history lock windows and
    /// the sharded store itself), so N sessions iterate in parallel over
    /// one engine.
    pub fn run_in(
        &self,
        workflow: &Workflow,
        lineage: &mut Lineage,
        options: RunOptions,
    ) -> Result<IterationReport> {
        let total_started = Instant::now();
        let opt_started = Instant::now();
        let mut plan = self.compile_in(workflow, lineage)?;
        // The adaptive re-plan: when per-signature observed history
        // diverges from the name-keyed estimates the plan was compiled
        // with, swap the observed costs in and re-run the recomputation
        // optimizer. Snapshots of the memo and pin set are taken once
        // here and reused by the merge callback below, so a concurrent
        // run's recordings never shift this run's decisions mid-flight.
        let memo_snapshot = lock(&self.memo).clone();
        let pinned_snapshot: FxHashSet<u64> = lock(&self.pinned).clone();
        if crate::compiler::adapt_plan_with_memo(
            workflow,
            &mut plan,
            &memo_snapshot,
            self.config.recomputation,
            self.config.replan_factor,
        )? {
            self.replans_triggered.fetch_add(1, Ordering::Relaxed);
        }
        let plan = plan;
        let optimizer_secs = opt_started.elapsed().as_secs_f64();

        let wave_of = crate::recompute::wave_levels(workflow, &plan.states);
        let node_reports: Vec<NodeReport> = workflow
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, node)| NodeReport {
                name: node.name.clone(),
                stage: node.kind.stage(),
                state: plan.states[i],
                change: plan
                    .change
                    .as_ref()
                    .map(|c| c.kinds[i])
                    .unwrap_or(ChangeKind::Added),
                wave: wave_of[i],
                duration_secs: 0.0,
                output_bytes: 0,
                materialized: false,
                chunks_loaded: 0,
                decision_source: plan.sources[i],
            })
            .collect();
        let mut ctx = RunContext {
            cost: lock(&self.cost_model).clone(),
            events: Vec::new(),
            memo_events: Vec::new(),
            node_reports,
            materialize_secs: 0.0,
            metrics: Vec::new(),
        };

        // Raw node execution happens inside the scheduler (possibly on
        // many threads); everything stateful — cost observation, the
        // online materialization decision (paper §2.3: immediately upon
        // operator completion), metric harvesting — happens here, in the
        // merge callback the scheduler invokes strictly in plan order, so
        // the outcome stream is identical at any thread count. All of it
        // lands in the per-run context; shared engine state is only
        // touched after execution completes.
        let store = &self.store;
        let config = &self.config;
        // Partition sizing seeded from the memo: a node with observed
        // per-row cost gets a threshold derived from it; everything else
        // falls back to the configured knob. Purely a performance hint —
        // partition boundaries never change results.
        let node_partition_rows = if memo_snapshot.is_empty() {
            None
        } else {
            Some(std::sync::Arc::new(
                plan.signatures
                    .iter()
                    .map(|sig| {
                        memo_snapshot
                            .get(*sig)
                            .and_then(|e| e.observed_per_row_secs())
                            .map(|per_row| {
                                scheduler::partition_rows_for_observed(
                                    per_row,
                                    config.partition_rows,
                                )
                            })
                            .unwrap_or(config.partition_rows)
                    })
                    .collect::<Vec<usize>>(),
            ))
        };
        let exec_opts = scheduler::ExecOpts {
            parallelism: config.parallelism,
            partition_rows: config.partition_rows,
            node_partition_rows,
            pool: Some(std::sync::Arc::clone(&self.pool)),
        };
        let result = scheduler::execute_plan_opts(
            workflow,
            &plan,
            store,
            &exec_opts,
            |id, executed, output| {
                let i = id.index();
                let node = workflow.node(id);
                let rows = output.as_data().map(|d| d.len() as u64).unwrap_or(0);
                let parent_sigs: Vec<Signature> = node
                    .parents
                    .iter()
                    .map(|p| plan.signatures[p.index()])
                    .collect();
                if let Some(bytes) = executed.loaded_bytes {
                    ctx.observe_io(bytes, executed.secs);
                    ctx.node_reports[i].duration_secs = executed.secs;
                    ctx.node_reports[i].output_bytes = bytes;
                    ctx.memo_events.push((
                        plan.signatures[i],
                        node.name.clone(),
                        parent_sigs,
                        Observation {
                            exec_secs: executed.secs,
                            output_bytes: bytes,
                            loaded: true,
                            rows,
                            run: 0,
                        },
                    ));
                } else {
                    ctx.observe_compute(&node.name, executed.secs);
                    let est_bytes = output.estimated_bytes() as u64;
                    ctx.node_reports[i].duration_secs = executed.secs;
                    ctx.node_reports[i].output_bytes = est_bytes;
                    ctx.node_reports[i].chunks_loaded = executed.chunks_loaded;
                    ctx.memo_events.push((
                        plan.signatures[i],
                        node.name.clone(),
                        parent_sigs,
                        Observation {
                            exec_secs: executed.secs,
                            output_bytes: est_bytes,
                            loaded: false,
                            rows,
                            run: 0,
                        },
                    ));

                    let size = ctx.cost.expected_encoded_bytes(est_bytes);
                    let decision = MaterializationContext {
                        load_cost_secs: ctx.cost.load_estimate_secs(size),
                        compute_cost_secs: executed.secs,
                        ancestors_compute_secs: ancestors_compute_estimate(&ctx.cost, workflow, id),
                        size_bytes: size,
                        remaining_budget_bytes: store.remaining_bytes(),
                        expected_reuse: memo_snapshot
                            .get(plan.signatures[i])
                            .map(|e| e.expected_reuse())
                            .unwrap_or(1.0),
                        pinned: pinned_snapshot.contains(&plan.signatures[i].0),
                    };
                    if config.materialization.decide(&decision)
                        && store.lookup(plan.signatures[i]).is_none()
                    {
                        match store.put(plan.signatures[i], output) {
                            Ok((bytes, secs)) => {
                                ctx.observe_io(bytes, secs);
                                ctx.observe_encode(est_bytes, bytes);
                                ctx.materialize_secs += secs;
                                ctx.node_reports[i].materialized = true;
                            }
                            Err(HelixError::Store(_)) => {
                                // Either a budget race between estimate
                                // and actual encoded size, or another
                                // session's in-flight put of this same
                                // signature. Both mean "skip": the online
                                // policy would with perfect information,
                                // and the concurrent twin's materialization
                                // serves future loads just as well.
                            }
                            Err(other) => return Err(other),
                        }
                    }

                    // Persist the node's data-chunk partitions so the next
                    // data delta can serve unchanged partitions from the
                    // store. Off under `Never` (a store the policy keeps
                    // empty must stay empty). Best-effort within the same
                    // budget ledger as whole-node entries: `put` reserves
                    // before writing and refuses rather than evicts, so
                    // chunk entries can never push the store over budget
                    // or displace a materialization — a refused chunk is
                    // simply recomputed next delta. Chunk writes don't
                    // calibrate the cost model, which tracks whole-output
                    // materialization.
                    if !matches!(
                        config.materialization,
                        crate::materialize::MaterializationPolicyKind::Never
                    ) {
                        if let (Some(chunks), Ok(data)) =
                            (plan.chunks[i].as_ref(), output.as_data())
                        {
                            for (k, &(start, end)) in chunks.ranges.iter().enumerate() {
                                if end > data.len() || store.lookup(chunks.psigs[k]).is_some() {
                                    continue;
                                }
                                let part = NodeOutput::Data(
                                    helix_dataflow::DataCollection::from_rows_unchecked(
                                        data.schema().clone(),
                                        data.rows()[start..end].to_vec(),
                                    ),
                                );
                                match store.put(chunks.psigs[k], &part) {
                                    Ok((_, secs)) => ctx.materialize_secs += secs,
                                    Err(HelixError::Store(_)) => {}
                                    Err(other) => return Err(other),
                                }
                            }
                        }
                    }
                }
                // Evaluation results carry this iteration's metrics
                // whether computed fresh or reused from the store.
                if matches!(workflow.node(id).kind, OperatorKind::Evaluate(_)) {
                    ctx.metrics.extend(crate::exec::metric_values(output)?);
                }
                Ok(())
            },
        );

        // Replay buffered cost observations into the shared model even on
        // failure: the plan-order merge commits side effects (including
        // materializations) for every node preceding the failure, and the
        // historical direct-mutation engine kept their calibration too. A
        // failed run must not leave the cost model blind to work that ran.
        {
            let mut shared = lock(&self.cost_model);
            for event in ctx.events.drain(..) {
                match event {
                    CostEvent::Compute { name, secs } => shared.observe_compute(&name, secs),
                    CostEvent::Io { bytes, secs } => shared.observe_io(bytes, secs),
                    CostEvent::Encode { estimated, actual } => {
                        shared.observe_encode(estimated, actual)
                    }
                }
            }
        }
        // Memo recordings merge on the same terms as cost events: every
        // node that executed before a failure still observed real costs,
        // and the next plan should know about them.
        {
            let mut memo = lock(&self.memo);
            // One logical run per iteration: observations recorded below
            // carry this run's stamp, which is what lets old timings decay
            // (`HELIX_MEMO_DECAY_RUNS`).
            memo.begin_run();
            for (sig, name, parents, observation) in ctx.memo_events.drain(..) {
                memo.record(sig, &name, &parents, observation);
            }
        }
        let result = result?;

        let change_summary = options.summary.unwrap_or_else(|| {
            plan.change
                .as_ref()
                .map(|c| c.summary(workflow))
                .unwrap_or_else(|| "initial version".to_string())
        });
        let report = IterationReport {
            iteration: lineage.iteration,
            workflow_name: workflow.name().to_string(),
            session: options.session,
            change_summary,
            total_secs: total_started.elapsed().as_secs_f64(),
            optimizer_secs,
            materialize_secs: ctx.materialize_secs,
            nodes: ctx.node_reports,
            waves: result.waves,
            metrics: ctx.metrics,
            snapshot: std::sync::Arc::new(crate::version::DagSnapshot::capture(workflow)),
        };

        // Version history and lineage advance only on success; the cost
        // observations were already merged above. Replaying events
        // (instead of writing back the snapshot wholesale) keeps
        // concurrent runs from erasing each other's calibration.
        lock(&self.versions).record(&report);
        lineage.previous = Some(snapshot(workflow, &plan.signatures));
        lineage.iteration += 1;
        // Checkpoint the engine-level durable state after the iteration
        // is fully recorded (store entries already hit the WAL inside
        // `put`). Best-effort by design — see `persist_meta`.
        self.persist_meta();
        Ok(report)
    }

    /// Fetches a computed output from the store by signature (used by
    /// examples to inspect results).
    pub fn fetch(&self, sig: Signature) -> Result<NodeOutput> {
        Ok(self.store.get(sig)?.0)
    }

    /// A point-in-time snapshot of the optimizer memo.
    pub fn memo(&self) -> MemoTable {
        lock(&self.memo).clone()
    }

    /// Optimizer counters surfaced in `GET /stats`.
    pub fn optimizer_stats(&self) -> OptimizerStats {
        let memo = lock(&self.memo);
        OptimizerStats {
            memo_entries: memo.len(),
            observations_recorded: memo.observations_recorded(),
            replans_triggered: self.replans_triggered.load(Ordering::Relaxed),
            pinned: lock(&self.pinned).len(),
            last_offline_unix: self.last_offline_unix.load(Ordering::Relaxed),
        }
    }

    /// The paper's offline Optimal-materialization pass (the
    /// `POST /admin/optimize` entry point), intended to run between
    /// session bursts.
    ///
    /// Solves materialization over the accumulated memo history via the
    /// Project-Selection/min-cut machinery ([`crate::memo::solve_offline`]
    /// — the chosen set's total cost never exceeds the online rule's on
    /// the same history), pins the chosen signatures so the online policy
    /// materializes them whenever they fit, evicts stored entries the
    /// history says are not worth their bytes, and checkpoints the result
    /// with the engine meta.
    pub fn optimize_offline(&self) -> Result<OfflineOutcome> {
        let memo = lock(&self.memo).clone();
        let cost = lock(&self.cost_model).clone();
        let outcome = crate::memo::solve_offline(&memo, &cost, self.config.storage_budget_bytes);
        let chosen: FxHashSet<u64> = outcome.chosen.iter().map(|s| s.0).collect();
        *lock(&self.pinned) = chosen.clone();
        // Reclaim bytes from stored entries the pass rejected. Concurrent
        // iterations tolerate this the same way they tolerate budget
        // races: a missed load recomputes.
        for (sig, _) in memo.entries() {
            if !chosen.contains(&sig.0) && self.store.lookup(sig).is_some() {
                let _ = self.store.evict(sig);
            }
        }
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        self.last_offline_unix.store(now, Ordering::Relaxed);
        self.persist_meta();
        Ok(outcome)
    }
}

/// Optimizer counters for `GET /stats` and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerStats {
    /// Signatures with recorded history.
    pub memo_entries: usize,
    /// Lifetime observations recorded.
    pub observations_recorded: u64,
    /// Lifetime adaptive re-plans.
    pub replans_triggered: u64,
    /// Signatures pinned by the last offline pass.
    pub pinned: usize,
    /// Unix timestamp of the last offline pass (0 = never ran).
    pub last_offline_unix: u64,
}

/// Sum of compute-cost estimates over all ancestors of `id` — the
/// `Σ_{j ∈ A(i)} c_j` term of the materialization heuristic. A free
/// function (rather than a method) so the engine's merge callback can use
/// it while the run context is borrowed mutably.
fn ancestors_compute_estimate(
    cost_model: &CostModel,
    workflow: &Workflow,
    id: crate::workflow::NodeId,
) -> f64 {
    workflow
        .ancestors(id)
        .iter()
        .filter_map(|a| cost_model.compute_estimate_secs(&workflow.node(*a).name))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{EvalSpec, ExtractorKind, LearnerSpec, MetricKind};
    use crate::recompute::NodeState;
    use helix_dataflow::DataType;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Writes a small separable dataset and returns the workflow.
    fn census_workflow(dir: &std::path::Path, reg: f64) -> Workflow {
        let train = dir.join("train.csv");
        let test = dir.join("test.csv");
        if !train.exists() {
            // Large enough that recomputing the pre-processing chain
            // costs clearly more than loading its materialized output;
            // at ~100 rows the two are within scheduler noise of each
            // other and plan assertions get flaky.
            std::fs::write(&train, "BS,30,1\nMS,40,0\n".repeat(2_000)).unwrap();
            std::fs::write(&test, "BS,35,1\nMS,45,0\n".repeat(400)).unwrap();
        }
        let mut w = Workflow::new("census-mini");
        let data = w.csv_source("data", &train, Some(&test)).unwrap();
        let rows = w
            .csv_scanner(
                "rows",
                &data,
                &[
                    ("edu", DataType::Str),
                    ("age", DataType::Int),
                    ("target", DataType::Int),
                ],
            )
            .unwrap();
        let edu = w
            .field_extractor("edu_f", &rows, "edu", ExtractorKind::Categorical)
            .unwrap();
        let age = w
            .field_extractor("age_f", &rows, "age", ExtractorKind::Numeric)
            .unwrap();
        let bucket = w.bucketizer("age_bucket", &age, 4).unwrap();
        let target = w
            .field_extractor("target_f", &rows, "target", ExtractorKind::Numeric)
            .unwrap();
        let income = w
            .assemble("income", &rows, &[&edu, &bucket], &target)
            .unwrap();
        let preds = w
            .learner(
                "predictions",
                &income,
                LearnerSpec {
                    reg_param: reg,
                    ..Default::default()
                },
            )
            .unwrap();
        let checked = w
            .evaluate(
                "checked",
                &preds,
                EvalSpec {
                    metrics: vec![MetricKind::Accuracy, MetricKind::F1],
                    split: crate::SPLIT_TEST.into(),
                },
            )
            .unwrap();
        w.output(&preds);
        w.output(&checked);
        w
    }

    #[test]
    fn first_run_computes_and_reports_metrics() {
        let dir = tmpdir("first");
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let w = census_workflow(&dir, 0.1);
        let report = engine.run(&w).unwrap();
        assert_eq!(report.loaded(), 0);
        assert!(report.computed() > 0);
        assert_eq!(report.metric("accuracy"), Some(1.0), "separable data");
        assert_eq!(engine.versions().len(), 1);
        assert_eq!(report.change_summary, "initial version");
    }

    #[test]
    fn unchanged_rerun_reuses_everything_materialized() {
        let dir = tmpdir("rerun");
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let w = census_workflow(&dir, 0.1);
        let first = engine.run(&w).unwrap();
        let second = engine.run(&w).unwrap();
        // Identical metrics and strictly more reuse.
        assert_eq!(first.metric("accuracy"), second.metric("accuracy"));
        assert!(second.loaded() > 0, "second run should load something");
        assert!(second.computed() < first.computed());
        let versions = engine.versions();
        let change = &versions.get(1).unwrap().change_summary;
        assert_eq!(change, "no changes");
    }

    #[test]
    fn ml_change_skips_preprocessing() {
        let dir = tmpdir("mlchange");
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let w1 = census_workflow(&dir, 0.1);
        engine.run(&w1).unwrap();
        let w2 = census_workflow(&dir, 0.9);
        let report = engine.run(&w2).unwrap();
        // The income node (pre-processing output) should be loaded, not
        // recomputed, while the model retrains.
        let income = report.nodes.iter().find(|n| n.name == "income").unwrap();
        let model = report
            .nodes
            .iter()
            .find(|n| n.name == "predictions__model")
            .unwrap();
        assert_eq!(income.state, NodeState::Load);
        assert_eq!(model.state, NodeState::Compute);
        assert_eq!(model.change, ChangeKind::LocallyChanged);
    }

    #[test]
    fn optimized_results_match_unoptimized() {
        let dir = tmpdir("equiv");
        std::fs::create_dir_all(&dir).unwrap();
        let helix = Engine::new(EngineConfig::helix(dir.join("s1"))).unwrap();
        let unopt = Engine::new(EngineConfig {
            recomputation: RecomputationPolicy::ComputeAll,
            materialization: MaterializationPolicyKind::Never,
            ..EngineConfig::helix(dir.join("s2"))
        })
        .unwrap();
        for reg in [0.1, 0.9, 0.1] {
            let w = census_workflow(&dir, reg);
            let a = helix.run(&w).unwrap();
            let b = unopt.run(&w).unwrap();
            assert_eq!(
                a.metrics, b.metrics,
                "reuse must not change results (reg={reg})"
            );
        }
    }

    #[test]
    fn never_materialize_never_loads() {
        let dir = tmpdir("never");
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(EngineConfig {
            materialization: MaterializationPolicyKind::Never,
            ..EngineConfig::helix(dir.join("store"))
        })
        .unwrap();
        let w = census_workflow(&dir, 0.1);
        engine.run(&w).unwrap();
        let second = engine.run(&w).unwrap();
        assert_eq!(second.loaded(), 0);
        assert_eq!(engine.store().len(), 0);
    }

    #[test]
    fn zero_budget_disables_materialization() {
        let dir = tmpdir("zerobudget");
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(EngineConfig::helix(dir.join("store")).with_budget(0)).unwrap();
        let w = census_workflow(&dir, 0.1);
        let report = engine.run(&w).unwrap();
        assert!(report.nodes.iter().all(|n| !n.materialized));
        assert_eq!(engine.store().used_bytes(), 0);
    }

    #[test]
    fn parallel_and_sequential_iterations_report_identically() {
        let dir = tmpdir("parity");
        std::fs::create_dir_all(&dir).unwrap();
        // Materialize-`All` keeps every decision timing-independent, so
        // the strict set assertions below cannot flake on a loaded
        // runner; the online policy's semantic equivalence (metrics,
        // reuse) is covered at workload scale in tests/end_to_end.rs.
        let config = |suffix: &str, threads: usize| {
            let mut config = EngineConfig::helix(dir.join(suffix)).with_parallelism(threads);
            config.materialization = MaterializationPolicyKind::All;
            config
        };
        let seq = Engine::new(config("s-seq", 1)).unwrap();
        let par = Engine::new(config("s-par", 4)).unwrap();
        for reg in [0.1, 0.9, 0.1] {
            let w = census_workflow(&dir, reg);
            let a = seq.run(&w).unwrap();
            let b = par.run(&w).unwrap();
            assert_eq!(a.loaded(), b.loaded(), "reg={reg}");
            assert_eq!(a.computed(), b.computed(), "reg={reg}");
            assert_eq!(a.pruned(), b.pruned(), "reg={reg}");
            assert_eq!(a.metrics, b.metrics, "reg={reg}");
            let mat_a: Vec<&str> = a
                .nodes
                .iter()
                .filter(|n| n.materialized)
                .map(|n| n.name.as_str())
                .collect();
            let mat_b: Vec<&str> = b
                .nodes
                .iter()
                .filter(|n| n.materialized)
                .map(|n| n.name.as_str())
                .collect();
            assert_eq!(mat_a, mat_b, "materialization set must match, reg={reg}");
            assert_eq!(a.wave_count(), b.wave_count(), "reg={reg}");
            assert!(a.wave_count() > 1, "census plan has dependency depth");
        }
    }

    #[test]
    fn parallelism_knob_clamps_to_one() {
        let config = EngineConfig::helix("unused").with_parallelism(0);
        assert_eq!(config.parallelism, 1);
    }

    #[test]
    fn compile_only_previews_plan_without_running() {
        let dir = tmpdir("preview");
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let w = census_workflow(&dir, 0.1);
        engine.run(&w).unwrap();
        let plan = engine.compile_only(&w).unwrap();
        assert!(plan.load_count() > 0, "preview sees materializations");
        assert_eq!(
            engine.versions().len(),
            1,
            "compile_only must not record versions"
        );
    }

    #[test]
    fn independent_lineages_track_their_own_history() {
        let dir = tmpdir("lineages");
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let mut alice = Lineage::new();
        let mut bob = Lineage::new();
        let w = census_workflow(&dir, 0.1);

        let a1 = engine
            .run_in(&w, &mut alice, RunOptions::default())
            .unwrap();
        assert_eq!(a1.iteration, 0);
        assert_eq!(a1.change_summary, "initial version");

        // Bob's first run of the same workflow is *his* initial version —
        // a fresh lineage, not a rerun — but it still reuses Alice's
        // materializations through signature identity.
        let b1 = engine.run_in(&w, &mut bob, RunOptions::default()).unwrap();
        assert_eq!(b1.iteration, 0);
        assert_eq!(b1.change_summary, "initial version");
        assert!(b1.loaded() > 0, "cross-lineage reuse via the shared store");

        let a2 = engine
            .run_in(&w, &mut alice, RunOptions::default())
            .unwrap();
        assert_eq!(a2.iteration, 1);
        assert_eq!(a2.change_summary, "no changes");
        assert_eq!(alice.iteration(), 2);
        assert_eq!(bob.iteration(), 1);
        assert_eq!(engine.versions().len(), 3, "global history sees all runs");
    }

    #[test]
    fn run_options_attribute_session_and_summary() {
        let dir = tmpdir("attrib");
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let mut lineage = Lineage::new();
        let w = census_workflow(&dir, 0.1);
        let report = engine
            .run_in(
                &w,
                &mut lineage,
                RunOptions {
                    session: Some("alice".into()),
                    summary: Some("tweak reg".into()),
                },
            )
            .unwrap();
        assert_eq!(report.session.as_deref(), Some("alice"));
        assert_eq!(report.change_summary, "tweak reg");
        let versions = engine.versions();
        let v = versions.latest().unwrap();
        assert_eq!(v.session.as_deref(), Some("alice"));
        assert_eq!(v.change_summary, "tweak reg");
    }

    #[test]
    fn partitioned_runs_match_unpartitioned_results() {
        // A threshold of 1 row forces every partitionable node (the
        // scan, the extractors, the assemble, the model application) to
        // split into the 32-slice maximum; reports and metrics must be
        // indistinguishable from the sequential engine's.
        let dir = tmpdir("partrows");
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = Engine::new(
            EngineConfig::helix(dir.join("s-base"))
                .with_parallelism(1)
                .with_partition_rows(1),
        )
        .unwrap();
        let split = Engine::new(
            EngineConfig::helix(dir.join("s-split"))
                .with_parallelism(4)
                .with_partition_rows(1),
        )
        .unwrap();
        for reg in [0.1, 0.9] {
            let w = census_workflow(&dir, reg);
            let a = baseline.run(&w).unwrap();
            let b = split.run(&w).unwrap();
            assert_eq!(a.metrics, b.metrics, "reg={reg}");
            assert_eq!(a.computed(), b.computed(), "reg={reg}");
            assert_eq!(a.pruned(), b.pruned(), "reg={reg}");
        }
    }

    #[test]
    fn failed_run_keeps_prefix_cost_calibration() {
        use crate::ops::{OperatorKind, Udf};
        use helix_dataflow::{DataCollection, DataType, Row, Schema, Value};
        let dir = tmpdir("failcal");
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let mut w = Workflow::new("fail-cal");
        let ok = Udf::new("ok:v1", |_: &[&DataCollection]| {
            let schema = Schema::of(&[("x", DataType::Int)]);
            Ok(DataCollection::from_rows_unchecked(
                schema,
                vec![Row(vec![Value::Int(1)])],
            ))
        });
        let root = w.add("root", OperatorKind::UserDefined(ok), &[]).unwrap();
        let boom = Udf::new("boom:v1", |_: &[&DataCollection]| {
            Err(HelixError::Exec("boom".into()))
        });
        let tail = w
            .add("boom", OperatorKind::UserDefined(boom), &[&root])
            .unwrap();
        w.output(&tail);
        engine.run(&w).expect_err("boom must fail the run");
        // The merge committed `root` before the failure, so its compute
        // observation must survive into the shared cost model (the store
        // side effects of the prefix do too — see the failure contract in
        // `crate::scheduler`).
        assert!(
            engine.cost_model().compute_estimate_secs("root").is_some(),
            "completed prefix must calibrate the cost model on failure"
        );
        assert!(engine.cost_model().compute_estimate_secs("boom").is_none());
        assert_eq!(engine.versions().len(), 0, "failed runs record no version");
    }

    #[test]
    fn durable_engine_reloads_cost_versions_and_store() {
        let dir = tmpdir("durable-reload");
        std::fs::create_dir_all(&dir).unwrap();
        let config =
            || EngineConfig::helix(dir.join("store")).with_durability(Durability::wal_nosync());
        {
            let engine = Engine::new(config()).unwrap();
            assert_eq!(engine.recovery(), EngineRecovery::default());
            engine.run(&census_workflow(&dir, 0.1)).unwrap();
            assert!(engine.cost_model().observed_nodes() > 0);
            assert!(!engine.store().is_empty());
        } // dropped without any orderly shutdown — the WAL and the
          // post-run meta checkpoint are all that survives

        let engine = Engine::new(config()).unwrap();
        let recovery = engine.recovery();
        assert_eq!(recovery.recovered_versions, 1);
        assert!(recovery.recovered_cost_observations > 0);
        assert!(recovery.store.recovered_entries > 0);
        assert!(!recovery.meta_corrupted);
        assert_eq!(engine.versions().len(), 1, "global history reloaded");
        assert_eq!(
            engine.versions().get(0).unwrap().change_summary,
            "initial version"
        );

        // The reopened store serves the same signatures: a fresh lineage
        // rerun loads instead of recomputing.
        let report = engine.run(&census_workflow(&dir, 0.1)).unwrap();
        assert!(report.loaded() > 0, "materializations survive restart");
        assert_eq!(engine.versions().len(), 2, "history appends, not resets");
    }

    #[test]
    fn corrupt_engine_meta_warns_and_starts_fresh() {
        let dir = tmpdir("durable-corrupt-meta");
        std::fs::create_dir_all(&dir).unwrap();
        let config =
            || EngineConfig::helix(dir.join("store")).with_durability(Durability::wal_nosync());
        {
            let engine = Engine::new(config()).unwrap();
            engine.run(&census_workflow(&dir, 0.1)).unwrap();
        }
        let meta = crate::persist::engine_meta_path(&dir.join("store"));
        std::fs::write(&meta, "{\"v\":1,\"cost\":garbage").unwrap();

        let engine = Engine::new(config()).unwrap();
        let recovery = engine.recovery();
        assert!(recovery.meta_corrupted, "corrupt meta flagged, not fatal");
        assert_eq!(recovery.recovered_versions, 0);
        assert_eq!(engine.versions().len(), 0, "version state starts fresh");
        assert!(
            recovery.store.recovered_entries > 0,
            "store entries recover independently of the meta file"
        );
        // The next run heals the meta file.
        engine.run(&census_workflow(&dir, 0.1)).unwrap();
        let reopened = Engine::new(config()).unwrap();
        assert_eq!(reopened.recovery().recovered_versions, 1);
    }

    #[test]
    fn snapshot_now_checkpoints_meta_for_durable_engines() {
        let dir = tmpdir("durable-snapshot-now");
        std::fs::create_dir_all(&dir).unwrap();
        // Pin Volatile explicitly: EngineConfig::helix reads HELIX_DURABILITY,
        // and this assertion must hold when the suite runs under
        // HELIX_DURABILITY=wal (the CI durability job does exactly that).
        let volatile = Engine::new(
            EngineConfig::helix(dir.join("s-vol")).with_durability(Durability::Volatile),
        )
        .unwrap();
        volatile.snapshot_now().unwrap();
        assert!(
            !crate::persist::engine_meta_path(&dir.join("s-vol")).exists(),
            "volatile snapshot_now is a no-op"
        );

        let durable = Engine::new(
            EngineConfig::helix(dir.join("s-wal")).with_durability(Durability::wal_nosync()),
        )
        .unwrap();
        durable.snapshot_now().unwrap();
        assert!(crate::persist::engine_meta_path(&dir.join("s-wal")).exists());
    }

    #[test]
    fn concurrent_runs_share_one_engine() {
        let dir = tmpdir("concurrent");
        std::fs::create_dir_all(&dir).unwrap();
        let engine =
            std::sync::Arc::new(Engine::new(EngineConfig::helix(dir.join("store"))).unwrap());
        let w = census_workflow(&dir, 0.1);
        let reports: Vec<IterationReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let engine = std::sync::Arc::clone(&engine);
                    let w = &w;
                    scope.spawn(move || {
                        let mut lineage = Lineage::new();
                        engine
                            .run_in(w, &mut lineage, RunOptions::default())
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for report in &reports {
            assert_eq!(report.metric("accuracy"), Some(1.0));
        }
        assert_eq!(engine.versions().len(), 3);
        assert!(
            engine.store().used_bytes() <= engine.store().budget_bytes(),
            "concurrent runs must respect the budget"
        );
    }

    #[test]
    fn adaptive_replan_flips_decision_sources_to_observed() {
        let dir = tmpdir("replan");
        std::fs::create_dir_all(&dir).unwrap();
        // Factor 1.0 re-plans whenever memo history exists, so the second
        // run must go through the adaptive path deterministically.
        let engine =
            Engine::new(EngineConfig::helix(dir.join("store")).with_replan_factor(1.0)).unwrap();
        let w = census_workflow(&dir, 0.1);

        let first = engine.run(&w).unwrap();
        assert_eq!(engine.optimizer_stats().replans_triggered, 0);
        assert!(first
            .nodes
            .iter()
            .all(|n| n.decision_source == crate::memo::DecisionSource::Estimate));
        assert!(engine.optimizer_stats().observations_recorded > 0);

        let second = engine.run(&w).unwrap();
        assert_eq!(engine.optimizer_stats().replans_triggered, 1);
        assert!(
            second
                .nodes
                .iter()
                .any(|n| n.decision_source == crate::memo::DecisionSource::Observed),
            "memo-backed nodes must report observed costs after a re-plan"
        );
        // Re-planning only changes load/compute/store choices; results
        // are the same.
        assert_eq!(first.metrics, second.metrics);
    }

    #[test]
    fn disabled_replan_never_triggers() {
        let dir = tmpdir("replan-off");
        std::fs::create_dir_all(&dir).unwrap();
        let engine =
            Engine::new(EngineConfig::helix(dir.join("store")).with_replan_factor(f64::INFINITY))
                .unwrap();
        let w = census_workflow(&dir, 0.1);
        engine.run(&w).unwrap();
        let second = engine.run(&w).unwrap();
        assert_eq!(engine.optimizer_stats().replans_triggered, 0);
        assert!(second
            .nodes
            .iter()
            .all(|n| n.decision_source == crate::memo::DecisionSource::Estimate));
    }

    #[test]
    fn durable_engine_reloads_memo_and_pins() {
        let dir = tmpdir("durable-memo");
        std::fs::create_dir_all(&dir).unwrap();
        let config = || {
            EngineConfig::helix(dir.join("store"))
                .with_durability(Durability::wal_nosync())
                .with_replan_factor(1.0)
        };
        let (entries, observations, pinned) = {
            let engine = Engine::new(config()).unwrap();
            engine.run(&census_workflow(&dir, 0.1)).unwrap();
            engine.run(&census_workflow(&dir, 0.1)).unwrap();
            let outcome = engine.optimize_offline().unwrap();
            assert!(
                outcome.chosen_cost_secs <= outcome.online_cost_secs,
                "offline Optimal must never lose to the online rule"
            );
            let stats = engine.optimizer_stats();
            assert!(stats.memo_entries > 0);
            assert!(stats.last_offline_unix > 0);
            (
                stats.memo_entries,
                stats.observations_recorded,
                stats.pinned,
            )
        };

        let engine = Engine::new(config()).unwrap();
        let recovery = engine.recovery();
        assert_eq!(
            recovery.recovered_memo_entries, entries,
            "the memo must survive the restart in full"
        );
        let stats = engine.optimizer_stats();
        assert_eq!(stats.memo_entries, entries);
        assert_eq!(stats.observations_recorded, observations);
        assert_eq!(stats.pinned, pinned);
        assert!(stats.last_offline_unix > 0, "offline timestamp recovered");

        // The recovered memo feeds the very first post-restart plan: with
        // factor 1.0 the adaptive path must fire immediately. The replan
        // counter itself is durable, so it resumes from the pre-restart
        // value rather than resetting.
        let replans_before = stats.replans_triggered;
        assert!(replans_before > 0, "pre-restart replan count recovered");
        let report = engine.run(&census_workflow(&dir, 0.1)).unwrap();
        assert_eq!(
            engine.optimizer_stats().replans_triggered,
            replans_before + 1
        );
        assert!(report
            .nodes
            .iter()
            .any(|n| n.decision_source == crate::memo::DecisionSource::Observed));
    }

    #[test]
    fn optimize_offline_on_empty_history_chooses_nothing() {
        let dir = tmpdir("offline-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let outcome = engine.optimize_offline().unwrap();
        assert!(outcome.chosen.is_empty());
        assert_eq!(outcome.candidates, 0);
        assert!(engine.optimizer_stats().last_offline_unix > 0);
    }
}
