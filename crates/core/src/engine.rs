//! The execution engine: runs compiled plans and drives the online
//! materialization optimizer across iterations.

use crate::compiler::CompiledPlan;
use crate::cost::CostModel;
use crate::materialize::{MaterializationContext, MaterializationPolicyKind};
use crate::ops::{NodeOutput, OperatorKind};
use crate::recompute::RecomputationPolicy;
use crate::report::{IterationReport, NodeReport};
use crate::scheduler;
use crate::signature::{snapshot, ChangeKind, Signature};
use crate::store::IntermediateStore;
use crate::version::VersionStore;
use crate::workflow::Workflow;
use crate::{HelixError, Result};
use helix_dataflow::fx::FxHashMap;
use std::path::PathBuf;
use std::time::Instant;

/// Engine configuration: optimization toggles and the storage budget.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Directory for the intermediate store.
    pub store_dir: PathBuf,
    /// Storage budget in bytes (paper §2.3's "maximum storage constraint").
    pub storage_budget_bytes: u64,
    /// Recomputation policy (Helix uses [`RecomputationPolicy::Optimal`]).
    pub recomputation: RecomputationPolicy,
    /// Materialization policy (Helix uses
    /// [`MaterializationPolicyKind::HelixOnline`]).
    pub materialization: MaterializationPolicyKind,
    /// Whether the program slicer prunes operators that do not feed
    /// outputs (off only in the "unoptimized Helix" demo configuration).
    pub enable_slicing: bool,
    /// Worker threads for the ready-queue executor. `1` reproduces the
    /// classic sequential iteration loop; the default is the machine's
    /// available parallelism (overridable via `HELIX_PARALLELISM`).
    /// Results and reports are identical at every setting — see
    /// [`crate::scheduler`].
    pub parallelism: usize,
    /// Shards the intermediate store's entry maps are split across so the
    /// executor's concurrent store traffic does not serialize on one
    /// lock. The default comes from `HELIX_STORE_SHARDS` (falling back to
    /// [`crate::store::DEFAULT_STORE_SHARDS`]); `1` reproduces the
    /// historical single-lock store. Purely a concurrency knob — contents
    /// and budget semantics are identical at every setting.
    pub store_shards: usize,
}

impl EngineConfig {
    /// Full Helix configuration rooted at `store_dir` with a 1 GiB budget.
    pub fn helix(store_dir: impl Into<PathBuf>) -> Self {
        EngineConfig {
            store_dir: store_dir.into(),
            storage_budget_bytes: 1 << 30,
            recomputation: RecomputationPolicy::Optimal,
            materialization: MaterializationPolicyKind::HelixOnline,
            enable_slicing: true,
            parallelism: scheduler::default_parallelism(),
            store_shards: crate::store::default_store_shards(),
        }
    }

    /// Sets the storage budget.
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.storage_budget_bytes = bytes;
        self
    }

    /// Sets the scheduler thread count (clamped to ≥ 1).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Sets the store shard count (clamped to ≥ 1).
    pub fn with_store_shards(mut self, shards: usize) -> Self {
        self.store_shards = shards.max(1);
        self
    }
}

/// The Helix engine: owns the store, cost model, and version history, and
/// executes one workflow iteration at a time.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    store: IntermediateStore,
    cost_model: CostModel,
    versions: VersionStore,
    previous: Option<FxHashMap<String, (u64, Signature)>>,
    iteration: usize,
}

impl Engine {
    /// Opens an engine (and its store) under the configured directory.
    pub fn new(config: EngineConfig) -> Result<Engine> {
        let store = IntermediateStore::open_with_shards(
            &config.store_dir,
            config.storage_budget_bytes,
            config.store_shards,
        )?;
        Ok(Engine {
            config,
            store,
            cost_model: CostModel::new(),
            versions: VersionStore::new(),
            previous: None,
            iteration: 0,
        })
    }

    /// The version history (Versions/Metrics tabs).
    pub fn versions(&self) -> &VersionStore {
        &self.versions
    }

    /// The intermediate store.
    pub fn store(&self) -> &IntermediateStore {
        &self.store
    }

    /// The live cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Compiles a workflow without executing it (used by the DAG
    /// visualization pane to preview the optimized plan).
    pub fn compile_only(&self, workflow: &Workflow) -> Result<CompiledPlan> {
        crate::compiler::compile_with_slicing(
            workflow,
            &self.store,
            &self.cost_model,
            self.config.recomputation,
            self.previous.as_ref(),
            self.config.enable_slicing,
        )
    }

    /// Runs one iteration: compile → execute → materialize → record.
    pub fn run(&mut self, workflow: &Workflow) -> Result<IterationReport> {
        let total_started = Instant::now();
        let opt_started = Instant::now();
        let plan = self.compile_only(workflow)?;
        let optimizer_secs = opt_started.elapsed().as_secs_f64();

        let wave_of = crate::recompute::wave_levels(workflow, &plan.states);
        let mut node_reports: Vec<NodeReport> = workflow
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, node)| NodeReport {
                name: node.name.clone(),
                stage: node.kind.stage(),
                state: plan.states[i],
                change: plan
                    .change
                    .as_ref()
                    .map(|c| c.kinds[i])
                    .unwrap_or(ChangeKind::Added),
                wave: wave_of[i],
                duration_secs: 0.0,
                output_bytes: 0,
                materialized: false,
            })
            .collect();
        let mut materialize_secs = 0.0f64;
        let mut metrics: Vec<(String, f64)> = Vec::new();

        // Raw node execution happens inside the scheduler (possibly on
        // many threads); everything stateful — cost observation, the
        // online materialization decision (paper §2.3: immediately upon
        // operator completion), metric harvesting — happens here, in the
        // merge callback the scheduler invokes strictly in plan order, so
        // the outcome stream is identical at any thread count.
        let store = &self.store;
        let cost_model = &mut self.cost_model;
        let config = &self.config;
        let result = scheduler::execute_plan(
            workflow,
            &plan,
            store,
            config.parallelism,
            |id, executed, output| {
                let i = id.index();
                if let Some(bytes) = executed.loaded_bytes {
                    cost_model.observe_io(bytes, executed.secs);
                    node_reports[i].duration_secs = executed.secs;
                    node_reports[i].output_bytes = bytes;
                } else {
                    let node = workflow.node(id);
                    cost_model.observe_compute(&node.name, executed.secs);
                    let est_bytes = output.estimated_bytes() as u64;
                    node_reports[i].duration_secs = executed.secs;
                    node_reports[i].output_bytes = est_bytes;

                    let size = cost_model.expected_encoded_bytes(est_bytes);
                    let ctx = MaterializationContext {
                        load_cost_secs: cost_model.load_estimate_secs(size),
                        compute_cost_secs: executed.secs,
                        ancestors_compute_secs: ancestors_compute_estimate(
                            cost_model, workflow, id,
                        ),
                        size_bytes: size,
                        remaining_budget_bytes: store.remaining_bytes(),
                    };
                    if config.materialization.decide(&ctx)
                        && store.lookup(plan.signatures[i]).is_none()
                    {
                        match store.put(plan.signatures[i], output) {
                            Ok((bytes, secs)) => {
                                cost_model.observe_io(bytes, secs);
                                cost_model.observe_encode(est_bytes, bytes);
                                materialize_secs += secs;
                                node_reports[i].materialized = true;
                            }
                            Err(HelixError::Store(_)) => {
                                // Budget race between estimate and actual
                                // encoded size: skip, as the online policy
                                // would with perfect information.
                            }
                            Err(other) => return Err(other),
                        }
                    }
                }
                // Evaluation results carry this iteration's metrics
                // whether computed fresh or reused from the store.
                if matches!(workflow.node(id).kind, OperatorKind::Evaluate(_)) {
                    metrics.extend(crate::exec::metric_values(output)?);
                }
                Ok(())
            },
        )?;
        let report = IterationReport {
            iteration: self.iteration,
            workflow_name: workflow.name().to_string(),
            total_secs: total_started.elapsed().as_secs_f64(),
            optimizer_secs,
            materialize_secs,
            nodes: node_reports,
            waves: result.waves,
            metrics,
        };

        let change_summary = plan
            .change
            .as_ref()
            .map(|c| c.summary(workflow))
            .unwrap_or_else(|| "initial version".to_string());
        self.versions.record(workflow, &report, change_summary);
        self.previous = Some(snapshot(workflow, &plan.signatures));
        self.iteration += 1;
        Ok(report)
    }

    /// Fetches a computed output from the last iteration's store by
    /// signature (used by examples to inspect results).
    pub fn fetch(&self, sig: Signature) -> Result<NodeOutput> {
        Ok(self.store.get(sig)?.0)
    }
}

/// Sum of compute-cost estimates over all ancestors of `id` — the
/// `Σ_{j ∈ A(i)} c_j` term of the materialization heuristic. A free
/// function (rather than a method) so the engine's merge callback can use
/// it while holding the cost model mutably.
fn ancestors_compute_estimate(
    cost_model: &CostModel,
    workflow: &Workflow,
    id: crate::workflow::NodeId,
) -> f64 {
    workflow
        .ancestors(id)
        .iter()
        .filter_map(|a| cost_model.compute_estimate_secs(&workflow.node(*a).name))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{EvalSpec, ExtractorKind, LearnerSpec, MetricKind};
    use crate::recompute::NodeState;
    use helix_dataflow::DataType;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Writes a small separable dataset and returns the workflow.
    fn census_workflow(dir: &std::path::Path, reg: f64) -> Workflow {
        let train = dir.join("train.csv");
        let test = dir.join("test.csv");
        if !train.exists() {
            // Large enough that recomputing the pre-processing chain
            // costs clearly more than loading its materialized output;
            // at ~100 rows the two are within scheduler noise of each
            // other and plan assertions get flaky.
            std::fs::write(&train, "BS,30,1\nMS,40,0\n".repeat(2_000)).unwrap();
            std::fs::write(&test, "BS,35,1\nMS,45,0\n".repeat(400)).unwrap();
        }
        let mut w = Workflow::new("census-mini");
        let data = w.csv_source("data", &train, Some(&test)).unwrap();
        let rows = w
            .csv_scanner(
                "rows",
                &data,
                &[
                    ("edu", DataType::Str),
                    ("age", DataType::Int),
                    ("target", DataType::Int),
                ],
            )
            .unwrap();
        let edu = w
            .field_extractor("edu_f", &rows, "edu", ExtractorKind::Categorical)
            .unwrap();
        let age = w
            .field_extractor("age_f", &rows, "age", ExtractorKind::Numeric)
            .unwrap();
        let bucket = w.bucketizer("age_bucket", &age, 4).unwrap();
        let target = w
            .field_extractor("target_f", &rows, "target", ExtractorKind::Numeric)
            .unwrap();
        let income = w
            .assemble("income", &rows, &[&edu, &bucket], &target)
            .unwrap();
        let preds = w
            .learner(
                "predictions",
                &income,
                LearnerSpec {
                    reg_param: reg,
                    ..Default::default()
                },
            )
            .unwrap();
        let checked = w
            .evaluate(
                "checked",
                &preds,
                EvalSpec {
                    metrics: vec![MetricKind::Accuracy, MetricKind::F1],
                    split: crate::SPLIT_TEST.into(),
                },
            )
            .unwrap();
        w.output(&preds);
        w.output(&checked);
        w
    }

    #[test]
    fn first_run_computes_and_reports_metrics() {
        let dir = tmpdir("first");
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let w = census_workflow(&dir, 0.1);
        let report = engine.run(&w).unwrap();
        assert_eq!(report.loaded(), 0);
        assert!(report.computed() > 0);
        assert_eq!(report.metric("accuracy"), Some(1.0), "separable data");
        assert_eq!(engine.versions().len(), 1);
    }

    #[test]
    fn unchanged_rerun_reuses_everything_materialized() {
        let dir = tmpdir("rerun");
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let w = census_workflow(&dir, 0.1);
        let first = engine.run(&w).unwrap();
        let second = engine.run(&w).unwrap();
        // Identical metrics and strictly more reuse.
        assert_eq!(first.metric("accuracy"), second.metric("accuracy"));
        assert!(second.loaded() > 0, "second run should load something");
        assert!(second.computed() < first.computed());
        let change = &engine.versions().get(1).unwrap().change_summary;
        assert_eq!(change, "no changes");
    }

    #[test]
    fn ml_change_skips_preprocessing() {
        let dir = tmpdir("mlchange");
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let w1 = census_workflow(&dir, 0.1);
        engine.run(&w1).unwrap();
        let w2 = census_workflow(&dir, 0.9);
        let report = engine.run(&w2).unwrap();
        // The income node (pre-processing output) should be loaded, not
        // recomputed, while the model retrains.
        let income = report.nodes.iter().find(|n| n.name == "income").unwrap();
        let model = report
            .nodes
            .iter()
            .find(|n| n.name == "predictions__model")
            .unwrap();
        assert_eq!(income.state, NodeState::Load);
        assert_eq!(model.state, NodeState::Compute);
        assert_eq!(model.change, ChangeKind::LocallyChanged);
    }

    #[test]
    fn optimized_results_match_unoptimized() {
        let dir = tmpdir("equiv");
        std::fs::create_dir_all(&dir).unwrap();
        let mut helix = Engine::new(EngineConfig::helix(dir.join("s1"))).unwrap();
        let mut unopt = Engine::new(EngineConfig {
            recomputation: RecomputationPolicy::ComputeAll,
            materialization: MaterializationPolicyKind::Never,
            ..EngineConfig::helix(dir.join("s2"))
        })
        .unwrap();
        for reg in [0.1, 0.9, 0.1] {
            let w = census_workflow(&dir, reg);
            let a = helix.run(&w).unwrap();
            let b = unopt.run(&w).unwrap();
            assert_eq!(
                a.metrics, b.metrics,
                "reuse must not change results (reg={reg})"
            );
        }
    }

    #[test]
    fn never_materialize_never_loads() {
        let dir = tmpdir("never");
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = Engine::new(EngineConfig {
            materialization: MaterializationPolicyKind::Never,
            ..EngineConfig::helix(dir.join("store"))
        })
        .unwrap();
        let w = census_workflow(&dir, 0.1);
        engine.run(&w).unwrap();
        let second = engine.run(&w).unwrap();
        assert_eq!(second.loaded(), 0);
        assert_eq!(engine.store().len(), 0);
    }

    #[test]
    fn zero_budget_disables_materialization() {
        let dir = tmpdir("zerobudget");
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine =
            Engine::new(EngineConfig::helix(dir.join("store")).with_budget(0)).unwrap();
        let w = census_workflow(&dir, 0.1);
        let report = engine.run(&w).unwrap();
        assert!(report.nodes.iter().all(|n| !n.materialized));
        assert_eq!(engine.store().used_bytes(), 0);
    }

    #[test]
    fn parallel_and_sequential_iterations_report_identically() {
        let dir = tmpdir("parity");
        std::fs::create_dir_all(&dir).unwrap();
        // Materialize-`All` keeps every decision timing-independent, so
        // the strict set assertions below cannot flake on a loaded
        // runner; the online policy's semantic equivalence (metrics,
        // reuse) is covered at workload scale in tests/end_to_end.rs.
        let config = |suffix: &str, threads: usize| {
            let mut config = EngineConfig::helix(dir.join(suffix)).with_parallelism(threads);
            config.materialization = MaterializationPolicyKind::All;
            config
        };
        let mut seq = Engine::new(config("s-seq", 1)).unwrap();
        let mut par = Engine::new(config("s-par", 4)).unwrap();
        for reg in [0.1, 0.9, 0.1] {
            let w = census_workflow(&dir, reg);
            let a = seq.run(&w).unwrap();
            let b = par.run(&w).unwrap();
            assert_eq!(a.loaded(), b.loaded(), "reg={reg}");
            assert_eq!(a.computed(), b.computed(), "reg={reg}");
            assert_eq!(a.pruned(), b.pruned(), "reg={reg}");
            assert_eq!(a.metrics, b.metrics, "reg={reg}");
            let mat_a: Vec<&str> = a
                .nodes
                .iter()
                .filter(|n| n.materialized)
                .map(|n| n.name.as_str())
                .collect();
            let mat_b: Vec<&str> = b
                .nodes
                .iter()
                .filter(|n| n.materialized)
                .map(|n| n.name.as_str())
                .collect();
            assert_eq!(mat_a, mat_b, "materialization set must match, reg={reg}");
            assert_eq!(a.wave_count(), b.wave_count(), "reg={reg}");
            assert!(a.wave_count() > 1, "census plan has dependency depth");
        }
    }

    #[test]
    fn parallelism_knob_clamps_to_one() {
        let config = EngineConfig::helix("unused").with_parallelism(0);
        assert_eq!(config.parallelism, 1);
    }

    #[test]
    fn compile_only_previews_plan_without_running() {
        let dir = tmpdir("preview");
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = Engine::new(EngineConfig::helix(dir.join("store"))).unwrap();
        let w = census_workflow(&dir, 0.1);
        engine.run(&w).unwrap();
        let plan = engine.compile_only(&w).unwrap();
        assert!(plan.load_count() > 0, "preview sees materializations");
        assert_eq!(
            engine.versions().len(),
            1,
            "compile_only must not record versions"
        );
    }
}
