//! Multi-tenant, session-oriented iteration: the serving-shaped API over
//! the shared-`&self` [`Engine`].
//!
//! Helix's premise is a human *iterating*: edit one operator, rerun,
//! reuse everything untouched. A [`Session`] is one such human's loop —
//! it owns a live [`Workflow`], typed edit handles
//! ([`Session::set_learner_param`], [`Session::replace_operator`],
//! [`Session::rewire`], [`Session::add_output`]) that record a diff
//! between iterations, and a per-session version [`Lineage`] so the
//! change tracker only ever compares the session against *its own*
//! previous iteration. [`Session::iterate`] compiles, executes, and
//! returns the existing [`IterationReport`].
//!
//! A [`SessionManager`] multiplexes many named sessions over one
//! `Arc<Engine>`: every session shares the engine's sharded intermediate
//! store and cost model, so analysts transparently reuse each other's
//! materialized intermediates (reuse falls out of signature identity),
//! while the store's atomic budget ledger keeps concurrent runs from
//! jointly overshooting the storage budget.
//!
//! # Example
//!
//! ```
//! use helix_core::session::{LearnerParam, SessionManager};
//! use helix_core::ops::{EvalSpec, ExtractorKind, LearnerSpec};
//! use helix_core::{Engine, EngineConfig, Workflow};
//! use helix_dataflow::DataType;
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("helix-session-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! std::fs::write(dir.join("train.csv"), "red,1\nblue,0\n".repeat(60)).unwrap();
//! std::fs::write(dir.join("test.csv"), "red,1\nblue,0\n".repeat(20)).unwrap();
//!
//! let mut w = Workflow::new("doc");
//! let data = w
//!     .csv_source("data", dir.join("train.csv"), Some(dir.join("test.csv")))
//!     .unwrap();
//! let rows = w
//!     .csv_scanner("rows", &data, &[("color", DataType::Str), ("y", DataType::Int)])
//!     .unwrap();
//! let color = w
//!     .field_extractor("color_f", &rows, "color", ExtractorKind::Categorical)
//!     .unwrap();
//! let label = w
//!     .field_extractor("label", &rows, "y", ExtractorKind::Numeric)
//!     .unwrap();
//! let examples = w.assemble("examples", &rows, &[&color], &label).unwrap();
//! let preds = w.learner("preds", &examples, LearnerSpec::default()).unwrap();
//! let checked = w.evaluate("checked", &preds, EvalSpec::default()).unwrap();
//! w.output(&checked);
//!
//! let engine = Arc::new(Engine::new(EngineConfig::helix(dir.join("store"))).unwrap());
//! let manager = SessionManager::new(Arc::clone(&engine));
//! let alice = manager.create("alice", w).unwrap();
//!
//! let first = alice.iterate().unwrap();
//! assert_eq!(first.iteration, 0);
//!
//! // The human-in-the-loop edit: one typed knob turn, then rerun.
//! alice.set_learner_param("preds", LearnerParam::RegParam(0.01)).unwrap();
//! let second = alice.iterate().unwrap();
//! assert_eq!(second.iteration, 1);
//! assert!(second.metric("accuracy").is_some());
//! assert!(second.change_summary.contains("reg_param"));
//! ```

use crate::engine::{Engine, Lineage, RunOptions};
use crate::ops::{LearnerSpec, ModelType, OperatorKind};
use crate::report::IterationReport;
use crate::signature::Signature;
use crate::version::VersionStore;
use crate::workflow::{NodeRef, Workflow};
use crate::{HelixError, Result};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One typed knob of a learner — the parameters a user turns between
/// iterations ("change the regularization parameter", §1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LearnerParam {
    /// L2 regularization strength.
    RegParam(f64),
    /// SGD epochs.
    Epochs(usize),
    /// SGD learning rate.
    LearningRate(f64),
    /// Training seed.
    Seed(u64),
    /// Model family.
    Model(ModelType),
}

impl LearnerParam {
    fn apply(self, spec: &mut LearnerSpec) {
        match self {
            LearnerParam::RegParam(v) => spec.reg_param = v,
            LearnerParam::Epochs(v) => spec.epochs = v,
            LearnerParam::LearningRate(v) => spec.learning_rate = v,
            LearnerParam::Seed(v) => spec.seed = v,
            LearnerParam::Model(v) => spec.model_type = v,
        }
    }

    /// Inverse of [`fmt::Display`]: parses a rendered `key=value` knob
    /// back into the typed enum. This is how persisted session edits
    /// replay on recovery, so every variant's rendering must stay
    /// parseable.
    pub fn parse(text: &str) -> Option<LearnerParam> {
        let (key, value) = text.split_once('=')?;
        match key {
            "reg_param" => value.parse().ok().map(LearnerParam::RegParam),
            "epochs" => value.parse().ok().map(LearnerParam::Epochs),
            "learning_rate" => value.parse().ok().map(LearnerParam::LearningRate),
            "seed" => value.parse().ok().map(LearnerParam::Seed),
            "model" => ModelType::from_name(value).map(LearnerParam::Model),
            _ => None,
        }
    }
}

impl fmt::Display for LearnerParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnerParam::RegParam(v) => write!(f, "reg_param={v}"),
            LearnerParam::Epochs(v) => write!(f, "epochs={v}"),
            LearnerParam::LearningRate(v) => write!(f, "learning_rate={v}"),
            LearnerParam::Seed(v) => write!(f, "seed={v}"),
            LearnerParam::Model(v) => write!(f, "model={v}"),
        }
    }
}

/// One recorded edit in a session's between-iterations diff. The pending
/// log becomes the change summary of the next [`Session::iterate`], so
/// the version history says what the user *did*.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowEdit {
    /// A typed learner knob turn.
    SetLearnerParam {
        /// The learner node the user addressed.
        learner: String,
        /// The knob, rendered (`reg_param=0.01`).
        param: String,
    },
    /// An operator swapped in place, wiring kept.
    ReplaceOperator {
        /// The edited node.
        node: String,
        /// Tag of the new operator.
        tag: String,
    },
    /// A node's parents rewired.
    Rewire {
        /// The rewired node.
        node: String,
        /// New parent names, in wiring order.
        parents: Vec<String>,
    },
    /// A node marked as a workflow output.
    AddOutput {
        /// The node now flagged as output.
        node: String,
    },
    /// A freeform structural edit applied through [`Session::edit`].
    Freeform {
        /// Caller-supplied description.
        description: String,
    },
    /// Rows appended to a CSV source's training split through
    /// [`Session::append_data`] — the active-learning "labels came back"
    /// edit. The rows themselves live in the CSV file (durably appended
    /// before the edit is recorded), so the record only describes them.
    AppendData {
        /// The CSV-source node that received the rows.
        source: String,
        /// How many rows were appended.
        rows: usize,
    },
}

impl WorkflowEdit {
    /// Whether this edit can be replayed from its record alone on
    /// recovery. Typed knob turns, rewires, and output additions carry
    /// all their inputs; operator replacements and freeform closures do
    /// not (the closure / the new operator's parameters are not
    /// serialized), so a session containing them recovers in degraded
    /// mode — lineage and history intact, workflow reset to its template.
    pub fn is_replayable(&self) -> bool {
        matches!(
            self,
            WorkflowEdit::SetLearnerParam { .. }
                | WorkflowEdit::Rewire { .. }
                | WorkflowEdit::AddOutput { .. }
                | WorkflowEdit::AppendData { .. }
        )
    }
}

impl fmt::Display for WorkflowEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowEdit::SetLearnerParam { learner, param } => {
                write!(f, "set {learner} {param}")
            }
            WorkflowEdit::ReplaceOperator { node, tag } => {
                write!(f, "replace {node} with {tag}")
            }
            WorkflowEdit::Rewire { node, parents } => {
                write!(f, "rewire {node} <- {}", parents.join(","))
            }
            WorkflowEdit::AddOutput { node } => write!(f, "output {node}"),
            WorkflowEdit::Freeform { description } => f.write_str(description),
            WorkflowEdit::AppendData { source, rows } => {
                write!(f, "append {rows} rows to {source}")
            }
        }
    }
}

/// One prediction ranked by distance from the decision boundary — what
/// [`Session::uncertain_examples`] hands an active-learning oracle to
/// label next.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainExample {
    /// Row index within the predictions output (stable for one
    /// iteration; re-rank after every retrain).
    pub index: usize,
    /// The label the pipeline currently carries for this row.
    pub label: f64,
    /// Raw model score (probability-like, 0..1).
    pub score: f64,
    /// The thresholded decision.
    pub pred: f64,
    /// `|score - 0.5|` — smaller is more uncertain; the sort key.
    pub margin: f64,
}

/// One analyst's iterative loop over a shared engine: a live workflow,
/// typed edit handles, and a private version lineage. See the module
/// docs for the full story and a runnable example.
#[derive(Debug)]
pub struct Session {
    engine: Arc<Engine>,
    name: String,
    workflow: Workflow,
    lineage: Lineage,
    versions: VersionStore,
    edits: Vec<WorkflowEdit>,
    workflow_replaced: bool,
    /// Name of the registry template this session's workflow was built
    /// from — what recovery rebuilds the base workflow with.
    template: Option<String>,
    /// Edits already folded into executed iterations, oldest first (the
    /// full replayable history from the template to the live workflow).
    applied_edits: Vec<WorkflowEdit>,
    /// Set once the live workflow can no longer be rebuilt from
    /// `template` + recorded edits (wholesale [`Session::replace_workflow`]).
    replay_broken: bool,
    /// Whether mutations write a durable session record (enabled by
    /// [`SessionManager`] under a durable engine; standalone sessions
    /// stay in-memory).
    persist_enabled: bool,
}

impl Session {
    /// Creates a session named `name` over `engine`, owning `workflow`
    /// as its live (editable) version.
    pub fn new(engine: Arc<Engine>, name: impl Into<String>, workflow: Workflow) -> Session {
        Session {
            engine,
            name: name.into(),
            workflow,
            lineage: Lineage::new(),
            versions: VersionStore::new(),
            edits: Vec::new(),
            workflow_replaced: false,
            template: None,
            applied_edits: Vec::new(),
            replay_broken: false,
            persist_enabled: false,
        }
    }

    /// The session name (its key in a [`SessionManager`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared engine this session runs on.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The live workflow as currently edited.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// This session's own version history (the engine's
    /// [`Engine::versions`] aggregates all sessions).
    pub fn versions(&self) -> &VersionStore {
        &self.versions
    }

    /// How many iterations this session has executed.
    pub fn iteration(&self) -> usize {
        self.lineage.iteration()
    }

    /// Store signatures this session's lineage still references — the
    /// entries a retention sweep must keep live so the session's next
    /// iteration can reuse its previous results.
    pub fn lineage_signatures(&self) -> Vec<Signature> {
        self.lineage.signatures()
    }

    /// Edits recorded since the last [`Session::iterate`], oldest first.
    pub fn pending_edits(&self) -> &[WorkflowEdit] {
        &self.edits
    }

    /// Edits already folded into executed iterations, oldest first.
    pub fn applied_edits(&self) -> &[WorkflowEdit] {
        &self.applied_edits
    }

    /// The registry template this session was created from, when known.
    pub fn template(&self) -> Option<&str> {
        self.template.as_deref()
    }

    /// Records which registry template built this session's base workflow
    /// (recovery rebuilds from it — see `docs/ARCHITECTURE.md`,
    /// "Durability").
    pub fn set_template(&mut self, template: impl Into<String>) {
        self.template = Some(template.into());
        self.persist();
    }

    // -- durability ----------------------------------------------------------

    /// Turns on durable session records for this session (no-op writes
    /// unless the engine's store is durable too).
    pub(crate) fn enable_persistence(&mut self) {
        self.persist_enabled = true;
    }

    /// Writes this session's durable record atomically, if persistence is
    /// enabled. Best-effort by design: a failed write warns and leaves
    /// the previous record in place (the next successful write heals it);
    /// it never fails the edit or iteration that triggered it.
    pub(crate) fn persist(&self) {
        let config = self.engine.config();
        if !self.persist_enabled || !config.durability.is_durable() {
            return;
        }
        let record = crate::persist::SessionRecord {
            name: self.name.clone(),
            template: self.template.clone(),
            workflow_replaced: self.replay_broken,
            lineage: self.lineage.clone(),
            applied_edits: self.applied_edits.clone(),
            pending_edits: self.edits.clone(),
            versions: self.versions.all().to_vec(),
        };
        let path = crate::persist::session_path(&config.store_dir, &self.name);
        if let Err(err) = crate::persist::save_session_record(&path, &record) {
            eprintln!(
                "helix: warning: failed to persist session `{}`: {err}",
                self.name
            );
        }
    }

    /// Replays one persisted edit against the live workflow without
    /// recording it again. Returns false when the edit is not replayable
    /// (or no longer applies), which flips recovery into degraded mode.
    fn replay_edit(&mut self, edit: &WorkflowEdit) -> bool {
        let before = self.edits.len();
        let ok = match edit {
            WorkflowEdit::SetLearnerParam { learner, param } => LearnerParam::parse(param)
                .map(|p| self.set_learner_param(learner, p).is_ok())
                .unwrap_or(false),
            WorkflowEdit::Rewire { node, parents } => {
                let refs: Vec<&str> = parents.iter().map(String::as_str).collect();
                self.rewire(node, &refs).is_ok()
            }
            WorkflowEdit::AddOutput { node } => self.add_output(node).is_ok(),
            // The appended rows are already durably in the CSV file (the
            // append fsyncs before the edit is recorded), and data-content
            // signing rediscovers the delta from the file itself — so the
            // replay is a successful no-op.
            WorkflowEdit::AppendData { .. } => true,
            WorkflowEdit::ReplaceOperator { .. } | WorkflowEdit::Freeform { .. } => false,
        };
        // The typed handles above record the replayed edit as *pending*;
        // drop that duplicate — the caller decides which list it belongs
        // to from the persisted record.
        self.edits.truncate(before);
        ok
    }

    // -- typed edit handles --------------------------------------------------

    /// Turns one knob of a learner: resolves `learner` to its training
    /// node (accepting either a [`Workflow::learner`] predictions name or
    /// a direct [`Workflow::train`] node), updates the spec field, and
    /// records the edit.
    pub fn set_learner_param(&mut self, learner: &str, param: LearnerParam) -> Result<()> {
        let id = self.workflow.train_node(learner)?;
        let node_name = self.workflow.node(id).name.clone();
        let OperatorKind::Train(spec) = &self.workflow.node(id).kind else {
            unreachable!("train_node returns Train nodes only");
        };
        let mut spec = spec.clone();
        param.apply(&mut spec);
        self.workflow
            .replace_operator(&node_name, OperatorKind::Train(spec))?;
        self.edits.push(WorkflowEdit::SetLearnerParam {
            learner: learner.to_string(),
            param: param.to_string(),
        });
        self.persist();
        Ok(())
    }

    /// Replaces the operator at a named node, keeping its wiring (the
    /// paper's "swap the eval metric" class of edits).
    pub fn replace_operator(&mut self, node: &str, kind: OperatorKind) -> Result<()> {
        let tag = kind.tag().to_string();
        self.workflow.replace_operator(node, kind)?;
        self.edits.push(WorkflowEdit::ReplaceOperator {
            node: node.to_string(),
            tag,
        });
        self.persist();
        Ok(())
    }

    /// Rewires the parents of a named node, addressing parents by name
    /// (the paper's `has_extractors` edit).
    pub fn rewire(&mut self, node: &str, parents: &[&str]) -> Result<()> {
        let refs: Vec<NodeRef> = parents
            .iter()
            .map(|p| self.workflow.node_ref(p))
            .collect::<Result<_>>()?;
        let borrowed: Vec<&NodeRef> = refs.iter().collect();
        self.workflow.rewire(node, &borrowed)?;
        self.edits.push(WorkflowEdit::Rewire {
            node: node.to_string(),
            parents: parents.iter().map(|p| p.to_string()).collect(),
        });
        self.persist();
        Ok(())
    }

    /// Marks a named node as a workflow output.
    pub fn add_output(&mut self, node: &str) -> Result<()> {
        let r = self.workflow.node_ref(node)?;
        self.workflow.output(&r);
        self.edits.push(WorkflowEdit::AddOutput {
            node: node.to_string(),
        });
        self.persist();
        Ok(())
    }

    /// Appends labeled rows to a CSV source's training split — the data
    /// half of the active-learning loop ("fetch uncertain examples, label
    /// them, feed the labels back"). The rows are durably appended to the
    /// CSV file itself (staged through a fsynced sidecar so a crash
    /// mid-append can never tear the file; see [`crate::data`]) before the
    /// edit is recorded, so an acknowledged append survives any crash.
    /// The next [`Session::iterate`] sees the delta through data-content
    /// signing: only partitions downstream of the appended chunk
    /// recompute, unchanged partitions serve from the store.
    ///
    /// # Errors
    /// [`HelixError::Workflow`] if `source` is not a CSV-source node or a
    /// row is blank / contains a newline.
    pub fn append_data(&mut self, source: &str, rows: &[String]) -> Result<usize> {
        let r = self.workflow.node_ref(source)?;
        let OperatorKind::CsvSource { train_path, .. } = &self.workflow.node(r.0).kind else {
            return Err(HelixError::Workflow(format!(
                "node `{source}` is not a csv_source; data can only be appended to sources"
            )));
        };
        let path = train_path.clone();
        let appended = crate::data::append_lines(&path, rows)?;
        self.edits.push(WorkflowEdit::AppendData {
            source: source.to_string(),
            rows: appended,
        });
        self.persist();
        Ok(appended)
    }

    /// The `k` most-uncertain predictions from this session's last
    /// iteration — test-split rows whose score sits closest to the 0.5
    /// decision boundary, the examples an active-learning oracle should
    /// label next. Resolves the workflow's Apply (predictions) node
    /// through the lineage's previous-iteration signatures and fetches
    /// its materialized output from the store.
    ///
    /// # Errors
    /// [`HelixError::Workflow`] if the session has not iterated yet or
    /// the workflow has no Apply node; [`HelixError::Store`] if the
    /// predictions output is not materialized.
    pub fn uncertain_examples(&self, k: usize) -> Result<Vec<UncertainExample>> {
        let Some(prev) = self.lineage.previous_map() else {
            return Err(HelixError::Workflow(format!(
                "session `{}` has not iterated yet; nothing to rank",
                self.name
            )));
        };
        let apply = self
            .workflow
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, OperatorKind::Apply))
            .ok_or_else(|| {
                HelixError::Workflow(format!(
                    "session `{}` has no predictions (Apply) node",
                    self.name
                ))
            })?;
        let &(_, sig) = prev.get(&apply.name).ok_or_else(|| {
            HelixError::Workflow(format!(
                "predictions node `{}` was not part of the last iteration",
                apply.name
            ))
        })?;
        let output = self.engine.fetch(sig)?;
        let data = output.as_data()?;
        let split_idx = data.column_index(crate::SPLIT_COL)?;
        let label_idx = data.column_index("label")?;
        let score_idx = data.column_index("score")?;
        let pred_idx = data.column_index("pred")?;
        let mut ranked: Vec<UncertainExample> = data
            .rows()
            .iter()
            .enumerate()
            .filter(|(_, row)| row.get(split_idx).as_str() == Some(crate::SPLIT_TEST))
            .map(|(index, row)| {
                let score = row.get(score_idx).as_f64().unwrap_or(0.0);
                UncertainExample {
                    index,
                    label: row.get(label_idx).as_f64().unwrap_or(0.0),
                    score,
                    pred: row.get(pred_idx).as_f64().unwrap_or(0.0),
                    margin: (score - 0.5).abs(),
                }
            })
            .collect();
        ranked.sort_by(|a, b| {
            a.margin
                .partial_cmp(&b.margin)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        ranked.truncate(k);
        Ok(ranked)
    }

    /// Applies an arbitrary structural edit to the live workflow (adding
    /// nodes, wiring new extractors) and records it under `description`.
    /// The edit is atomic: the closure runs against a scratch copy, so an
    /// error leaves the live workflow exactly as it was — no
    /// half-applied mutations and no edit record.
    pub fn edit<R>(
        &mut self,
        description: impl Into<String>,
        f: impl FnOnce(&mut Workflow) -> Result<R>,
    ) -> Result<R> {
        let mut scratch = self.workflow.clone();
        let value = f(&mut scratch)?;
        self.workflow = scratch;
        self.edits.push(WorkflowEdit::Freeform {
            description: description.into(),
        });
        self.persist();
        Ok(value)
    }

    /// Swaps in a freshly built workflow wholesale — the migration path
    /// for parameter-struct workloads that rebuild per iteration. Clears
    /// the typed edit log (it no longer describes the delta); the next
    /// iteration's summary is derived from the signature diff instead,
    /// even if typed edits are applied after the swap (the diff covers
    /// both, a partial edit log would not).
    pub fn replace_workflow(&mut self, workflow: Workflow) {
        self.workflow = workflow;
        self.edits.clear();
        self.workflow_replaced = true;
        // The live workflow no longer derives from template + edit log,
        // so the durable record switches to degraded mode (recovery
        // restores lineage and history but resets to the template).
        self.replay_broken = true;
        self.applied_edits.clear();
        self.persist();
    }

    /// [`Session::replace_workflow`] for a workflow freshly built from a
    /// named registry template (the server's `PUT .../workflow`).
    /// Because the new workflow *is* the template with no edits on top,
    /// the durable record stays exactly recoverable instead of degraded.
    pub fn replace_workflow_from_template(
        &mut self,
        workflow: Workflow,
        template: impl Into<String>,
    ) {
        self.workflow = workflow;
        self.edits.clear();
        self.workflow_replaced = true;
        self.applied_edits.clear();
        self.replay_broken = false;
        self.template = Some(template.into());
        self.persist();
    }

    // -- execution -----------------------------------------------------------

    /// Compiles the live workflow against this session's lineage without
    /// executing it (plan preview).
    pub fn compile_preview(&self) -> Result<crate::compiler::CompiledPlan> {
        self.engine.compile_in(&self.workflow, &self.lineage)
    }

    /// Runs one iteration of the live workflow: the recorded edit log
    /// becomes the version's change summary, the report lands in both the
    /// session's and the engine's history, and the lineage advances.
    /// Requires only `&self` on the engine, so any number of sessions
    /// iterate concurrently over one `Arc<Engine>`.
    pub fn iterate(&mut self) -> Result<IterationReport> {
        let summary = if self.workflow_replaced || self.edits.is_empty() {
            None
        } else {
            let parts: Vec<String> = self.edits.iter().map(|e| e.to_string()).collect();
            Some(parts.join("; "))
        };
        let options = RunOptions {
            session: Some(self.name.clone()),
            summary,
        };
        let report = self
            .engine
            .run_in(&self.workflow, &mut self.lineage, options)?;
        self.versions.record(&report);
        self.applied_edits.append(&mut self.edits);
        self.workflow_replaced = false;
        self.persist();
        Ok(report)
    }
}

use crate::lock;

/// A cloneable, thread-safe handle to one managed [`Session`]. All
/// methods take `&self` and serialize on the session's own lock —
/// distinct sessions never contend.
///
/// Every accessor also *touches* the handle's idle clock, so a session
/// being used — read or written — never looks idle to
/// [`SessionManager::evict_idle`].
#[derive(Debug, Clone)]
pub struct SessionHandle {
    name: String,
    inner: Arc<Mutex<Session>>,
    touched: Arc<Mutex<Instant>>,
}

impl SessionHandle {
    /// Wraps a standalone session in a shareable handle.
    pub fn from_session(session: Session) -> SessionHandle {
        SessionHandle {
            name: session.name.clone(),
            inner: Arc::new(Mutex::new(session)),
            touched: Arc::new(Mutex::new(Instant::now())),
        }
    }

    /// The session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets the idle clock — called by every accessor; also available
    /// directly for traffic that observes a session without going
    /// through the handle's methods.
    pub fn touch(&self) {
        *lock(&self.touched) = Instant::now();
    }

    /// Time since this handle's session was last accessed through any
    /// accessor (or explicit [`SessionHandle::touch`]).
    pub fn idle_for(&self) -> Duration {
        lock(&self.touched).elapsed()
    }

    /// Runs `f` with exclusive access to the session (for inspection or
    /// several edits under one lock hold).
    pub fn with<R>(&self, f: impl FnOnce(&mut Session) -> R) -> R {
        self.touch();
        f(&mut lock(&self.inner))
    }

    /// See [`Session::iterate`].
    pub fn iterate(&self) -> Result<IterationReport> {
        self.touch();
        lock(&self.inner).iterate()
    }

    /// See [`Session::set_learner_param`].
    pub fn set_learner_param(&self, learner: &str, param: LearnerParam) -> Result<()> {
        self.touch();
        lock(&self.inner).set_learner_param(learner, param)
    }

    /// See [`Session::replace_operator`].
    pub fn replace_operator(&self, node: &str, kind: OperatorKind) -> Result<()> {
        self.touch();
        lock(&self.inner).replace_operator(node, kind)
    }

    /// See [`Session::rewire`].
    pub fn rewire(&self, node: &str, parents: &[&str]) -> Result<()> {
        self.touch();
        lock(&self.inner).rewire(node, parents)
    }

    /// See [`Session::add_output`].
    pub fn add_output(&self, node: &str) -> Result<()> {
        self.touch();
        lock(&self.inner).add_output(node)
    }

    /// See [`Session::append_data`].
    pub fn append_data(&self, source: &str, rows: &[String]) -> Result<usize> {
        self.touch();
        lock(&self.inner).append_data(source, rows)
    }

    /// See [`Session::uncertain_examples`].
    pub fn uncertain_examples(&self, k: usize) -> Result<Vec<UncertainExample>> {
        self.touch();
        lock(&self.inner).uncertain_examples(k)
    }

    /// See [`Session::edit`].
    pub fn edit<R>(
        &self,
        description: impl Into<String>,
        f: impl FnOnce(&mut Workflow) -> Result<R>,
    ) -> Result<R> {
        self.touch();
        lock(&self.inner).edit(description, f)
    }

    /// See [`Session::replace_workflow`].
    pub fn replace_workflow(&self, workflow: Workflow) {
        self.touch();
        lock(&self.inner).replace_workflow(workflow)
    }

    /// See [`Session::set_template`].
    pub fn set_template(&self, template: impl Into<String>) {
        self.touch();
        lock(&self.inner).set_template(template)
    }

    /// See [`Session::replace_workflow_from_template`].
    pub fn replace_workflow_from_template(&self, workflow: Workflow, template: impl Into<String>) {
        self.touch();
        lock(&self.inner).replace_workflow_from_template(workflow, template)
    }

    /// How many iterations the session has executed.
    pub fn iteration(&self) -> usize {
        self.touch();
        lock(&self.inner).iteration()
    }

    /// Point-in-time snapshot of this session's version history (the
    /// wire layer's history/lineage reads — no lock held after return).
    pub fn versions(&self) -> VersionStore {
        self.touch();
        lock(&self.inner).versions().clone()
    }
}

/// Called when a session leaves the manager (explicit [`SessionManager::remove`]
/// or [`SessionManager::evict_idle`]): receives the departing session's
/// name and the store signatures its lineage referenced that **no
/// surviving session still references** — the entries a store retention
/// policy may now evict without hurting any live analyst.
pub type RetentionHook = Arc<dyn Fn(&str, &[Signature]) + Send + Sync>;

/// Multiplexes many named sessions over one shared engine. Creating,
/// fetching, and removing sessions takes `&self`; handed-out
/// [`SessionHandle`]s stay valid after removal (removal only unregisters
/// the name).
///
/// The manager is also the server's idle-session authority: every
/// [`SessionHandle`] accessor touches its idle clock, and
/// [`SessionManager::evict_idle`] sweeps sessions idle past a TTL,
/// firing the optional [`RetentionHook`] so the intermediate store can
/// reclaim entries only departed sessions referenced.
pub struct SessionManager {
    engine: Arc<Engine>,
    sessions: Mutex<BTreeMap<String, SessionHandle>>,
    retention: Mutex<Option<RetentionHook>>,
    /// How many sessions [`SessionManager::recover`] rebuilt from durable
    /// records (surfaced by the server's `/stats`).
    recovered: std::sync::atomic::AtomicUsize,
}

impl fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionManager")
            .field("engine", &self.engine)
            .field("sessions", &self.sessions)
            .field("retention", &lock(&self.retention).is_some())
            .finish()
    }
}

impl SessionManager {
    /// A manager over an existing shared engine.
    pub fn new(engine: Arc<Engine>) -> SessionManager {
        SessionManager {
            engine,
            sessions: Mutex::new(BTreeMap::new()),
            retention: Mutex::new(None),
            recovered: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Convenience: opens a fresh engine from `config` and wraps it.
    pub fn with_config(config: crate::EngineConfig) -> Result<SessionManager> {
        Ok(SessionManager::new(Arc::new(Engine::new(config)?)))
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Creates (and registers) a named session owning `workflow`.
    ///
    /// # Errors
    /// [`HelixError::Workflow`] if the name is already taken.
    pub fn create(&self, name: &str, workflow: Workflow) -> Result<SessionHandle> {
        self.create_with_template(name, workflow, None)
    }

    /// [`SessionManager::create`] with the registry template the workflow
    /// was built from, so a durable engine can rebuild the session after
    /// a restart. Sessions created without a template still persist their
    /// lineage and history but cannot be recovered (the base workflow is
    /// not serializable).
    pub fn create_with_template(
        &self,
        name: &str,
        workflow: Workflow,
        template: Option<&str>,
    ) -> Result<SessionHandle> {
        let mut sessions = lock(&self.sessions);
        if sessions.contains_key(name) {
            return Err(HelixError::Workflow(format!(
                "session `{name}` already exists"
            )));
        }
        let mut session = Session::new(Arc::clone(&self.engine), name, workflow);
        if let Some(template) = template {
            session.template = Some(template.to_string());
        }
        if self.engine.config().durability.is_durable() {
            session.enable_persistence();
            session.persist();
        }
        let handle = SessionHandle::from_session(session);
        sessions.insert(name.to_string(), handle.clone());
        Ok(handle)
    }

    /// Rebuilds sessions from the durable records under the engine's
    /// store directory: for each record, `rebuild` maps its template name
    /// back to a base [`Workflow`] (the server passes its workflow
    /// registry), the recorded edits replay on top, and lineage plus
    /// version history restore verbatim. Records that are corrupt, have
    /// no template, or whose template is unknown are skipped with a
    /// warning; records containing non-replayable edits recover degraded
    /// (template workflow, intact history). Returns how many sessions
    /// were registered; a volatile engine recovers nothing.
    pub fn recover(&self, rebuild: impl Fn(&str) -> Option<Workflow>) -> usize {
        let config = self.engine.config();
        if !config.durability.is_durable() {
            return 0;
        }
        let dir = crate::persist::sessions_dir(&config.store_dir);
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return 0;
        };
        let mut count = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension() != Some(std::ffi::OsStr::new("json")) {
                continue;
            }
            let record = match crate::persist::load_session_record(&path) {
                Ok(record) => record,
                Err(err) => {
                    eprintln!("helix: warning: skipping corrupt session record: {err}");
                    continue;
                }
            };
            if lock(&self.sessions).contains_key(&record.name) {
                continue;
            }
            let Some(template) = record.template.clone() else {
                eprintln!(
                    "helix: warning: session `{}` has no workflow template; not recovered",
                    record.name
                );
                continue;
            };
            let Some(base) = rebuild(&template) else {
                eprintln!(
                    "helix: warning: unknown workflow template `{template}` for session `{}`; not recovered",
                    record.name
                );
                continue;
            };
            let mut session = Session::new(Arc::clone(&self.engine), &record.name, base);
            session.template = Some(template);
            let mut degraded = record.workflow_replaced;
            if !degraded {
                for edit in &record.applied_edits {
                    if !session.replay_edit(edit) {
                        degraded = true;
                        break;
                    }
                }
            }
            session.applied_edits = record.applied_edits;
            if !degraded {
                for edit in &record.pending_edits {
                    if session.replay_edit(edit) {
                        session.edits.push(edit.clone());
                    } else {
                        degraded = true;
                        break;
                    }
                }
            }
            if degraded {
                // The live workflow is the bare template; the next
                // iteration derives its summary from the signature diff
                // and recomputes what the lineage no longer matches.
                session.replay_broken = true;
                session.workflow_replaced = true;
                session.edits.clear();
            }
            session.lineage = record.lineage;
            session.versions = VersionStore::from_versions(record.versions);
            session.enable_persistence();
            lock(&self.sessions).insert(record.name.clone(), SessionHandle::from_session(session));
            count += 1;
        }
        self.recovered
            .fetch_add(count, std::sync::atomic::Ordering::Relaxed);
        count
    }

    /// How many sessions [`SessionManager::recover`] rebuilt.
    pub fn recovered_sessions(&self) -> usize {
        self.recovered.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Rewrites every registered session's durable record (the
    /// session-level half of a `POST /admin/snapshot` checkpoint; no-op
    /// under a volatile engine).
    pub fn persist_all(&self) {
        let handles: Vec<SessionHandle> = lock(&self.sessions).values().cloned().collect();
        for handle in handles {
            handle.with(|s| s.persist());
        }
    }

    /// Removes a departed session's durable record, if any.
    fn delete_record(&self, name: &str) {
        let config = self.engine.config();
        if config.durability.is_durable() {
            let _ = std::fs::remove_file(crate::persist::session_path(&config.store_dir, name));
        }
    }

    /// Fetches a registered session by name.
    pub fn get(&self, name: &str) -> Option<SessionHandle> {
        lock(&self.sessions).get(name).cloned()
    }

    /// Unregisters a session, returning its handle (still usable by any
    /// holder). Fires the retention hook with the signatures now
    /// unreferenced by every surviving session.
    pub fn remove(&self, name: &str) -> Option<SessionHandle> {
        let handle = lock(&self.sessions).remove(name)?;
        self.delete_record(name);
        self.release(&handle);
        Some(handle)
    }

    /// Installs the store-retention callback fired when sessions leave
    /// the manager (see [`RetentionHook`]). Replaces any previous hook.
    /// The hook must not call back into this manager.
    pub fn set_retention_hook(&self, hook: impl Fn(&str, &[Signature]) + Send + Sync + 'static) {
        *lock(&self.retention) = Some(Arc::new(hook));
    }

    /// Store signatures referenced by at least one registered session's
    /// lineage, deduplicated — the keep-set for a store retention sweep.
    pub fn retained_signatures(&self) -> Vec<Signature> {
        let handles: Vec<SessionHandle> = lock(&self.sessions).values().cloned().collect();
        let mut seen = BTreeSet::new();
        for handle in handles {
            for sig in handle.with(|s| s.lineage_signatures()) {
                seen.insert(sig.0);
            }
        }
        seen.into_iter().map(Signature).collect()
    }

    /// Evicts (unregisters) every session idle for at least `ttl`,
    /// returning the evicted names. Any accessor call on a session's
    /// handle resets its clock, so only genuinely abandoned sessions
    /// qualify; outstanding handles stay usable (eviction only
    /// unregisters the name, exactly like [`SessionManager::remove`]).
    pub fn evict_idle(&self, ttl: Duration) -> Vec<String> {
        let expired: Vec<SessionHandle> = lock(&self.sessions)
            .values()
            .filter(|handle| handle.idle_for() >= ttl)
            .cloned()
            .collect();
        let mut evicted = Vec::new();
        for handle in expired {
            {
                let mut sessions = lock(&self.sessions);
                // Re-check under the registry lock: the session may have
                // been touched (or already removed) since the scan.
                if handle.idle_for() < ttl || sessions.remove(handle.name()).is_none() {
                    continue;
                }
            }
            self.delete_record(handle.name());
            self.release(&handle);
            evicted.push(handle.name().to_string());
        }
        evicted
    }

    /// Fires the retention hook for a departed session with the
    /// signatures no surviving session still references. The hook is
    /// cloned out of its lock before running, so a slow hook never
    /// blocks registry traffic.
    fn release(&self, handle: &SessionHandle) {
        let Some(hook) = lock(&self.retention).clone() else {
            return;
        };
        let mine = handle.with(|s| s.lineage_signatures());
        let retained: BTreeSet<u64> = self
            .retained_signatures()
            .into_iter()
            .map(|sig| sig.0)
            .collect();
        let unreferenced: Vec<Signature> = mine
            .into_iter()
            .filter(|sig| !retained.contains(&sig.0))
            .collect();
        hook(handle.name(), &unreferenced);
    }

    /// Registered session names, sorted.
    pub fn names(&self) -> Vec<String> {
        lock(&self.sessions).keys().cloned().collect()
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        lock(&self.sessions).len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        lock(&self.sessions).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{EvalSpec, ExtractorKind, LearnerSpec, MetricKind};
    use crate::{EngineConfig, NodeState};
    use helix_dataflow::DataType;
    use std::path::{Path, PathBuf};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn workflow(dir: &Path, reg: f64) -> Workflow {
        let train = dir.join("train.csv");
        let test = dir.join("test.csv");
        if !train.exists() {
            std::fs::write(&train, "BS,30,1\nMS,40,0\n".repeat(2_000)).unwrap();
            std::fs::write(&test, "BS,35,1\nMS,45,0\n".repeat(400)).unwrap();
        }
        let mut w = Workflow::new("session-mini");
        let data = w.csv_source("data", &train, Some(&test)).unwrap();
        let rows = w
            .csv_scanner(
                "rows",
                &data,
                &[
                    ("edu", DataType::Str),
                    ("age", DataType::Int),
                    ("target", DataType::Int),
                ],
            )
            .unwrap();
        let edu = w
            .field_extractor("edu_f", &rows, "edu", ExtractorKind::Categorical)
            .unwrap();
        let age = w
            .field_extractor("age_f", &rows, "age", ExtractorKind::Numeric)
            .unwrap();
        let target = w
            .field_extractor("target_f", &rows, "target", ExtractorKind::Numeric)
            .unwrap();
        let income = w.assemble("income", &rows, &[&edu, &age], &target).unwrap();
        let preds = w
            .learner(
                "predictions",
                &income,
                LearnerSpec {
                    reg_param: reg,
                    ..Default::default()
                },
            )
            .unwrap();
        let checked = w
            .evaluate(
                "checked",
                &preds,
                EvalSpec {
                    metrics: vec![MetricKind::Accuracy],
                    split: crate::SPLIT_TEST.into(),
                },
            )
            .unwrap();
        w.output(&preds);
        w.output(&checked);
        w
    }

    fn engine(dir: &Path) -> Arc<Engine> {
        Arc::new(Engine::new(EngineConfig::helix(dir.join("store"))).unwrap())
    }

    #[test]
    fn typed_edit_drives_reuse_and_summary() {
        let dir = tmpdir("typed");
        let mut session = Session::new(engine(&dir), "alice", workflow(&dir, 0.1));
        let first = session.iterate().unwrap();
        assert_eq!(first.change_summary, "initial version");
        assert_eq!(first.session.as_deref(), Some("alice"));

        session
            .set_learner_param("predictions", LearnerParam::RegParam(0.9))
            .unwrap();
        assert_eq!(session.pending_edits().len(), 1);
        let second = session.iterate().unwrap();
        assert!(session.pending_edits().is_empty(), "edit log drained");
        assert_eq!(second.change_summary, "set predictions reg_param=0.9");
        // The ML-only edit reuses pre-processing: income loads.
        let income = second.nodes.iter().find(|n| n.name == "income").unwrap();
        assert_eq!(income.state, NodeState::Load);
        let model = second
            .nodes
            .iter()
            .find(|n| n.name == "predictions__model")
            .unwrap();
        assert_eq!(model.state, NodeState::Compute);
        assert_eq!(session.versions().len(), 2);
    }

    #[test]
    fn edit_closure_and_rewire_record_freeform_diffs() {
        let dir = tmpdir("freeform");
        let mut session = Session::new(engine(&dir), "bob", workflow(&dir, 0.1));
        session.iterate().unwrap();
        session
            .edit("add age bucketizer", |w| {
                let age = w.node_ref("age_f")?;
                w.bucketizer("age_bucket", &age, 4)?;
                Ok(())
            })
            .unwrap();
        session
            .rewire("income", &["rows", "edu_f", "age_bucket", "target_f"])
            .unwrap();
        let report = session.iterate().unwrap();
        assert_eq!(
            report.change_summary,
            "add age bucketizer; rewire income <- rows,edu_f,age_bucket,target_f"
        );
        assert!(report.metric("accuracy").is_some());
        // The recorded diff also shows up structurally in the lineage.
        let diff = session.versions().diff(0, 1).unwrap();
        assert_eq!(diff.added, vec!["age_bucket".to_string()]);
    }

    #[test]
    fn replace_operator_and_add_output_handles() {
        let dir = tmpdir("replace-op");
        let mut session = Session::new(engine(&dir), "eve", workflow(&dir, 0.1));
        session.iterate().unwrap();
        session
            .replace_operator(
                "checked",
                OperatorKind::Evaluate(EvalSpec {
                    metrics: vec![MetricKind::F1],
                    split: crate::SPLIT_TEST.into(),
                }),
            )
            .unwrap();
        let report = session.iterate().unwrap();
        assert!(report.metric("f1").is_some());
        assert!(report.metric("accuracy").is_none());
        assert!(report.change_summary.contains("replace checked"));

        session.add_output("income").unwrap();
        let report = session.iterate().unwrap();
        assert!(report.change_summary.contains("output income"));
    }

    #[test]
    fn replace_workflow_clears_edits_and_derives_summary() {
        let dir = tmpdir("replace-wf");
        let mut session = Session::new(engine(&dir), "carol", workflow(&dir, 0.1));
        session.iterate().unwrap();
        session
            .set_learner_param("predictions", LearnerParam::Epochs(6))
            .unwrap();
        session.replace_workflow(workflow(&dir, 0.5));
        assert!(session.pending_edits().is_empty());
        let report = session.iterate().unwrap();
        assert!(
            report.change_summary.contains("predictions__model"),
            "signature-derived summary names the changed node, got: {}",
            report.change_summary
        );
    }

    #[test]
    fn typed_edit_after_replace_workflow_still_derives_summary_from_diff() {
        let dir = tmpdir("replace-then-edit");
        let mut session = Session::new(engine(&dir), "carol", workflow(&dir, 0.1));
        session.iterate().unwrap();
        session.replace_workflow(workflow(&dir, 0.5));
        session
            .set_learner_param("predictions", LearnerParam::Epochs(6))
            .unwrap();
        let report = session.iterate().unwrap();
        // The summary must describe the wholesale swap (signature diff),
        // not just the one typed edit applied after it.
        assert!(
            report.change_summary.contains("predictions__model"),
            "signature-derived summary names the changed node, got: {}",
            report.change_summary
        );
        assert_ne!(report.change_summary, "set predictions epochs=6");
        // A follow-up iteration with only typed edits goes back to the
        // edit-log summary.
        session
            .set_learner_param("predictions", LearnerParam::Epochs(8))
            .unwrap();
        let report = session.iterate().unwrap();
        assert_eq!(report.change_summary, "set predictions epochs=8");
    }

    #[test]
    fn manager_registers_fetches_and_rejects_duplicates() {
        let dir = tmpdir("manager");
        let manager = SessionManager::new(engine(&dir));
        assert!(manager.is_empty());
        let a = manager.create("alice", workflow(&dir, 0.1)).unwrap();
        manager.create("bob", workflow(&dir, 0.2)).unwrap();
        assert!(manager.create("alice", workflow(&dir, 0.3)).is_err());
        assert_eq!(manager.names(), vec!["alice", "bob"]);
        assert_eq!(manager.len(), 2);
        assert_eq!(manager.get("alice").unwrap().name(), "alice");
        assert!(manager.get("zed").is_none());

        a.iterate().unwrap();
        assert_eq!(a.iteration(), 1);
        let removed = manager.remove("alice").unwrap();
        assert_eq!(manager.len(), 1);
        // The removed handle stays usable.
        removed.iterate().unwrap();
        assert_eq!(removed.iteration(), 2);
    }

    #[test]
    fn sessions_share_materializations_through_one_engine() {
        let dir = tmpdir("shared");
        let manager = SessionManager::new(engine(&dir));
        let alice = manager.create("alice", workflow(&dir, 0.1)).unwrap();
        let bob = manager.create("bob", workflow(&dir, 0.1)).unwrap();
        let first = alice.iterate().unwrap();
        assert_eq!(first.loaded(), 0);
        // Bob's *first* iteration reuses Alice's materializations.
        let cross = bob.iterate().unwrap();
        assert!(cross.loaded() > 0, "cross-session reuse");
        assert_eq!(first.metrics, cross.metrics);
        // Both lineages recorded their own initial version.
        assert_eq!(alice.with(|s| s.versions().len()), 1);
        assert_eq!(bob.with(|s| s.versions().len()), 1);
        assert_eq!(manager.engine().versions().len(), 2);
    }

    #[test]
    fn evict_idle_spares_touched_sessions() {
        let dir = tmpdir("evict-idle");
        let manager = SessionManager::new(engine(&dir));
        let active = manager.create("active", workflow(&dir, 0.1)).unwrap();
        manager.create("idle", workflow(&dir, 0.2)).unwrap();
        std::thread::sleep(Duration::from_millis(700));
        // Any accessor counts as a touch.
        let _ = active.iteration();
        let evicted = manager.evict_idle(Duration::from_millis(500));
        assert_eq!(evicted, vec!["idle".to_string()]);
        assert_eq!(manager.names(), vec!["active"]);
        // The evicted name is free again.
        manager.create("idle", workflow(&dir, 0.2)).unwrap();
    }

    #[test]
    fn retention_hook_reports_only_unreferenced_signatures() {
        let dir = tmpdir("retention");
        let manager = SessionManager::new(engine(&dir));
        let released: Arc<Mutex<Vec<(String, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&released);
        manager.set_retention_hook(move |name, sigs| {
            lock(&sink).push((name.to_string(), sigs.len()));
        });

        // Two sessions over the *same* workflow share every signature.
        let alice = manager.create("alice", workflow(&dir, 0.1)).unwrap();
        let bob = manager.create("bob", workflow(&dir, 0.1)).unwrap();
        alice.iterate().unwrap();
        bob.iterate().unwrap();
        let shared = manager.retained_signatures().len();
        assert!(shared > 0, "iterated sessions must reference signatures");

        // Removing alice frees nothing: bob still references everything.
        manager.remove("alice").unwrap();
        {
            let calls = lock(&released);
            assert_eq!(calls.as_slice(), &[("alice".to_string(), 0)]);
        }
        // Removing bob frees the whole shared set.
        manager.remove("bob").unwrap();
        let calls = lock(&released);
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[1].0, "bob");
        assert_eq!(calls[1].1, shared, "last holder releases every signature");
    }

    #[test]
    fn retention_hook_can_evict_store_entries() {
        // The intended wiring: hook unreferenced signatures straight into
        // IntermediateStore::evict, shrinking the store when the last
        // session referencing an entry departs.
        let dir = tmpdir("retention-store");
        let eng = engine(&dir);
        let manager = SessionManager::new(Arc::clone(&eng));
        let store = Arc::clone(&eng);
        manager.set_retention_hook(move |_, sigs| {
            for &sig in sigs {
                let _ = store.store().evict(sig);
            }
        });
        let alice = manager.create("alice", workflow(&dir, 0.1)).unwrap();
        alice.iterate().unwrap();
        assert!(eng.store().used_bytes() > 0, "iteration materializes");
        manager.remove("alice").unwrap();
        // Everything alice's lineage referenced is gone from the store.
        for sig in alice.with(|s| s.lineage_signatures()) {
            assert!(
                eng.store().lookup(sig).is_none(),
                "signature {} should have been evicted",
                sig.hex()
            );
        }
    }

    fn durable_engine(dir: &Path) -> Arc<Engine> {
        Arc::new(
            Engine::new(
                EngineConfig::helix(dir.join("store"))
                    .with_durability(crate::Durability::wal_nosync()),
            )
            .unwrap(),
        )
    }

    #[test]
    fn manager_recovers_sessions_with_replayed_edits() {
        let dir = tmpdir("recover");
        {
            let manager = SessionManager::new(durable_engine(&dir));
            let alice = manager
                .create_with_template("alice", workflow(&dir, 0.1), Some("census"))
                .unwrap();
            alice.iterate().unwrap();
            alice
                .set_learner_param("predictions", LearnerParam::RegParam(0.9))
                .unwrap();
            alice.iterate().unwrap();
        } // process "dies" here: nothing is shut down in order

        let manager = SessionManager::new(durable_engine(&dir));
        let recovered =
            manager.recover(|template| (template == "census").then(|| workflow(&dir, 0.1)));
        assert_eq!(recovered, 1);
        assert_eq!(manager.recovered_sessions(), 1);
        let alice = manager.get("alice").unwrap();
        assert_eq!(alice.iteration(), 2, "lineage counter survives");
        let versions = alice.versions();
        assert_eq!(versions.len(), 2, "private history survives");
        assert_eq!(
            versions.get(1).unwrap().change_summary,
            "set predictions reg_param=0.9"
        );
        assert_eq!(
            alice.with(|s| s.applied_edits().len()),
            1,
            "edit history survives"
        );

        // The replayed workflow matches the pre-restart one exactly: the
        // restored lineage sees no changes and the reopened store serves
        // the same signatures.
        let report = alice.iterate().unwrap();
        assert_eq!(report.change_summary, "no changes");
        assert!(report.loaded() > 0, "restart resumes cache reuse");
    }

    #[test]
    fn pending_edits_survive_restart() {
        let dir = tmpdir("recover-pending");
        {
            let manager = SessionManager::new(durable_engine(&dir));
            let alice = manager
                .create_with_template("alice", workflow(&dir, 0.1), Some("census"))
                .unwrap();
            alice.iterate().unwrap();
            alice
                .set_learner_param("predictions", LearnerParam::Epochs(6))
                .unwrap();
            // killed before iterating the edit
        }
        let manager = SessionManager::new(durable_engine(&dir));
        manager.recover(|_| Some(workflow(&dir, 0.1)));
        let alice = manager.get("alice").unwrap();
        assert_eq!(alice.with(|s| s.pending_edits().len()), 1);
        let report = alice.iterate().unwrap();
        assert_eq!(report.change_summary, "set predictions epochs=6");
    }

    #[test]
    fn non_replayable_sessions_recover_degraded() {
        let dir = tmpdir("recover-degraded");
        {
            let manager = SessionManager::new(durable_engine(&dir));
            let bob = manager
                .create_with_template("bob", workflow(&dir, 0.1), Some("census"))
                .unwrap();
            bob.iterate().unwrap();
            bob.replace_workflow(workflow(&dir, 0.7));
            bob.iterate().unwrap();
        }
        let manager = SessionManager::new(durable_engine(&dir));
        assert_eq!(manager.recover(|_| Some(workflow(&dir, 0.1))), 1);
        let bob = manager.get("bob").unwrap();
        assert_eq!(bob.iteration(), 2, "lineage survives degraded recovery");
        assert_eq!(bob.versions().len(), 2, "history survives");
        // The live workflow reset to the template; the next iteration
        // still runs and derives its summary from the signature diff.
        let report = bob.iterate().unwrap();
        assert!(report.metric("accuracy").is_some());
    }

    #[test]
    fn removed_and_unknown_template_sessions_are_not_recovered() {
        let dir = tmpdir("recover-skips");
        {
            let manager = SessionManager::new(durable_engine(&dir));
            let keep = manager
                .create_with_template("keep", workflow(&dir, 0.1), Some("census"))
                .unwrap();
            keep.iterate().unwrap();
            let gone = manager
                .create_with_template("gone", workflow(&dir, 0.2), Some("census"))
                .unwrap();
            gone.iterate().unwrap();
            let orphan = manager
                .create_with_template("orphan", workflow(&dir, 0.3), Some("no-such-template"))
                .unwrap();
            orphan.iterate().unwrap();
            manager.remove("gone");
        }
        let manager = SessionManager::new(durable_engine(&dir));
        let recovered =
            manager.recover(|template| (template == "census").then(|| workflow(&dir, 0.1)));
        assert_eq!(recovered, 1, "removed + unknown-template skipped");
        assert_eq!(manager.names(), vec!["keep"]);
    }

    #[test]
    fn volatile_manager_recovers_nothing_and_writes_no_records() {
        let dir = tmpdir("recover-volatile");
        // Pin Volatile explicitly: EngineConfig::helix reads HELIX_DURABILITY,
        // and this test must see no session records even when the suite runs
        // under HELIX_DURABILITY=wal (the CI durability job does exactly that).
        let volatile = Arc::new(
            Engine::new(
                EngineConfig::helix(dir.join("store"))
                    .with_durability(crate::store::Durability::Volatile),
            )
            .unwrap(),
        );
        let manager = SessionManager::new(volatile);
        let alice = manager
            .create_with_template("alice", workflow(&dir, 0.1), Some("census"))
            .unwrap();
        alice.iterate().unwrap();
        assert!(!dir.join("store").join("meta").join("sessions").exists());
        assert_eq!(manager.recover(|_| Some(workflow(&dir, 0.1))), 0);
        assert_eq!(manager.recovered_sessions(), 0);
    }

    #[test]
    fn failed_edit_leaves_workflow_untouched() {
        let dir = tmpdir("atomic-edit");
        let mut session = Session::new(engine(&dir), "x", workflow(&dir, 0.1));
        let before = session.workflow().len();
        let err = session.edit("half-applied", |w| {
            let age = w.node_ref("age_f")?;
            w.bucketizer("orphan", &age, 4)?;
            w.node_ref("no-such-node").map(|_| ())
        });
        assert!(err.is_err());
        assert_eq!(
            session.workflow().len(),
            before,
            "failed edit must not leak the orphan node into the live workflow"
        );
        assert!(session.workflow().by_name("orphan").is_none());
        assert!(session.pending_edits().is_empty());
    }

    #[test]
    fn set_learner_param_rejects_non_learners() {
        let dir = tmpdir("badparam");
        let mut session = Session::new(engine(&dir), "x", workflow(&dir, 0.1));
        assert!(session
            .set_learner_param("rows", LearnerParam::Epochs(2))
            .is_err());
        assert!(session.pending_edits().is_empty(), "failed edit unrecorded");
    }
}
