//! Operator execution: runs one [`OperatorKind`] over its parents' outputs.
//!
//! Feature fragments flow between extractor operators as the
//! human-readable `(name, value)` pair lists the paper's pre-processing
//! data structure keeps (§2.1); the `Train` operator is the single point
//! where they become ML-ready sparse vectors.

use crate::ops::{
    EvalSpec, ExtractorKind, LearnerSpec, MetricKind, ModelType, NodeOutput, OperatorKind,
    TrainedModel,
};
use crate::{HelixError, Result, SPLIT_COL, SPLIT_TEST, SPLIT_TRAIN};
use helix_dataflow::{csv, DataCollection, DataType, Row, Schema, Value};
use std::path::Path;
use std::sync::Arc;

/// Schema of extractor outputs: one `feats` list per input row.
pub fn feats_schema() -> Arc<Schema> {
    Schema::of(&[("feats", DataType::List)])
}

/// Schema of assembled learner inputs.
pub fn assembled_schema() -> Arc<Schema> {
    Schema::of(&[
        (SPLIT_COL, DataType::Str),
        ("label", DataType::Float),
        ("feats", DataType::List),
    ])
}

/// Schema of prediction outputs.
pub fn predictions_schema() -> Arc<Schema> {
    Schema::of(&[
        (SPLIT_COL, DataType::Str),
        ("label", DataType::Float),
        ("score", DataType::Float),
        ("pred", DataType::Float),
    ])
}

/// Schema of evaluation outputs.
pub fn metrics_schema() -> Arc<Schema> {
    Schema::of(&[("metric", DataType::Str), ("value", DataType::Float)])
}

/// Encodes one feature pair as a nested list value.
pub fn feature_pair(name: &str, value: f64) -> Value {
    Value::List(vec![Value::Str(name.to_string()), Value::Float(value)])
}

/// Decodes a `feats` cell back into `(name, value)` pairs.
pub fn decode_pairs(cell: &Value) -> Result<Vec<(String, f64)>> {
    let items = cell
        .as_list()
        .ok_or_else(|| HelixError::Exec("feats cell is not a list".into()))?;
    let mut pairs = Vec::with_capacity(items.len());
    for item in items {
        let pair = item
            .as_list()
            .ok_or_else(|| HelixError::Exec("feature pair is not a list".into()))?;
        if pair.len() != 2 {
            return Err(HelixError::Exec(format!(
                "feature pair has {} items",
                pair.len()
            )));
        }
        let name = pair[0]
            .as_str()
            .ok_or_else(|| HelixError::Exec("feature name is not a string".into()))?;
        let value = pair[1]
            .as_f64()
            .ok_or_else(|| HelixError::Exec("feature value is not numeric".into()))?;
        pairs.push((name.to_string(), value));
    }
    Ok(pairs)
}

/// Executes `kind` over parent outputs (in wiring order).
///
/// For partitionable operators this is exactly
/// [`execute_slice`]`(kind, name, inputs, 0, n)` — one code path, so a
/// partitioned run concatenating slice outputs is byte-identical to a
/// whole-node run by construction.
pub fn execute(kind: &OperatorKind, name: &str, inputs: &[&NodeOutput]) -> Result<NodeOutput> {
    let end = partitionable_rows(kind, inputs).unwrap_or(0);
    execute_slice(kind, name, inputs, 0, end)
}

/// Rows over which `kind` may be split into row-range partitions, or
/// `None` if the operator must run whole.
///
/// Partitionable operators are strictly row-wise over their sliceable
/// input: Scan, FieldExtractor, Interaction, AssembleFeatures (all
/// row-aligned across inputs), Apply (row-wise over the data input), and
/// [`OperatorKind::RowUdf`]. Global operators — sources, Bucketizer
/// (two-pass min/max), Train/Evaluate (aggregates), classic UDFs — return
/// `None`. Also `None` when the sliceable input is missing or not data;
/// [`execute_slice`] then reports the shape error itself.
pub fn partitionable_rows(kind: &OperatorKind, inputs: &[&NodeOutput]) -> Option<usize> {
    let rows_of = |i: usize| Some(inputs.get(i)?.as_data().ok()?.len());
    match kind {
        OperatorKind::CsvScan { .. }
        | OperatorKind::FieldExtractor { .. }
        | OperatorKind::Interaction
        | OperatorKind::AssembleFeatures
        | OperatorKind::RowUdf(_) => rows_of(0),
        OperatorKind::Apply => rows_of(1),
        _ => None,
    }
}

/// Executes `kind` over the row range `[start, end)` of its sliceable
/// input (see [`partitionable_rows`]); other inputs are passed whole.
///
/// Non-partitionable operators ignore the range and run whole. Input
/// validation (arity, alignment, schemas) always checks the *full*
/// inputs, so every partition of a malformed node fails with the same
/// error a whole-node run would produce.
pub fn execute_slice(
    kind: &OperatorKind,
    name: &str,
    inputs: &[&NodeOutput],
    start: usize,
    end: usize,
) -> Result<NodeOutput> {
    match kind {
        OperatorKind::CsvSource {
            train_path,
            test_path,
        } => exec_csv_source(train_path, test_path.as_deref()),
        OperatorKind::TextSource {
            path,
            test_fraction,
        } => exec_text_source(path, *test_fraction),
        OperatorKind::CsvScan { fields } => {
            exec_csv_scan(fields, data(inputs, 0, name)?, start, end)
        }
        OperatorKind::FieldExtractor { field, kind } => {
            exec_field_extractor(field, *kind, data(inputs, 0, name)?, start, end)
        }
        OperatorKind::Bucketizer { bins } => exec_bucketizer(*bins, data(inputs, 0, name)?),
        OperatorKind::Interaction => {
            let mut collections = Vec::with_capacity(inputs.len());
            for i in 0..inputs.len() {
                collections.push(data(inputs, i, name)?);
            }
            exec_interaction(&collections, start, end)
        }
        OperatorKind::AssembleFeatures => {
            if inputs.len() < 3 {
                return Err(HelixError::Exec(format!(
                    "`{name}` needs base + extractors + label, got {} inputs",
                    inputs.len()
                )));
            }
            let base = data(inputs, 0, name)?;
            let label = data(inputs, inputs.len() - 1, name)?;
            let mut extractors = Vec::new();
            for i in 1..inputs.len() - 1 {
                extractors.push(data(inputs, i, name)?);
            }
            exec_assemble(base, &extractors, label, start, end)
        }
        OperatorKind::Train(spec) => exec_train(spec, data(inputs, 0, name)?),
        OperatorKind::Apply => {
            let model = inputs
                .first()
                .ok_or_else(|| HelixError::Exec(format!("`{name}` missing model input")))?
                .as_model()?;
            exec_apply(model, data(inputs, 1, name)?, start, end)
        }
        OperatorKind::Evaluate(spec) => exec_evaluate(spec, data(inputs, 0, name)?),
        OperatorKind::UserDefined(udf) => {
            let mut collections = Vec::with_capacity(inputs.len());
            for i in 0..inputs.len() {
                collections.push(data(inputs, i, name)?);
            }
            Ok(NodeOutput::Data((udf.func)(&collections)?))
        }
        OperatorKind::RowUdf(udf) => {
            let first = data(inputs, 0, name)?;
            // Whole-range calls see the original collection; true slices
            // get a sub-collection of the same rows, so the row-wise
            // contract makes the outputs concatenate identically.
            let sliced;
            let mut collections: Vec<&DataCollection> = Vec::with_capacity(inputs.len());
            if start == 0 && end == first.len() {
                collections.push(first);
            } else {
                sliced = DataCollection::from_rows_unchecked(
                    Arc::clone(first.schema()),
                    first.rows()[start..end].to_vec(),
                );
                collections.push(&sliced);
            }
            for i in 1..inputs.len() {
                collections.push(data(inputs, i, name)?);
            }
            Ok(NodeOutput::Data((udf.func)(&collections)?))
        }
    }
}

/// Concatenates partition outputs (in partition-index order) back into
/// one node output. All partitionable operators produce data collections.
pub fn concat_slices(parts: Vec<NodeOutput>) -> Result<NodeOutput> {
    let take = |out: NodeOutput| match out {
        NodeOutput::Data(dc) => Ok(dc.into_parts()),
        NodeOutput::Model(_) => Err(HelixError::Exec("partitioned node produced a model".into())),
    };
    let mut iter = parts.into_iter();
    let first = iter
        .next()
        .ok_or_else(|| HelixError::Exec("no partition outputs to merge".into()))?;
    let (schema, mut rows) = take(first)?;
    for part in iter {
        rows.extend(take(part)?.1);
    }
    Ok(NodeOutput::Data(DataCollection::from_rows_unchecked(
        schema, rows,
    )))
}

fn data<'a>(inputs: &[&'a NodeOutput], i: usize, name: &str) -> Result<&'a DataCollection> {
    inputs
        .get(i)
        .ok_or_else(|| HelixError::Exec(format!("`{name}` missing input {i}")))?
        .as_data()
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

fn exec_csv_source(train_path: &Path, test_path: Option<&Path>) -> Result<NodeOutput> {
    let schema = Schema::of(&[(SPLIT_COL, DataType::Str), ("line", DataType::Str)]);
    let mut rows = Vec::new();
    let mut read_split = |path: &Path, split: &str| -> Result<()> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| HelixError::Exec(format!("cannot read source {}: {e}", path.display())))?;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            rows.push(Row(vec![
                Value::Str(split.to_string()),
                Value::Str(line.to_string()),
            ]));
        }
        Ok(())
    };
    read_split(train_path, SPLIT_TRAIN)?;
    if let Some(test) = test_path {
        read_split(test, SPLIT_TEST)?;
    }
    Ok(NodeOutput::Data(DataCollection::from_rows_unchecked(
        schema, rows,
    )))
}

fn exec_text_source(path: &Path, test_fraction: f64) -> Result<NodeOutput> {
    let corpus = helix_dataflow::text::read_corpus(path)?;
    let schema = Schema::of(&[
        ("doc_id", DataType::Int),
        ("text", DataType::Str),
        (SPLIT_COL, DataType::Str),
    ]);
    let threshold = (test_fraction.clamp(0.0, 1.0) * 1000.0) as i64;
    let rows = corpus
        .rows()
        .iter()
        .map(|row| {
            let doc_id = row.get(0).as_int().unwrap_or(0);
            // Deterministic split: documents interleave by id so train and
            // test see the same generator distribution.
            let split = if (doc_id * 997 + 331) % 1000 < threshold {
                SPLIT_TEST
            } else {
                SPLIT_TRAIN
            };
            Row(vec![
                row.get(0).clone(),
                row.get(1).clone(),
                Value::Str(split.to_string()),
            ])
        })
        .collect();
    Ok(NodeOutput::Data(DataCollection::from_rows_unchecked(
        schema, rows,
    )))
}

fn exec_csv_scan(
    fields: &[(String, DataType)],
    input: &DataCollection,
    start: usize,
    end: usize,
) -> Result<NodeOutput> {
    let mut schema_fields = vec![(SPLIT_COL, DataType::Str)];
    for (name, dtype) in fields {
        schema_fields.push((name.as_str(), *dtype));
    }
    let schema = Schema::of(&schema_fields);
    let split_idx = input.column_index(SPLIT_COL)?;
    let line_idx = input.column_index("line")?;
    let mut rows = Vec::with_capacity(end - start);
    for row in &input.rows()[start..end] {
        let line = row.get(line_idx).as_str().unwrap_or("");
        let records = csv::parse_records(line)
            .map_err(|e| helix_dataflow::DataflowError::Csv(format!("{e}")))?;
        let record = records.first().cloned().unwrap_or_default();
        if record.len() != fields.len() {
            return Err(helix_dataflow::DataflowError::Csv(format!(
                "line has {} fields, scanner expects {}",
                record.len(),
                fields.len()
            ))
            .into());
        }
        let mut values = Vec::with_capacity(fields.len() + 1);
        values.push(row.get(split_idx).clone());
        for (raw, (_, dtype)) in record.iter().zip(fields) {
            values.push(Value::parse_typed(raw, *dtype));
        }
        rows.push(Row(values));
    }
    Ok(NodeOutput::Data(DataCollection::from_rows_unchecked(
        schema, rows,
    )))
}

// ---------------------------------------------------------------------------
// Feature engineering
// ---------------------------------------------------------------------------

fn exec_field_extractor(
    field: &str,
    kind: ExtractorKind,
    input: &DataCollection,
    start: usize,
    end: usize,
) -> Result<NodeOutput> {
    let idx = input.column_index(field)?;
    let mut rows = Vec::with_capacity(end - start);
    for row in &input.rows()[start..end] {
        let cell = row.get(idx);
        let pairs = match (kind, cell) {
            (_, Value::Null) => Vec::new(),
            (ExtractorKind::Categorical, value) => {
                vec![feature_pair(&format!("{field}={value}"), 1.0)]
            }
            (ExtractorKind::Numeric, value) => match value.as_f64() {
                Some(v) => vec![feature_pair(field, v)],
                None => Vec::new(),
            },
        };
        rows.push(Row(vec![Value::List(pairs)]));
    }
    Ok(NodeOutput::Data(DataCollection::from_rows_unchecked(
        feats_schema(),
        rows,
    )))
}

fn exec_bucketizer(bins: usize, input: &DataCollection) -> Result<NodeOutput> {
    let feats_idx = input.column_index("feats")?;
    // First pass: range of the (single) numeric feature.
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for row in input.rows() {
        for (_, v) in decode_pairs(row.get(feats_idx))? {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if !min.is_finite() {
        // No values at all: emit empty fragments.
        let rows = input
            .rows()
            .iter()
            .map(|_| Row(vec![Value::List(vec![])]))
            .collect();
        return Ok(NodeOutput::Data(DataCollection::from_rows_unchecked(
            feats_schema(),
            rows,
        )));
    }
    let width = if max > min {
        (max - min) / bins as f64
    } else {
        1.0
    };
    let mut rows = Vec::with_capacity(input.len());
    for row in input.rows() {
        let mut out_pairs = Vec::new();
        for (name, v) in decode_pairs(row.get(feats_idx))? {
            let bucket = (((v - min) / width) as usize).min(bins - 1);
            out_pairs.push(feature_pair(&format!("{name}[b={bucket}]"), 1.0));
        }
        rows.push(Row(vec![Value::List(out_pairs)]));
    }
    Ok(NodeOutput::Data(DataCollection::from_rows_unchecked(
        feats_schema(),
        rows,
    )))
}

fn exec_interaction(inputs: &[&DataCollection], start: usize, end: usize) -> Result<NodeOutput> {
    let n = inputs
        .first()
        .ok_or_else(|| HelixError::Exec("interaction needs inputs".into()))?
        .len();
    for dc in inputs {
        if dc.len() != n {
            return Err(HelixError::Exec(format!(
                "interaction inputs misaligned: {} vs {n} rows",
                dc.len()
            )));
        }
    }
    let mut rows = Vec::with_capacity(end - start);
    for r in start..end {
        // Cross product across parents, left-to-right.
        let mut acc: Vec<(String, f64)> = vec![(String::new(), 1.0)];
        for dc in inputs {
            let pairs = decode_pairs(dc.rows()[r].get(0))?;
            let mut next = Vec::with_capacity(acc.len() * pairs.len());
            for (base_name, base_v) in &acc {
                for (name, v) in &pairs {
                    let joined = if base_name.is_empty() {
                        name.clone()
                    } else {
                        format!("{base_name}×{name}")
                    };
                    next.push((joined, base_v * v));
                }
            }
            acc = next;
        }
        let out_pairs: Vec<Value> = acc
            .into_iter()
            .filter(|(name, _)| !name.is_empty())
            .map(|(name, v)| feature_pair(&name, v))
            .collect();
        rows.push(Row(vec![Value::List(out_pairs)]));
    }
    Ok(NodeOutput::Data(DataCollection::from_rows_unchecked(
        feats_schema(),
        rows,
    )))
}

fn exec_assemble(
    base: &DataCollection,
    extractors: &[&DataCollection],
    label: &DataCollection,
    start: usize,
    end: usize,
) -> Result<NodeOutput> {
    let n = base.len();
    for dc in extractors.iter().chain(std::iter::once(&label)) {
        if dc.len() != n {
            return Err(HelixError::Exec(format!(
                "assemble inputs misaligned: {} vs {n} rows",
                dc.len()
            )));
        }
    }
    let split_idx = base.column_index(SPLIT_COL)?;
    // Label-less rows drop independently per row, so a slice's output is
    // exactly its rows' contribution to the whole-node output.
    let mut rows = Vec::with_capacity(end - start);
    for r in start..end {
        let label_pairs = decode_pairs(label.rows()[r].get(0))?;
        // Rows without a label (missing target field) are dropped, as real
        // census data contains incomplete records.
        let Some(&(_, label_value)) = label_pairs.first() else {
            continue;
        };
        let mut all_pairs = Vec::new();
        for dc in extractors {
            for (name, v) in decode_pairs(dc.rows()[r].get(0))? {
                all_pairs.push(feature_pair(&name, v));
            }
        }
        rows.push(Row(vec![
            base.rows()[r].get(split_idx).clone(),
            Value::Float(label_value),
            Value::List(all_pairs),
        ]));
    }
    Ok(NodeOutput::Data(DataCollection::from_rows_unchecked(
        assembled_schema(),
        rows,
    )))
}

// ---------------------------------------------------------------------------
// Learning and evaluation
// ---------------------------------------------------------------------------

fn exec_train(spec: &LearnerSpec, assembled: &DataCollection) -> Result<NodeOutput> {
    let split_idx = assembled.column_index(SPLIT_COL)?;
    let label_idx = assembled.column_index("label")?;
    let feats_idx = assembled.column_index("feats")?;
    let mut space = helix_ml::FeatureSpace::new();
    let mut examples = Vec::new();
    for row in assembled.rows() {
        if row.get(split_idx).as_str() != Some(SPLIT_TRAIN) {
            continue;
        }
        let label = row
            .get(label_idx)
            .as_f64()
            .ok_or_else(|| HelixError::Exec("non-numeric label".into()))?;
        let pairs = decode_pairs(row.get(feats_idx))?;
        examples.push(space.example(&pairs, label)?);
    }
    let dataset = helix_ml::Dataset::new(examples, space.len() as u32);
    let model = match spec.model_type {
        ModelType::LogisticRegression => {
            let config = helix_ml::logreg::LogRegConfig {
                epochs: spec.epochs,
                learning_rate: spec.learning_rate,
                reg_param: spec.reg_param,
                seed: spec.seed,
            };
            helix_ml::Model::LogReg(helix_ml::logreg::train(&dataset, &config)?)
        }
        ModelType::LinearRegression => {
            let config = helix_ml::linreg::LinRegConfig {
                epochs: spec.epochs,
                learning_rate: spec.learning_rate,
                reg_param: spec.reg_param,
                seed: spec.seed,
            };
            helix_ml::Model::LinReg(helix_ml::linreg::train(&dataset, &config)?)
        }
        ModelType::NaiveBayes => {
            let config = helix_ml::naive_bayes::NaiveBayesConfig {
                alpha: spec.reg_param.max(1e-3),
            };
            helix_ml::Model::NaiveBayes(helix_ml::naive_bayes::train(&dataset, &config)?)
        }
        ModelType::Perceptron => {
            let config = helix_ml::perceptron::PerceptronConfig {
                num_classes: 2,
                epochs: spec.epochs,
                seed: spec.seed,
            };
            helix_ml::Model::Perceptron(helix_ml::perceptron::train(&dataset, &config)?)
        }
    };
    space.freeze();
    Ok(NodeOutput::Model(TrainedModel {
        model,
        feature_names: space.names().to_vec(),
    }))
}

fn exec_apply(
    bundle: &TrainedModel,
    assembled: &DataCollection,
    start: usize,
    end: usize,
) -> Result<NodeOutput> {
    let split_idx = assembled.column_index(SPLIT_COL)?;
    let label_idx = assembled.column_index("label")?;
    let feats_idx = assembled.column_index("feats")?;
    let space = bundle.feature_space();
    let mut rows = Vec::with_capacity(end - start);
    for row in &assembled.rows()[start..end] {
        let pairs = decode_pairs(row.get(feats_idx))?;
        let vector = space.vectorize_frozen(&pairs);
        let score = bundle.model.predict(&vector);
        let pred = bundle.model.decide(&vector);
        rows.push(Row(vec![
            row.get(split_idx).clone(),
            row.get(label_idx).clone(),
            Value::Float(score),
            Value::Float(pred),
        ]));
    }
    Ok(NodeOutput::Data(DataCollection::from_rows_unchecked(
        predictions_schema(),
        rows,
    )))
}

fn exec_evaluate(spec: &EvalSpec, predictions: &DataCollection) -> Result<NodeOutput> {
    let split_idx = predictions.column_index(SPLIT_COL)?;
    let label_idx = predictions.column_index("label")?;
    let score_idx = predictions.column_index("score")?;
    let pred_idx = predictions.column_index("pred")?;
    let mut labels = Vec::new();
    let mut scores = Vec::new();
    let mut preds = Vec::new();
    for row in predictions.rows() {
        if row.get(split_idx).as_str() != Some(spec.split.as_str()) {
            continue;
        }
        labels.push(row.get(label_idx).as_f64().unwrap_or(0.0));
        scores.push(row.get(score_idx).as_f64().unwrap_or(0.0));
        preds.push(row.get(pred_idx).as_f64().unwrap_or(0.0));
    }
    let confusion = helix_ml::metrics::Confusion::from_predictions(&preds, &labels)?;
    let mut rows = Vec::with_capacity(spec.metrics.len());
    for metric in &spec.metrics {
        let value = match metric {
            MetricKind::Accuracy => confusion.accuracy(),
            MetricKind::Precision => confusion.precision(),
            MetricKind::Recall => confusion.recall(),
            MetricKind::F1 => confusion.f1(),
            MetricKind::LogLoss => helix_ml::metrics::log_loss(&scores, &labels)?,
            MetricKind::Rmse => helix_ml::metrics::rmse(&scores, &labels)?,
        };
        rows.push(Row(vec![
            Value::Str(metric.name().to_string()),
            Value::Float(value),
        ]));
    }
    Ok(NodeOutput::Data(DataCollection::from_rows_unchecked(
        metrics_schema(),
        rows,
    )))
}

/// Extracts `(metric, value)` pairs from an Evaluate node's output.
pub fn metric_values(output: &NodeOutput) -> Result<Vec<(String, f64)>> {
    let dc = output.as_data()?;
    let metric_idx = dc.column_index("metric")?;
    let value_idx = dc.column_index("value")?;
    Ok(dc
        .rows()
        .iter()
        .filter_map(|row| {
            Some((
                row.get(metric_idx).as_str()?.to_string(),
                row.get(value_idx).as_f64()?,
            ))
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Whole-range wrappers: the sliced executors over their full input.
    fn csv_scan(fields: &[(String, DataType)], input: &DataCollection) -> Result<NodeOutput> {
        exec_csv_scan(fields, input, 0, input.len())
    }

    fn field_extractor(
        field: &str,
        kind: ExtractorKind,
        input: &DataCollection,
    ) -> Result<NodeOutput> {
        exec_field_extractor(field, kind, input, 0, input.len())
    }

    fn interaction(inputs: &[&DataCollection]) -> Result<NodeOutput> {
        exec_interaction(inputs, 0, inputs[0].len())
    }

    fn assemble(
        base: &DataCollection,
        extractors: &[&DataCollection],
        label: &DataCollection,
    ) -> Result<NodeOutput> {
        exec_assemble(base, extractors, label, 0, base.len())
    }

    fn apply(bundle: &TrainedModel, assembled: &DataCollection) -> Result<NodeOutput> {
        exec_apply(bundle, assembled, 0, assembled.len())
    }

    fn write_csv(dir: &Path, name: &str, content: &str) -> std::path::PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-exec-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn source_and_scan(dir: &Path) -> DataCollection {
        let train = write_csv(dir, "train.csv", "30,BS,1\n40,MS,0\n50,PhD,1\n");
        let test = write_csv(dir, "test.csv", "35,BS,1\n45,MS,0\n");
        let src = exec_csv_source(&train, Some(&test)).unwrap();
        let scanned = csv_scan(
            &[
                ("age".to_string(), DataType::Int),
                ("edu".to_string(), DataType::Str),
                ("target".to_string(), DataType::Int),
            ],
            src.as_data().unwrap(),
        )
        .unwrap();
        scanned.as_data().unwrap().clone()
    }

    #[test]
    fn source_tags_splits_and_scan_types_columns() {
        let dir = tmpdir("scan");
        let rows = source_and_scan(&dir);
        assert_eq!(rows.len(), 5);
        let splits: Vec<&str> = rows
            .column(SPLIT_COL)
            .unwrap()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(splits, vec!["train", "train", "train", "test", "test"]);
        assert_eq!(rows.rows()[0].get(1), &Value::Int(30));
        assert_eq!(rows.rows()[0].get(2).as_str(), Some("BS"));
    }

    #[test]
    fn categorical_extractor_one_hots() {
        let dir = tmpdir("cat");
        let rows = source_and_scan(&dir);
        let out = field_extractor("edu", ExtractorKind::Categorical, &rows).unwrap();
        let dc = out.as_data().unwrap();
        let pairs = decode_pairs(dc.rows()[0].get(0)).unwrap();
        assert_eq!(pairs, vec![("edu=BS".to_string(), 1.0)]);
    }

    #[test]
    fn numeric_extractor_passes_value() {
        let dir = tmpdir("num");
        let rows = source_and_scan(&dir);
        let out = field_extractor("age", ExtractorKind::Numeric, &rows).unwrap();
        let pairs = decode_pairs(out.as_data().unwrap().rows()[2].get(0)).unwrap();
        assert_eq!(pairs, vec![("age".to_string(), 50.0)]);
    }

    #[test]
    fn nulls_produce_empty_fragments() {
        let dir = tmpdir("null");
        let train = write_csv(&dir, "train.csv", "?,BS,1\n");
        let src = exec_csv_source(&train, None).unwrap();
        let scanned = csv_scan(
            &[
                ("age".to_string(), DataType::Int),
                ("edu".to_string(), DataType::Str),
                ("t".to_string(), DataType::Int),
            ],
            src.as_data().unwrap(),
        )
        .unwrap();
        let out =
            field_extractor("age", ExtractorKind::Numeric, scanned.as_data().unwrap()).unwrap();
        let pairs = decode_pairs(out.as_data().unwrap().rows()[0].get(0)).unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn bucketizer_buckets_equal_width() {
        let dir = tmpdir("bucket");
        let rows = source_and_scan(&dir);
        let ages = field_extractor("age", ExtractorKind::Numeric, &rows).unwrap();
        let out = exec_bucketizer(2, ages.as_data().unwrap()).unwrap();
        let dc = out.as_data().unwrap();
        // ages: 30..50, width 10; 30 → b0, 50 → b1 (clamped).
        let first = decode_pairs(dc.rows()[0].get(0)).unwrap();
        let last = decode_pairs(dc.rows()[2].get(0)).unwrap();
        assert_eq!(first[0].0, "age[b=0]");
        assert_eq!(last[0].0, "age[b=1]");
    }

    #[test]
    fn interaction_crosses_names_and_values() {
        let dir = tmpdir("inter");
        let rows = source_and_scan(&dir);
        let edu = field_extractor("edu", ExtractorKind::Categorical, &rows).unwrap();
        let age = field_extractor("age", ExtractorKind::Numeric, &rows).unwrap();
        let out = interaction(&[edu.as_data().unwrap(), age.as_data().unwrap()]).unwrap();
        let pairs = decode_pairs(out.as_data().unwrap().rows()[0].get(0)).unwrap();
        assert_eq!(pairs, vec![("edu=BS×age".to_string(), 30.0)]);
    }

    #[test]
    fn assemble_concatenates_and_labels() {
        let dir = tmpdir("asm");
        let rows = source_and_scan(&dir);
        let edu = field_extractor("edu", ExtractorKind::Categorical, &rows).unwrap();
        let target = field_extractor("target", ExtractorKind::Numeric, &rows).unwrap();
        let out = assemble(&rows, &[edu.as_data().unwrap()], target.as_data().unwrap()).unwrap();
        let dc = out.as_data().unwrap();
        assert_eq!(dc.len(), 5);
        assert_eq!(dc.rows()[0].get(1), &Value::Float(1.0));
        let pairs = decode_pairs(dc.rows()[0].get(2)).unwrap();
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn end_to_end_train_apply_evaluate() {
        let dir = tmpdir("e2e");
        // Perfectly separable: edu=BS ⇒ 1, edu=MS ⇒ 0.
        let train = write_csv(&dir, "train2.csv", &"BS,1\nMS,0\n".repeat(30));
        let test = write_csv(&dir, "test2.csv", "BS,1\nMS,0\nBS,1\n");
        let src = exec_csv_source(&train, Some(&test)).unwrap();
        let rows = csv_scan(
            &[
                ("edu".to_string(), DataType::Str),
                ("target".to_string(), DataType::Int),
            ],
            src.as_data().unwrap(),
        )
        .unwrap();
        let rows = rows.as_data().unwrap();
        let edu = field_extractor("edu", ExtractorKind::Categorical, rows).unwrap();
        let target = field_extractor("target", ExtractorKind::Numeric, rows).unwrap();
        let assembled =
            assemble(rows, &[edu.as_data().unwrap()], target.as_data().unwrap()).unwrap();
        let model = exec_train(&LearnerSpec::default(), assembled.as_data().unwrap()).unwrap();
        let preds = apply(model.as_model().unwrap(), assembled.as_data().unwrap()).unwrap();
        let eval = exec_evaluate(
            &EvalSpec {
                metrics: vec![MetricKind::Accuracy, MetricKind::F1],
                split: SPLIT_TEST.into(),
            },
            preds.as_data().unwrap(),
        )
        .unwrap();
        let metrics = metric_values(&eval).unwrap();
        let acc = metrics.iter().find(|(m, _)| m == "accuracy").unwrap().1;
        assert_eq!(acc, 1.0, "separable data must be perfectly classified");
    }

    #[test]
    fn apply_drops_unseen_features() {
        // Train on BS/MS; test row has PhD: unseen feature dropped, bias
        // decides, no panic.
        let dir = tmpdir("unseen");
        let train = write_csv(&dir, "train3.csv", &"BS,1\nMS,0\n".repeat(20));
        let test = write_csv(&dir, "test3.csv", "PhD,1\n");
        let src = exec_csv_source(&train, Some(&test)).unwrap();
        let rows = csv_scan(
            &[
                ("edu".to_string(), DataType::Str),
                ("target".to_string(), DataType::Int),
            ],
            src.as_data().unwrap(),
        )
        .unwrap();
        let rows = rows.as_data().unwrap();
        let edu = field_extractor("edu", ExtractorKind::Categorical, rows).unwrap();
        let target = field_extractor("target", ExtractorKind::Numeric, rows).unwrap();
        let assembled =
            assemble(rows, &[edu.as_data().unwrap()], target.as_data().unwrap()).unwrap();
        let model = exec_train(&LearnerSpec::default(), assembled.as_data().unwrap()).unwrap();
        let preds = apply(model.as_model().unwrap(), assembled.as_data().unwrap()).unwrap();
        assert_eq!(preds.as_data().unwrap().len(), 41);
    }

    #[test]
    fn misaligned_inputs_rejected() {
        let dir = tmpdir("misalign");
        let rows = source_and_scan(&dir);
        let edu = field_extractor("edu", ExtractorKind::Categorical, &rows).unwrap();
        let truncated = edu.as_data().unwrap().head(2);
        assert!(interaction(&[edu.as_data().unwrap(), &truncated]).is_err());
        let target = field_extractor("target", ExtractorKind::Numeric, &rows).unwrap();
        assert!(assemble(&rows, &[&truncated], target.as_data().unwrap()).is_err());
    }

    #[test]
    fn scan_rejects_ragged_lines() {
        let dir = tmpdir("ragged");
        let train = write_csv(&dir, "bad.csv", "1,2\n1\n");
        let src = exec_csv_source(&train, None).unwrap();
        let result = csv_scan(
            &[
                ("a".to_string(), DataType::Int),
                ("b".to_string(), DataType::Int),
            ],
            src.as_data().unwrap(),
        );
        assert!(result.is_err());
    }
}
