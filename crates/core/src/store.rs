//! The intermediate store: signature-keyed materializations on disk.
//!
//! Each materialized node output lives in one file named by its Merkle
//! signature (`<sig>.hlx`), so validity is purely a key-existence check:
//! any workflow change upstream of a node changes its signature and the
//! old file simply stops matching (it stays on disk and becomes reusable
//! again if the user reverts — the paper's version-rollback story).
//!
//! The store enforces the materialization optimizer's **storage budget**
//! (paper §2.3: "with a maximum storage constraint") and reports measured
//! I/O durations to the cost model.
//!
//! # Sharding
//!
//! The entry map is split across `N` shards keyed by signature hash, so
//! the ready-queue executor's concurrent `get`/`put`/`evict` traffic does
//! not serialize on one lock — only operations on signatures that land in
//! the same shard contend. The byte ledger is a store-wide atomic with
//! the same **reservation** semantics the single-lock store had: a `put`
//! reserves its bytes with one compare-and-swap (performed while its
//! shard lock pins the size of any entry it overwrites), so concurrent
//! puts can never jointly overshoot the budget, and a failed write
//! releases exactly its own reservation. The shard count comes from
//! [`crate::EngineConfig::store_shards`] / `HELIX_STORE_SHARDS` (default
//! [`DEFAULT_STORE_SHARDS`]); `1` reproduces the old single-lock store.

use crate::ops::NodeOutput;
use crate::signature::Signature;
use crate::{HelixError, Result};
use helix_dataflow::fx::FxHashMap;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Process-wide counter for unique temp-file names (see [`IntermediateStore::put`]).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Default number of shards when `HELIX_STORE_SHARDS` is unset.
pub const DEFAULT_STORE_SHARDS: usize = 16;

/// The shard count the engine uses by default: the `HELIX_STORE_SHARDS`
/// environment variable when set to a positive integer, otherwise
/// [`DEFAULT_STORE_SHARDS`].
pub fn default_store_shards() -> usize {
    std::env::var("HELIX_STORE_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_STORE_SHARDS)
}

/// Metadata for one stored entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryMeta {
    /// On-disk size in bytes.
    pub bytes: u64,
}

/// One shard of the signature-keyed maps.
#[derive(Debug, Default)]
struct Shard {
    /// Entries whose file exists on disk (visible to `lookup`/`get`).
    entries: FxHashMap<u64, EntryMeta>,
    /// Budget reserved by in-flight `put` calls, keyed by signature.
    /// Invisible to readers and to `evict` — a reservation becomes an
    /// entry only once its file is fully written and renamed.
    reserved: FxHashMap<u64, u64>,
}

/// The shared state behind [`IntermediateStore`] handles.
#[derive(Debug)]
struct StoreInner {
    dir: PathBuf,
    budget_bytes: u64,
    /// Bytes of entries plus in-flight reservations across all shards
    /// (the budget ledger).
    used_bytes: AtomicU64,
    shards: Box<[Mutex<Shard>]>,
}

/// On-disk store with budget accounting, sharded for concurrent access.
///
/// An `IntermediateStore` is a cheap [`Clone`]-able handle to shared
/// state: every clone sees the same entries, ledger, and budget. The
/// ready-queue scheduler clones the handle into its persistent worker
/// threads (`'static` jobs cannot borrow the caller's store).
#[derive(Debug, Clone)]
pub struct IntermediateStore {
    inner: Arc<StoreInner>,
}

impl IntermediateStore {
    /// Opens (or creates) a store rooted at `dir` with the default shard
    /// count ([`default_store_shards`]), scanning existing entries so
    /// prior iterations' materializations are visible.
    pub fn open(dir: impl Into<PathBuf>, budget_bytes: u64) -> Result<Self> {
        Self::open_with_shards(dir, budget_bytes, default_store_shards())
    }

    /// [`IntermediateStore::open`] with an explicit shard count (clamped
    /// to ≥ 1). `1` reproduces the historical single-lock store.
    pub fn open_with_shards(
        dir: impl Into<PathBuf>,
        budget_bytes: u64,
        shards: usize,
    ) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let shard_count = shards.max(1);
        let mut shard_maps: Vec<Shard> = (0..shard_count).map(|_| Shard::default()).collect();
        let mut used = 0u64;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("hlx") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(sig) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            let bytes = entry.metadata()?.len();
            shard_maps[shard_index(sig, shard_count)]
                .entries
                .insert(sig, EntryMeta { bytes });
            used += bytes;
        }
        Ok(IntermediateStore {
            inner: Arc::new(StoreInner {
                dir,
                budget_bytes,
                used_bytes: AtomicU64::new(used),
                shards: shard_maps.into_iter().map(Mutex::new).collect(),
            }),
        })
    }

    /// The storage budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.inner.budget_bytes
    }

    /// Number of shards the entry maps are split across.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Bytes currently used (entries plus in-flight reservations).
    pub fn used_bytes(&self) -> u64 {
        self.inner.used_bytes.load(Ordering::Acquire)
    }

    /// Bytes still available under the budget.
    pub fn remaining_bytes(&self) -> u64 {
        self.inner.budget_bytes.saturating_sub(self.used_bytes())
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().entries.len())
            .sum()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the entry for `sig`, if present.
    pub fn lookup(&self, sig: Signature) -> Option<EntryMeta> {
        self.shard(sig).lock().entries.get(&sig.0).copied()
    }

    fn shard(&self, sig: Signature) -> &Mutex<Shard> {
        &self.inner.shards[shard_index(sig.0, self.inner.shards.len())]
    }

    fn path_for(&self, sig: Signature) -> PathBuf {
        self.inner.dir.join(format!("{}.hlx", sig.hex()))
    }

    /// Writes an output under `sig`, enforcing the budget.
    ///
    /// Returns `(bytes_written, seconds)` on success. Writing is atomic
    /// (temp file + rename) so a crash cannot leave a torn entry behind,
    /// and the budget check **reserves** the entry's bytes with a single
    /// compare-and-swap on the ledger while the signature's shard lock is
    /// held — concurrent puts can never jointly overshoot the budget by
    /// each passing a stale check (the ready-queue executor's workers and
    /// any future background materializer rely on this). Reservations are
    /// a side ledger: readers and `evict` never see an entry whose file
    /// is not fully on disk, and a failed write releases only its own
    /// reservation, so racing `get`/`evict` calls cannot be corrupted by
    /// a put that later fails.
    ///
    /// An overwrite conservatively holds both the old entry's bytes and
    /// the new reservation until the rename lands (the old file stays
    /// readable throughout).
    ///
    /// # Errors
    /// [`HelixError::Store`] if the entry would exceed the budget.
    pub fn put(&self, sig: Signature, output: &NodeOutput) -> Result<(u64, f64)> {
        let started = Instant::now();
        // Encoding is part of the materialization cost the optimizer
        // trades off, so it is inside the timed region.
        let bytes = output.encode();
        let size = bytes.len() as u64;
        {
            let mut shard = self.shard(sig).lock();
            if shard.reserved.contains_key(&sig.0) {
                // Two in-flight puts of one signature would race the
                // rename. One run's plan-order merge never does this, but
                // two concurrent sessions materializing the same workflow
                // can: both pass the engine's lookup-before-put check,
                // and the loser lands here. The engine treats the error
                // as "someone else is materializing it" and moves on.
                return Err(HelixError::Store(format!(
                    "concurrent put already in flight for signature {}",
                    sig.hex()
                )));
            }
            // The shard lock pins `existing` (an evict of this signature
            // needs the same lock), so the CAS admits exactly the puts the
            // single-lock store would have.
            let existing = shard.entries.get(&sig.0).map(|m| m.bytes).unwrap_or(0);
            let reserve =
                self.inner
                    .used_bytes
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
                        (used.saturating_sub(existing) + size <= self.inner.budget_bytes)
                            .then_some(used + size)
                    });
            if reserve.is_err() {
                return Err(HelixError::Store(format!(
                    "materializing {size} bytes would exceed the {}-byte budget ({} used)",
                    self.inner.budget_bytes,
                    self.used_bytes()
                )));
            }
            shard.reserved.insert(sig.0, size);
        }
        // Unique temp name: a racing put of another signature must not
        // write through this one's half-finished temp file.
        let token = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let tmp = self.inner.dir.join(format!("{}.{token}.tmp", sig.hex()));
        let written = (|| -> Result<()> {
            let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            file.write_all(&bytes)?;
            file.flush()?;
            Ok(())
        })();
        let mut shard = self.shard(sig).lock();
        shard.reserved.remove(&sig.0);
        // The rename happens under the shard lock (a cheap metadata op)
        // so an `evict` of a replaced entry can never delete the fresh
        // file: evict holds the same lock across its own remove_file.
        let published = written.and_then(|()| Ok(std::fs::rename(&tmp, self.path_for(sig))?));
        if let Err(err) = published {
            // Release only this call's reservation; entries were never
            // touched, so concurrent get/evict state is unaffected.
            self.inner.used_bytes.fetch_sub(size, Ordering::AcqRel);
            drop(shard);
            let _ = std::fs::remove_file(&tmp);
            return Err(err);
        }
        let previous = shard.entries.insert(sig.0, EntryMeta { bytes: size });
        // The reservation's bytes stay in the ledger as the entry's; an
        // overwrite releases the replaced entry's share now.
        if let Some(meta) = previous {
            self.inner
                .used_bytes
                .fetch_sub(meta.bytes, Ordering::AcqRel);
        }
        Ok((size, started.elapsed().as_secs_f64()))
    }

    /// Reads the output stored under `sig`.
    ///
    /// Returns `(output, bytes_read, seconds)`.
    ///
    /// # Errors
    /// [`HelixError::Store`] if the entry is missing or corrupt.
    pub fn get(&self, sig: Signature) -> Result<(NodeOutput, u64, f64)> {
        if self.lookup(sig).is_none() {
            return Err(HelixError::Store(format!(
                "no entry for signature {}",
                sig.hex()
            )));
        }
        let started = Instant::now();
        let mut bytes = Vec::new();
        let mut file = std::io::BufReader::new(std::fs::File::open(self.path_for(sig))?);
        file.read_to_end(&mut bytes)?;
        let output = NodeOutput::decode(&bytes)?;
        let secs = started.elapsed().as_secs_f64();
        Ok((output, bytes.len() as u64, secs))
    }

    /// Deletes the entry for `sig` if present, freeing budget.
    ///
    /// The file removal happens under the signature's shard lock so it
    /// cannot race a concurrent `put`'s rename of a fresh file to the
    /// same path. The file is removed *before* any bookkeeping mutates:
    /// if the removal fails, the entry stays in the map and the ledger
    /// keeps its bytes, so the store's view still matches the disk (a
    /// reopen rescan would find the surviving file). An already-missing
    /// file (`NotFound`) counts as removed.
    pub fn evict(&self, sig: Signature) -> Result<bool> {
        let mut shard = self.shard(sig).lock();
        let Some(meta) = shard.entries.get(&sig.0).copied() else {
            return Ok(false);
        };
        match std::fs::remove_file(self.path_for(sig)) {
            Ok(()) => {}
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => return Err(err.into()),
        }
        shard.entries.remove(&sig.0);
        self.inner
            .used_bytes
            .fetch_sub(meta.bytes, Ordering::AcqRel);
        Ok(true)
    }

    /// Every signature currently stored, in no particular order (the
    /// retention sweep walks this to find unreferenced entries).
    pub fn signatures(&self) -> Vec<Signature> {
        self.inner
            .shards
            .iter()
            .flat_map(|shard| shard.lock().entries.keys().copied().collect::<Vec<_>>())
            .map(Signature)
            .collect()
    }

    /// Deletes everything (used between benchmark scenarios). In-flight
    /// `put` reservations keep their budget share so a concurrent put
    /// completing after the clear stays correctly accounted.
    pub fn clear(&self) -> Result<()> {
        // Hold every shard lock at once so the ledger reset sees a
        // consistent picture (locks are acquired in index order, and no
        // other path holds two shard locks, so this cannot deadlock).
        let mut guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        let mut reserved = 0u64;
        for guard in &mut guards {
            let sigs: Vec<u64> = guard.entries.keys().copied().collect();
            for sig in sigs {
                guard.entries.remove(&sig);
                let _ = std::fs::remove_file(self.inner.dir.join(format!("{sig:016x}.hlx")));
            }
            reserved += guard.reserved.values().sum::<u64>();
        }
        self.inner.used_bytes.store(reserved, Ordering::Release);
        Ok(())
    }
}

/// Maps a signature to a shard index. Signatures are already Merkle
/// hashes, but the multiply-shift spreads any residual structure (e.g.
/// test signatures 1, 2, 3, …) across shards.
fn shard_index(sig: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mixed = sig.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((mixed >> 32) as usize) % shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_dataflow::{DataCollection, DataType, Row, Schema, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_output(n: i64) -> NodeOutput {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rows = (0..n).map(|i| Row(vec![Value::Int(i)])).collect();
        NodeOutput::Data(DataCollection::new(schema, rows).unwrap())
    }

    #[test]
    fn put_get_round_trip() {
        let store = IntermediateStore::open(tmpdir("rt"), 1 << 20).unwrap();
        let out = sample_output(100);
        let (written, _) = store.put(Signature(7), &out).unwrap();
        assert!(written > 0);
        assert_eq!(store.len(), 1);
        let (back, read, _) = store.get(Signature(7)).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, out);
    }

    #[test]
    fn missing_entry_errors() {
        let store = IntermediateStore::open(tmpdir("miss"), 1 << 20).unwrap();
        assert!(store.get(Signature(1)).is_err());
        assert!(store.lookup(Signature(1)).is_none());
    }

    #[test]
    fn budget_enforced() {
        let store = IntermediateStore::open(tmpdir("budget"), 64).unwrap();
        let out = sample_output(1000);
        let err = store.put(Signature(1), &out).unwrap_err();
        assert!(err.to_string().contains("budget"));
        assert_eq!(store.used_bytes(), 0);
    }

    #[test]
    fn overwrite_replaces_budget_share() {
        let dir = tmpdir("overwrite");
        let store = IntermediateStore::open(&dir, 1 << 20).unwrap();
        store.put(Signature(9), &sample_output(100)).unwrap();
        let used_first = store.used_bytes();
        store.put(Signature(9), &sample_output(100)).unwrap();
        assert_eq!(store.used_bytes(), used_first);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn reopen_rescans_entries() {
        let dir = tmpdir("reopen");
        {
            let store = IntermediateStore::open(&dir, 1 << 20).unwrap();
            store.put(Signature(3), &sample_output(10)).unwrap();
        }
        let store = IntermediateStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(store.len(), 1);
        let (out, ..) = store.get(Signature(3)).unwrap();
        assert_eq!(out, sample_output(10));
        assert!(store.used_bytes() > 0);
    }

    #[test]
    fn reopen_with_different_shard_count_sees_all_entries() {
        let dir = tmpdir("reshard");
        {
            let store = IntermediateStore::open_with_shards(&dir, 1 << 20, 4).unwrap();
            for i in 0..12 {
                store.put(Signature(i + 1), &sample_output(10)).unwrap();
            }
        }
        for shards in [1, 3, 16] {
            let store = IntermediateStore::open_with_shards(&dir, 1 << 20, shards).unwrap();
            assert_eq!(store.shard_count(), shards);
            assert_eq!(store.len(), 12, "{shards} shards");
            for i in 0..12 {
                assert_eq!(store.get(Signature(i + 1)).unwrap().0, sample_output(10));
            }
        }
    }

    #[test]
    fn evict_frees_budget() {
        let store = IntermediateStore::open(tmpdir("evict"), 1 << 20).unwrap();
        store.put(Signature(5), &sample_output(10)).unwrap();
        assert!(store.evict(Signature(5)).unwrap());
        assert!(!store.evict(Signature(5)).unwrap());
        assert_eq!(store.used_bytes(), 0);
        assert!(store.get(Signature(5)).is_err());
    }

    #[test]
    fn evict_failure_leaves_entry_and_ledger_intact() {
        // Force `remove_file` to fail by replacing the entry's file with
        // a non-empty directory of the same name. The failed evict must
        // not mutate the map or the budget ledger — otherwise the store's
        // view disagrees with the disk and a reopen rescan resurrects the
        // "evicted" entry.
        let store = IntermediateStore::open(tmpdir("evict-fail"), 1 << 20).unwrap();
        store.put(Signature(9), &sample_output(10)).unwrap();
        let used_before = store.used_bytes();
        let path = store.path_for(Signature(9));
        std::fs::remove_file(&path).unwrap();
        std::fs::create_dir(&path).unwrap();
        std::fs::write(path.join("occupant"), b"x").unwrap();

        assert!(store.evict(Signature(9)).is_err());
        assert!(
            store.lookup(Signature(9)).is_some(),
            "failed evict must keep the entry"
        );
        assert_eq!(
            store.used_bytes(),
            used_before,
            "failed evict must not free budget"
        );

        // Once the obstruction is gone the same evict succeeds; the file
        // is already absent (NotFound), which counts as removed.
        std::fs::remove_dir_all(&path).unwrap();
        assert!(store.evict(Signature(9)).unwrap());
        assert_eq!(store.used_bytes(), 0);
    }

    #[test]
    fn evict_treats_missing_file_as_removed() {
        let store = IntermediateStore::open(tmpdir("evict-gone"), 1 << 20).unwrap();
        store.put(Signature(3), &sample_output(10)).unwrap();
        std::fs::remove_file(store.path_for(Signature(3))).unwrap();
        assert!(store.evict(Signature(3)).unwrap());
        assert_eq!(store.used_bytes(), 0);
        assert!(store.lookup(Signature(3)).is_none());
    }

    #[test]
    fn signatures_lists_live_entries() {
        let store = IntermediateStore::open(tmpdir("sigs"), 1 << 20).unwrap();
        for i in 1..=5 {
            store.put(Signature(i), &sample_output(4)).unwrap();
        }
        store.evict(Signature(3)).unwrap();
        let mut sigs: Vec<u64> = store.signatures().into_iter().map(|s| s.0).collect();
        sigs.sort_unstable();
        assert_eq!(sigs, vec![1, 2, 4, 5]);
    }

    #[test]
    fn clear_removes_everything() {
        let store = IntermediateStore::open(tmpdir("clear"), 1 << 20).unwrap();
        store.put(Signature(1), &sample_output(5)).unwrap();
        store.put(Signature(2), &sample_output(5)).unwrap();
        store.clear().unwrap();
        assert!(store.is_empty());
        assert_eq!(store.remaining_bytes(), 1 << 20);
    }

    /// Bookkeeping invariant shared by the stress tests: the byte ledger
    /// must equal the sum of live entries and respect the budget.
    fn assert_ledger_consistent(store: &IntermediateStore, sigs: &[Signature]) {
        let summed: u64 = sigs
            .iter()
            .filter_map(|&s| store.lookup(s))
            .map(|m| m.bytes)
            .sum();
        assert_eq!(
            store.used_bytes(),
            summed,
            "ledger out of sync with entries"
        );
        assert!(
            store.used_bytes() <= store.budget_bytes(),
            "budget exceeded: {} > {}",
            store.used_bytes(),
            store.budget_bytes()
        );
    }

    #[test]
    fn concurrent_puts_never_exceed_budget() {
        // Each entry is ~1.3 KiB encoded; a budget of ~8 entries with 32
        // threads racing means most puts must be rejected — and the
        // accepted set must exactly account for every used byte. Run at
        // several shard counts: with many shards the racing puts hold
        // *different* locks, so the ledger CAS is all that stands between
        // them and a joint overshoot.
        let one_entry = sample_output(100).encode().len() as u64;
        let budget = one_entry * 8 + one_entry / 2;
        for shards in [1, 4, 16] {
            let store =
                IntermediateStore::open_with_shards(tmpdir("race-budget"), budget, shards).unwrap();
            let sigs: Vec<Signature> = (0..32).map(|i| Signature(1000 + i)).collect();
            let accepted: usize = crossbeam::scope(|scope| {
                let handles: Vec<_> = sigs
                    .iter()
                    .map(|&sig| {
                        let store = &store;
                        scope.spawn(move |_| match store.put(sig, &sample_output(100)) {
                            Ok(_) => 1usize,
                            Err(HelixError::Store(_)) => 0usize,
                            Err(other) => panic!("unexpected error: {other}"),
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(
                accepted, 8,
                "{shards} shards: exactly the entries that fit are accepted"
            );
            assert_eq!(store.len(), 8, "{shards} shards");
            assert_ledger_consistent(&store, &sigs);
        }
    }

    #[test]
    fn puts_racing_eviction_never_corrupt_entries() {
        // Writers repeatedly put distinct signatures while an evictor
        // tears entries down; afterwards every surviving entry must decode
        // to exactly what its writer stored.
        let store = IntermediateStore::open(tmpdir("race-evict"), 1 << 22).unwrap();
        let per_writer = 24i64;
        let writers = 4i64;
        crossbeam::scope(|scope| {
            for w in 0..writers {
                let store = &store;
                scope.spawn(move |_| {
                    for k in 0..per_writer {
                        let sig = Signature((w * per_writer + k) as u64 + 1);
                        // Payload derived from the signature so readers can
                        // verify integrity without coordination.
                        store
                            .put(sig, &sample_output(10 + (sig.0 % 7) as i64))
                            .unwrap();
                    }
                });
            }
            let store = &store;
            scope.spawn(move |_| {
                for round in 0..64u64 {
                    let _ = store.evict(Signature(round % (writers * per_writer) as u64 + 1));
                }
            });
        })
        .unwrap();
        let sigs: Vec<Signature> = (0..writers * per_writer)
            .map(|i| Signature(i as u64 + 1))
            .collect();
        assert_ledger_consistent(&store, &sigs);
        let mut survivors = 0;
        for &sig in &sigs {
            if store.lookup(sig).is_some() {
                let (out, ..) = store.get(sig).unwrap();
                assert_eq!(
                    out,
                    sample_output(10 + (sig.0 % 7) as i64),
                    "entry {sig:?} corrupt"
                );
                survivors += 1;
            }
        }
        assert!(survivors > 0, "eviction should not have removed everything");
    }

    #[test]
    fn concurrent_readers_see_consistent_snapshots() {
        let store = IntermediateStore::open(tmpdir("race-read"), 1 << 22).unwrap();
        for i in 0..8 {
            store.put(Signature(i + 1), &sample_output(50)).unwrap();
        }
        crossbeam::scope(|scope| {
            for _ in 0..8 {
                let store = &store;
                scope.spawn(move |_| {
                    for i in 0..8u64 {
                        let (out, bytes, _) = store.get(Signature(i + 1)).unwrap();
                        assert_eq!(out, sample_output(50));
                        assert!(bytes > 0);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(store.len(), 8);
    }

    #[test]
    fn failed_put_rolls_back_reservation() {
        // Force the write to fail by deleting the store directory out from
        // under it; the reservation must be rolled back so the budget is
        // not permanently leaked.
        let dir = tmpdir("rollback");
        let store = IntermediateStore::open(&dir, 1 << 20).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let err = store.put(Signature(7), &sample_output(100)).unwrap_err();
        assert!(matches!(err, HelixError::Io(_)), "got: {err}");
        assert_eq!(store.used_bytes(), 0, "reservation must roll back");
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn shard_index_spreads_and_stays_in_range() {
        for shards in [1usize, 2, 5, 16] {
            let mut hit = vec![false; shards];
            for sig in 0..256u64 {
                let idx = shard_index(sig, shards);
                assert!(idx < shards);
                hit[idx] = true;
            }
            assert!(hit.iter().all(|&h| h), "{shards} shards all reachable");
        }
    }
}
