//! The intermediate store: signature-keyed materializations on disk.
//!
//! Each materialized node output lives in one file named by its Merkle
//! signature (`<sig>.hlx`), so validity is purely a key-existence check:
//! any workflow change upstream of a node changes its signature and the
//! old file simply stops matching (it stays on disk and becomes reusable
//! again if the user reverts — the paper's version-rollback story).
//!
//! The store enforces the materialization optimizer's **storage budget**
//! (paper §2.3: "with a maximum storage constraint") and reports measured
//! I/O durations to the cost model.
//!
//! # Sharding
//!
//! The entry map is split across `N` shards keyed by signature hash, so
//! the ready-queue executor's concurrent `get`/`put`/`evict` traffic does
//! not serialize on one lock — only operations on signatures that land in
//! the same shard contend. The byte ledger is a store-wide atomic with
//! the same **reservation** semantics the single-lock store had: a `put`
//! reserves its bytes with one compare-and-swap (performed while its
//! shard lock pins the size of any entry it overwrites), so concurrent
//! puts can never jointly overshoot the budget, and a failed write
//! releases exactly its own reservation. The shard count comes from
//! [`crate::EngineConfig::store_shards`] / `HELIX_STORE_SHARDS` (default
//! [`DEFAULT_STORE_SHARDS`]); `1` reproduces the old single-lock store.
//!
//! # Durability
//!
//! A store opened with [`Durability::Wal`] keeps a per-shard write-ahead
//! log under `<dir>/wal/shard-<i>.wal`: one JSON-line record is appended
//! (and optionally fsync'd) for every committed `put` and `evict`, and
//! the log is compacted into a snapshot (a log holding exactly one `put`
//! record per live entry) whenever it outgrows `compact_after_bytes`.
//! Opening a durable store replays the log, **verifies every record
//! against the files actually on disk** (missing file → entry dropped;
//! size mismatch → repaired to the file's actual size; untracked `.hlx`
//! file → adopted), truncates torn or corrupt tail records with a
//! warning — the store never refuses to start — and finally writes a
//! fresh snapshot. Because replay rebuilds the budget ledger from the
//! deduplicated, disk-verified entry map, a crash at *any* point between
//! a file write/rename and the matching log append can never double-count
//! budget. See docs/ARCHITECTURE.md § Durability.

use crate::ops::NodeOutput;
use crate::signature::Signature;
use crate::{HelixError, Result};
use helix_dataflow::fx::FxHashMap;
use helix_json::Json;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Process-wide counter for unique temp-file names (see [`IntermediateStore::put`]).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Default number of shards when `HELIX_STORE_SHARDS` is unset.
pub const DEFAULT_STORE_SHARDS: usize = 16;

/// The shard count the engine uses by default: the `HELIX_STORE_SHARDS`
/// environment variable when set to a positive integer, otherwise
/// [`DEFAULT_STORE_SHARDS`]. (One of the knobs unified behind
/// [`crate::EngineConfig::from_env`].)
pub fn default_store_shards() -> usize {
    crate::config_env::store_shards()
}

/// How (and whether) the store and engine state survive a process crash.
///
/// The default is [`Durability::Volatile`] — identical behavior and put
/// path to the store before the durable tier existed. Servers that must
/// resume sessions across restarts opt into [`Durability::Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No write-ahead log. Entries still live on disk and a reopen
    /// rescans the directory, but evictions, budget history, version
    /// DAGs, and sessions do not survive the process.
    #[default]
    Volatile,
    /// Per-shard write-ahead log plus engine/session snapshots.
    Wal {
        /// `fsync` each log record before `put`/`evict` returns. Turning
        /// this off (`wal-nosync`) keeps crash *consistency* — replay
        /// verifies against the files on disk — but a crash may lose the
        /// most recent records' bookkeeping until the files are rescanned.
        fsync: bool,
        /// Compact a shard's log into a snapshot once it exceeds this
        /// many bytes.
        compact_after_bytes: u64,
    },
}

impl Durability {
    /// Default log-compaction threshold for [`Durability::wal`].
    pub const DEFAULT_COMPACT_AFTER_BYTES: u64 = 1 << 20;

    /// Durable with fsync'd records — the safe default for serving.
    pub fn wal() -> Self {
        Durability::Wal {
            fsync: true,
            compact_after_bytes: Self::DEFAULT_COMPACT_AFTER_BYTES,
        }
    }

    /// Durable log without per-record fsync: crash-consistent but the
    /// tail may be lost on power failure. Useful when the fsync cost on
    /// the put path matters (see docs/PERFORMANCE.md).
    pub fn wal_nosync() -> Self {
        Durability::Wal {
            fsync: false,
            compact_after_bytes: Self::DEFAULT_COMPACT_AFTER_BYTES,
        }
    }

    /// Whether this mode persists state across restarts.
    pub fn is_durable(&self) -> bool {
        matches!(self, Durability::Wal { .. })
    }

    /// Overrides the WAL compaction threshold (the `HELIX_WAL_SNAPSHOT_BYTES`
    /// knob): a shard whose log exceeds this many bytes compacts into a
    /// snapshot on the next append, instead of only at open and on
    /// `POST /admin/snapshot`. A no-op for [`Durability::Volatile`].
    pub fn with_compact_after_bytes(self, bytes: u64) -> Self {
        match self {
            Durability::Volatile => Durability::Volatile,
            Durability::Wal { fsync, .. } => Durability::Wal {
                fsync,
                compact_after_bytes: bytes.max(1),
            },
        }
    }

    /// Parses the `HELIX_DURABILITY` environment value: `volatile`,
    /// `wal`, or `wal-nosync` (case-insensitive). `None` for anything
    /// else.
    pub fn from_env_value(value: &str) -> Option<Durability> {
        match value.to_ascii_lowercase().as_str() {
            "volatile" => Some(Durability::Volatile),
            "wal" => Some(Durability::wal()),
            "wal-nosync" | "wal_nosync" => Some(Durability::wal_nosync()),
            _ => None,
        }
    }
}

/// Builder for opening an [`IntermediateStore`] — the one constructor
/// path that replaced the positional `open`/`open_with_shards` family.
///
/// ```no_run
/// use helix_core::{Durability, StoreOptions};
/// let store = StoreOptions::new("/tmp/helix-store")
///     .budget_bytes(1 << 30)
///     .shards(16)
///     .durability(Durability::wal())
///     .open()
///     .unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct StoreOptions {
    dir: PathBuf,
    budget_bytes: u64,
    shards: usize,
    durability: Durability,
}

impl StoreOptions {
    /// Options rooted at `dir` with an unlimited budget, the default
    /// shard count ([`default_store_shards`]), and
    /// [`Durability::Volatile`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreOptions {
            dir: dir.into(),
            budget_bytes: u64::MAX,
            shards: default_store_shards(),
            durability: Durability::default(),
        }
    }

    /// Sets the storage budget in bytes.
    pub fn budget_bytes(mut self, budget_bytes: u64) -> Self {
        self.budget_bytes = budget_bytes;
        self
    }

    /// Sets the shard count (clamped to ≥ 1; `1` reproduces the
    /// historical single-lock store).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the durability mode.
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Opens (or creates) the store, replaying and verifying the WAL
    /// when the options are durable.
    pub fn open(self) -> Result<IntermediateStore> {
        IntermediateStore::open_with(self)
    }
}

/// Counters describing what the WAL replay found when a durable store
/// was opened. All zeros for [`Durability::Volatile`] stores.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Entries live after replay, verification, and adoption.
    pub recovered_entries: usize,
    /// `.hlx` files present on disk but absent from the log (e.g. written
    /// before a crash beat the log append, or inherited from a volatile
    /// store) that were adopted into the entry map.
    pub adopted_files: usize,
    /// Replayed entries dropped because their file no longer exists.
    pub dropped_entries: usize,
    /// Replayed entries whose logged size disagreed with the file on
    /// disk; the ledger uses the file's actual size.
    pub repaired_sizes: usize,
    /// Torn or corrupt log records skipped under the truncate-and-warn
    /// policy (the tail record after a mid-append crash lands here).
    pub torn_records: usize,
    /// Total WAL bytes read during replay.
    pub wal_bytes_replayed: u64,
}

/// Metadata for one stored entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryMeta {
    /// On-disk size in bytes.
    pub bytes: u64,
}

/// Append handle for one shard's write-ahead log.
#[derive(Debug)]
struct WalWriter {
    file: std::fs::File,
    path: PathBuf,
    bytes: u64,
    fsync: bool,
}

impl WalWriter {
    fn open_append(path: PathBuf, fsync: bool) -> std::io::Result<WalWriter> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let bytes = file.metadata()?.len();
        Ok(WalWriter {
            file,
            path,
            bytes,
            fsync,
        })
    }

    /// Appends one record (the trailing newline is added here) as a
    /// single write, then flushes — and fsyncs when configured — before
    /// returning.
    fn append(&mut self, record: &str) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(record.len() + 1);
        buf.extend_from_slice(record.as_bytes());
        buf.push(b'\n');
        self.file.write_all(&buf)?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.bytes += buf.len() as u64;
        Ok(())
    }
}

/// One shard of the signature-keyed maps.
#[derive(Debug, Default)]
struct Shard {
    /// Entries whose file exists on disk (visible to `lookup`/`get`).
    entries: FxHashMap<u64, EntryMeta>,
    /// Budget reserved by in-flight `put` calls, keyed by signature.
    /// Invisible to readers and to `evict` — a reservation becomes an
    /// entry only once its file is fully written and renamed.
    reserved: FxHashMap<u64, u64>,
    /// This shard's WAL append handle (durable stores only).
    wal: Option<WalWriter>,
}

/// The shared state behind [`IntermediateStore`] handles.
#[derive(Debug)]
struct StoreInner {
    dir: PathBuf,
    budget_bytes: u64,
    /// Bytes of entries plus in-flight reservations across all shards
    /// (the budget ledger).
    used_bytes: AtomicU64,
    shards: Box<[Mutex<Shard>]>,
    durability: Durability,
    /// `<dir>/wal` when durable, `None` when volatile.
    wal_dir: Option<PathBuf>,
    /// Unix seconds of the most recent snapshot compaction (0 = never).
    last_snapshot_unix: AtomicU64,
    /// What replay found at open time.
    recovery: RecoveryInfo,
    /// Per-instance failpoints for crash-consistency regression tests:
    /// simulate a kill between the file rename and the WAL append
    /// (`put`), or between file removal and log compaction (`clear`).
    #[cfg(test)]
    fail_skip_wal_append: std::sync::atomic::AtomicBool,
    #[cfg(test)]
    fail_skip_clear_compaction: std::sync::atomic::AtomicBool,
}

/// On-disk store with budget accounting, sharded for concurrent access.
///
/// An `IntermediateStore` is a cheap [`Clone`]-able handle to shared
/// state: every clone sees the same entries, ledger, and budget. The
/// ready-queue scheduler clones the handle into its persistent worker
/// threads (`'static` jobs cannot borrow the caller's store).
#[derive(Debug, Clone)]
pub struct IntermediateStore {
    inner: Arc<StoreInner>,
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn sig_file_name(sig: u64) -> String {
    format!("{sig:016x}.hlx")
}

fn wal_record_put(sig: u64, bytes: u64, secs: f64) -> String {
    Json::obj([
        ("v", Json::Num(1.0)),
        ("op", Json::str("put")),
        ("sig", Json::str(format!("{sig:016x}"))),
        ("bytes", Json::Num(bytes as f64)),
        ("secs", Json::Num(secs)),
        ("file", Json::str(sig_file_name(sig))),
    ])
    .to_string()
}

fn wal_record_evict(sig: u64) -> String {
    Json::obj([
        ("v", Json::Num(1.0)),
        ("op", Json::str("evict")),
        ("sig", Json::str(format!("{sig:016x}"))),
    ])
    .to_string()
}

/// Removes leftover `*.tmp` files (half-written entry or snapshot temp
/// files from a crashed process) from `dir`.
fn sweep_tmp_files(dir: &Path) -> Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
            let _ = std::fs::remove_file(&path);
        }
    }
    Ok(())
}

/// Replays one WAL file into `map` (last record per signature wins),
/// applying the truncate-and-warn policy to torn or corrupt records.
fn replay_wal_file(
    path: &Path,
    map: &mut FxHashMap<u64, u64>,
    recovery: &mut RecoveryInfo,
) -> Result<()> {
    let data = std::fs::read(path)?;
    recovery.wal_bytes_replayed += data.len() as u64;
    let mut offset = 0usize;
    while offset < data.len() {
        let (line, next) = match data[offset..].iter().position(|&b| b == b'\n') {
            Some(p) => (&data[offset..offset + p], offset + p + 1),
            None => (&data[offset..], data.len()),
        };
        offset = next;
        if line.is_empty() {
            continue;
        }
        let record = std::str::from_utf8(line)
            .ok()
            .and_then(|text| Json::parse(text).ok());
        let Some(record) = record else {
            recovery.torn_records += 1;
            eprintln!(
                "helix-store: dropping torn/corrupt WAL record in {} (truncate-and-warn)",
                path.display()
            );
            continue;
        };
        let sig = record
            .get("sig")
            .and_then(Json::as_str)
            .and_then(|hex| u64::from_str_radix(hex, 16).ok());
        match (record.get("op").and_then(Json::as_str), sig) {
            (Some("put"), Some(sig)) => {
                let Some(bytes) = record.get("bytes").and_then(Json::as_u64) else {
                    recovery.torn_records += 1;
                    eprintln!(
                        "helix-store: put record without byte count in {}",
                        path.display()
                    );
                    continue;
                };
                map.insert(sig, bytes);
            }
            (Some("evict"), Some(sig)) => {
                map.remove(&sig);
            }
            _ => {
                recovery.torn_records += 1;
                eprintln!(
                    "helix-store: skipping unrecognized WAL record in {}",
                    path.display()
                );
            }
        }
    }
    Ok(())
}

impl IntermediateStore {
    /// Opens (or creates) a store rooted at `dir` with the default shard
    /// count ([`default_store_shards`]), scanning existing entries so
    /// prior iterations' materializations are visible.
    #[deprecated(
        since = "0.2.0",
        note = "use `StoreOptions::new(dir).budget_bytes(..).open()`"
    )]
    pub fn open(dir: impl Into<PathBuf>, budget_bytes: u64) -> Result<Self> {
        StoreOptions::new(dir).budget_bytes(budget_bytes).open()
    }

    /// [`StoreOptions`] with an explicit shard count (clamped to ≥ 1).
    /// `1` reproduces the historical single-lock store.
    #[deprecated(
        since = "0.2.0",
        note = "use `StoreOptions::new(dir).budget_bytes(..).shards(..).open()`"
    )]
    pub fn open_with_shards(
        dir: impl Into<PathBuf>,
        budget_bytes: u64,
        shards: usize,
    ) -> Result<Self> {
        StoreOptions::new(dir)
            .budget_bytes(budget_bytes)
            .shards(shards)
            .open()
    }

    /// Opens (or creates) a store from [`StoreOptions`]. For durable
    /// options this replays the WAL, verifies every replayed entry
    /// against the files on disk, adopts untracked files, truncates torn
    /// tail records with a warning, and writes a fresh snapshot — it
    /// never refuses to start over a recoverable directory.
    pub fn open_with(options: StoreOptions) -> Result<Self> {
        let StoreOptions {
            dir,
            budget_bytes,
            shards,
            durability,
        } = options;
        std::fs::create_dir_all(&dir)?;
        sweep_tmp_files(&dir)?;
        let shard_count = shards.max(1);
        let mut recovery = RecoveryInfo::default();
        let mut map: FxHashMap<u64, u64> = FxHashMap::default();
        let wal_dir = match durability {
            Durability::Volatile => None,
            Durability::Wal { .. } => {
                let wal_dir = dir.join("wal");
                std::fs::create_dir_all(&wal_dir)?;
                sweep_tmp_files(&wal_dir)?;
                let mut wal_files: Vec<PathBuf> = std::fs::read_dir(&wal_dir)?
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("wal"))
                    .collect();
                wal_files.sort();
                for file in &wal_files {
                    replay_wal_file(file, &mut map, &mut recovery)?;
                }
                // Verify every replayed record against the disk: the
                // files are the ground truth, the log is the index.
                let replayed: Vec<(u64, u64)> = map.drain().collect();
                for (sig, logged_bytes) in replayed {
                    match std::fs::metadata(dir.join(sig_file_name(sig))) {
                        Ok(md) => {
                            if md.len() != logged_bytes {
                                recovery.repaired_sizes += 1;
                                eprintln!(
                                    "helix-store: WAL size for {sig:016x} was {logged_bytes}, \
                                     file is {} bytes; using the file",
                                    md.len()
                                );
                            }
                            map.insert(sig, md.len());
                        }
                        Err(_) => {
                            recovery.dropped_entries += 1;
                            eprintln!("helix-store: dropping WAL entry {sig:016x}: file missing");
                        }
                    }
                }
                Some(wal_dir)
            }
        };
        // Scan the directory: the volatile store's entire index, and the
        // durable store's adoption pass for files the log missed.
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("hlx") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(sig) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            if map.contains_key(&sig) {
                continue;
            }
            map.insert(sig, entry.metadata()?.len());
            if wal_dir.is_some() {
                recovery.adopted_files += 1;
            }
        }
        if wal_dir.is_some() {
            recovery.recovered_entries = map.len();
        }
        let mut shard_maps: Vec<Shard> = (0..shard_count).map(|_| Shard::default()).collect();
        let mut used = 0u64;
        for (sig, bytes) in map {
            shard_maps[shard_index(sig, shard_count)]
                .entries
                .insert(sig, EntryMeta { bytes });
            used += bytes;
        }
        let store = IntermediateStore {
            inner: Arc::new(StoreInner {
                dir,
                budget_bytes,
                used_bytes: AtomicU64::new(used),
                shards: shard_maps.into_iter().map(Mutex::new).collect(),
                durability,
                wal_dir,
                last_snapshot_unix: AtomicU64::new(0),
                recovery,
                #[cfg(test)]
                fail_skip_wal_append: std::sync::atomic::AtomicBool::new(false),
                #[cfg(test)]
                fail_skip_clear_compaction: std::sync::atomic::AtomicBool::new(false),
            }),
        };
        // A durable open ends with a fresh snapshot: stale log files from
        // previous shard layouts are dropped and the WAL starts compact.
        store.snapshot_now()?;
        Ok(store)
    }

    /// The storage budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.inner.budget_bytes
    }

    /// Number of shards the entry maps are split across.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The directory the store is rooted at.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The durability mode the store was opened with.
    pub fn durability(&self) -> Durability {
        self.inner.durability
    }

    /// What WAL replay found when this store was opened (all zeros for
    /// volatile stores).
    pub fn recovery(&self) -> RecoveryInfo {
        self.inner.recovery
    }

    /// Current total size of the write-ahead logs in bytes (0 when
    /// volatile).
    pub fn wal_bytes(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().wal.as_ref().map_or(0, |w| w.bytes))
            .sum()
    }

    /// Unix seconds of the most recent snapshot compaction; 0 if never
    /// (volatile stores stay 0).
    pub fn last_snapshot_unix(&self) -> u64 {
        self.inner.last_snapshot_unix.load(Ordering::Acquire)
    }

    /// Bytes currently used (entries plus in-flight reservations).
    pub fn used_bytes(&self) -> u64 {
        self.inner.used_bytes.load(Ordering::Acquire)
    }

    /// Bytes still available under the budget.
    pub fn remaining_bytes(&self) -> u64 {
        self.inner.budget_bytes.saturating_sub(self.used_bytes())
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().entries.len())
            .sum()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the entry for `sig`, if present.
    pub fn lookup(&self, sig: Signature) -> Option<EntryMeta> {
        self.shard(sig).lock().entries.get(&sig.0).copied()
    }

    fn shard_slot(&self, sig: Signature) -> usize {
        shard_index(sig.0, self.inner.shards.len())
    }

    fn shard(&self, sig: Signature) -> &Mutex<Shard> {
        &self.inner.shards[self.shard_slot(sig)]
    }

    fn path_for(&self, sig: Signature) -> PathBuf {
        self.inner.dir.join(sig_file_name(sig.0))
    }

    /// Rewrites shard `idx`'s WAL as a snapshot — exactly one `put`
    /// record per live entry — via temp file + rename, then reopens the
    /// append handle. Must be called with the shard's lock held.
    fn compact_shard_locked(&self, idx: usize, shard: &mut Shard) -> Result<()> {
        let Some(wal_dir) = &self.inner.wal_dir else {
            return Ok(());
        };
        let fsync = matches!(self.inner.durability, Durability::Wal { fsync: true, .. });
        let path = wal_dir.join(format!("shard-{idx}.wal"));
        let token = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let tmp = wal_dir.join(format!("shard-{idx}.wal.{token}.tmp"));
        let mut text = String::new();
        for (&sig, meta) in &shard.entries {
            text.push_str(&wal_record_put(sig, meta.bytes, 0.0));
            text.push('\n');
        }
        let written = (|| -> Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.flush()?;
            if fsync {
                file.sync_data()?;
            }
            Ok(())
        })();
        if let Err(err) = written.and_then(|()| Ok(std::fs::rename(&tmp, &path)?)) {
            let _ = std::fs::remove_file(&tmp);
            return Err(err);
        }
        shard.wal = Some(WalWriter::open_append(path, fsync)?);
        self.inner
            .last_snapshot_unix
            .store(unix_now(), Ordering::Release);
        Ok(())
    }

    /// Compacts every shard's WAL into a snapshot now and removes log
    /// files left over from older shard layouts. A no-op `Ok(())` for
    /// volatile stores. (`POST /admin/snapshot` lands here.)
    pub fn snapshot_now(&self) -> Result<()> {
        let Some(wal_dir) = &self.inner.wal_dir else {
            return Ok(());
        };
        for (idx, slot) in self.inner.shards.iter().enumerate() {
            let mut shard = slot.lock();
            self.compact_shard_locked(idx, &mut shard)?;
        }
        // Stale files (e.g. `shard-7.wal` after reopening with 4 shards)
        // are only removed after every live shard has a fresh snapshot:
        // a crash in between leaves extra logs whose records deduplicate
        // harmlessly on the next replay.
        let live: Vec<String> = (0..self.inner.shards.len())
            .map(|i| format!("shard-{i}.wal"))
            .collect();
        for entry in std::fs::read_dir(wal_dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("wal") {
                continue;
            }
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !live.iter().any(|l| l == name) {
                let _ = std::fs::remove_file(&path);
            }
        }
        Ok(())
    }

    /// Appends a WAL record for the shard, warning instead of failing:
    /// the entry map and the files on disk are already consistent, and
    /// replay verification self-heals a lost record (the file is the
    /// ground truth), so a log write error must not fail the operation.
    fn wal_append_locked(&self, idx: usize, shard: &mut Shard, record: &str) {
        let Durability::Wal {
            compact_after_bytes,
            ..
        } = self.inner.durability
        else {
            return;
        };
        match shard.wal.as_mut() {
            Some(wal) => {
                if let Err(err) = wal.append(record) {
                    eprintln!(
                        "helix-store: WAL append failed on {}: {err} (entry is on disk; \
                         replay will adopt it)",
                        wal.path.display()
                    );
                }
            }
            None => eprintln!("helix-store: WAL writer missing for shard {idx}"),
        }
        if shard
            .wal
            .as_ref()
            .is_some_and(|w| w.bytes > compact_after_bytes)
        {
            if let Err(err) = self.compact_shard_locked(idx, shard) {
                eprintln!("helix-store: WAL compaction failed for shard {idx}: {err}");
            }
        }
    }

    /// Writes an output under `sig`, enforcing the budget.
    ///
    /// Returns `(bytes_written, seconds)` on success. Writing is atomic
    /// (temp file + rename) so a crash cannot leave a torn entry behind,
    /// and the budget check **reserves** the entry's bytes with a single
    /// compare-and-swap on the ledger while the signature's shard lock is
    /// held — concurrent puts can never jointly overshoot the budget by
    /// each passing a stale check (the ready-queue executor's workers and
    /// any future background materializer rely on this). Reservations are
    /// a side ledger: readers and `evict` never see an entry whose file
    /// is not fully on disk, and a failed write releases only its own
    /// reservation, so racing `get`/`evict` calls cannot be corrupted by
    /// a put that later fails.
    ///
    /// An overwrite conservatively holds both the old entry's bytes and
    /// the new reservation until the rename lands (the old file stays
    /// readable throughout).
    ///
    /// On a durable store, a WAL record is appended (and fsync'd when
    /// configured) after the rename commits, while the shard lock is
    /// still held. A crash between the rename and the append loses only
    /// the record — replay's adoption pass recovers the entry from the
    /// file itself.
    ///
    /// # Errors
    /// [`HelixError::Store`] if the entry would exceed the budget.
    pub fn put(&self, sig: Signature, output: &NodeOutput) -> Result<(u64, f64)> {
        let started = Instant::now();
        // Encoding is part of the materialization cost the optimizer
        // trades off, so it is inside the timed region.
        let bytes = output.encode();
        let size = bytes.len() as u64;
        {
            let mut shard = self.shard(sig).lock();
            if shard.reserved.contains_key(&sig.0) {
                // Two in-flight puts of one signature would race the
                // rename. One run's plan-order merge never does this, but
                // two concurrent sessions materializing the same workflow
                // can: both pass the engine's lookup-before-put check,
                // and the loser lands here. The engine treats the error
                // as "someone else is materializing it" and moves on.
                return Err(HelixError::Store(format!(
                    "concurrent put already in flight for signature {}",
                    sig.hex()
                )));
            }
            // The shard lock pins `existing` (an evict of this signature
            // needs the same lock), so the CAS admits exactly the puts the
            // single-lock store would have.
            let existing = shard.entries.get(&sig.0).map(|m| m.bytes).unwrap_or(0);
            let reserve =
                self.inner
                    .used_bytes
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
                        (used.saturating_sub(existing) + size <= self.inner.budget_bytes)
                            .then_some(used + size)
                    });
            if reserve.is_err() {
                return Err(HelixError::Store(format!(
                    "materializing {size} bytes would exceed the {}-byte budget ({} used)",
                    self.inner.budget_bytes,
                    self.used_bytes()
                )));
            }
            shard.reserved.insert(sig.0, size);
        }
        // Unique temp name: a racing put of another signature must not
        // write through this one's half-finished temp file.
        let token = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let tmp = self.inner.dir.join(format!("{}.{token}.tmp", sig.hex()));
        let written = (|| -> Result<()> {
            let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            file.write_all(&bytes)?;
            file.flush()?;
            Ok(())
        })();
        let idx = self.shard_slot(sig);
        let mut shard = self.inner.shards[idx].lock();
        shard.reserved.remove(&sig.0);
        // The rename happens under the shard lock (a cheap metadata op)
        // so an `evict` of a replaced entry can never delete the fresh
        // file: evict holds the same lock across its own remove_file.
        let published = written.and_then(|()| Ok(std::fs::rename(&tmp, self.path_for(sig))?));
        if let Err(err) = published {
            // Release only this call's reservation; entries were never
            // touched, so concurrent get/evict state is unaffected.
            self.inner.used_bytes.fetch_sub(size, Ordering::AcqRel);
            drop(shard);
            let _ = std::fs::remove_file(&tmp);
            return Err(err);
        }
        let previous = shard.entries.insert(sig.0, EntryMeta { bytes: size });
        // The reservation's bytes stay in the ledger as the entry's; an
        // overwrite releases the replaced entry's share now.
        if let Some(meta) = previous {
            self.inner
                .used_bytes
                .fetch_sub(meta.bytes, Ordering::AcqRel);
        }
        let secs = started.elapsed().as_secs_f64();
        #[cfg(test)]
        if self
            .inner
            .fail_skip_wal_append
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            return Ok((size, secs));
        }
        self.wal_append_locked(idx, &mut shard, &wal_record_put(sig.0, size, secs));
        Ok((size, secs))
    }

    /// Reads the output stored under `sig`.
    ///
    /// Returns `(output, bytes_read, seconds)`.
    ///
    /// # Errors
    /// [`HelixError::Store`] if the entry is missing or corrupt.
    pub fn get(&self, sig: Signature) -> Result<(NodeOutput, u64, f64)> {
        if self.lookup(sig).is_none() {
            return Err(HelixError::Store(format!(
                "no entry for signature {}",
                sig.hex()
            )));
        }
        let started = Instant::now();
        let mut bytes = Vec::new();
        let mut file = std::io::BufReader::new(std::fs::File::open(self.path_for(sig))?);
        file.read_to_end(&mut bytes)?;
        let output = NodeOutput::decode(&bytes)?;
        let secs = started.elapsed().as_secs_f64();
        Ok((output, bytes.len() as u64, secs))
    }

    /// Deletes the entry for `sig` if present, freeing budget.
    ///
    /// The file removal happens under the signature's shard lock so it
    /// cannot race a concurrent `put`'s rename of a fresh file to the
    /// same path. The file is removed *before* any bookkeeping mutates:
    /// if the removal fails, the entry stays in the map and the ledger
    /// keeps its bytes, so the store's view still matches the disk (a
    /// reopen rescan would find the surviving file). An already-missing
    /// file (`NotFound`) counts as removed. On a durable store an evict
    /// record is appended after the bookkeeping; a crash before the
    /// append is harmless because replay drops entries whose file is
    /// gone.
    pub fn evict(&self, sig: Signature) -> Result<bool> {
        let idx = self.shard_slot(sig);
        let mut shard = self.inner.shards[idx].lock();
        let Some(meta) = shard.entries.get(&sig.0).copied() else {
            return Ok(false);
        };
        match std::fs::remove_file(self.path_for(sig)) {
            Ok(()) => {}
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => return Err(err.into()),
        }
        shard.entries.remove(&sig.0);
        self.inner
            .used_bytes
            .fetch_sub(meta.bytes, Ordering::AcqRel);
        self.wal_append_locked(idx, &mut shard, &wal_record_evict(sig.0));
        Ok(true)
    }

    /// Every signature currently stored, in no particular order (the
    /// retention sweep walks this to find unreferenced entries).
    pub fn signatures(&self) -> Vec<Signature> {
        self.inner
            .shards
            .iter()
            .flat_map(|shard| shard.lock().entries.keys().copied().collect::<Vec<_>>())
            .map(Signature)
            .collect()
    }

    /// Deletes everything (used between benchmark scenarios). In-flight
    /// `put` reservations keep their budget share so a concurrent put
    /// completing after the clear stays correctly accounted.
    ///
    /// On a durable store each shard's WAL is compacted to an empty
    /// snapshot after its files are removed; a crash in between leaves
    /// stale put records whose files are gone, which replay verification
    /// drops (never double-counts).
    pub fn clear(&self) -> Result<()> {
        // Hold every shard lock at once so the ledger reset sees a
        // consistent picture (locks are acquired in index order, and no
        // other path holds two shard locks, so this cannot deadlock).
        let mut guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        let mut reserved = 0u64;
        for (idx, guard) in guards.iter_mut().enumerate() {
            let sigs: Vec<u64> = guard.entries.keys().copied().collect();
            for sig in sigs {
                guard.entries.remove(&sig);
                let _ = std::fs::remove_file(self.inner.dir.join(sig_file_name(sig)));
            }
            reserved += guard.reserved.values().sum::<u64>();
            #[cfg(test)]
            if self
                .inner
                .fail_skip_clear_compaction
                .load(std::sync::atomic::Ordering::Relaxed)
            {
                continue;
            }
            if self.inner.wal_dir.is_some() {
                if let Err(err) = self.compact_shard_locked(idx, guard) {
                    eprintln!("helix-store: WAL compaction after clear failed: {err}");
                }
            }
        }
        self.inner.used_bytes.store(reserved, Ordering::Release);
        Ok(())
    }
}

/// Maps a signature to a shard index. Signatures are already Merkle
/// hashes, but the multiply-shift spreads any residual structure (e.g.
/// test signatures 1, 2, 3, …) across shards.
fn shard_index(sig: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mixed = sig.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((mixed >> 32) as usize) % shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_dataflow::{DataCollection, DataType, Row, Schema, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_store(dir: impl Into<PathBuf>, budget: u64) -> IntermediateStore {
        StoreOptions::new(dir).budget_bytes(budget).open().unwrap()
    }

    fn open_wal_store(dir: impl Into<PathBuf>, budget: u64) -> IntermediateStore {
        StoreOptions::new(dir)
            .budget_bytes(budget)
            .durability(Durability::wal())
            .open()
            .unwrap()
    }

    fn sample_output(n: i64) -> NodeOutput {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rows = (0..n).map(|i| Row(vec![Value::Int(i)])).collect();
        NodeOutput::Data(DataCollection::new(schema, rows).unwrap())
    }

    #[test]
    fn put_get_round_trip() {
        let store = open_store(tmpdir("rt"), 1 << 20);
        let out = sample_output(100);
        let (written, _) = store.put(Signature(7), &out).unwrap();
        assert!(written > 0);
        assert_eq!(store.len(), 1);
        let (back, read, _) = store.get(Signature(7)).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, out);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_open_shims_still_work() {
        let dir = tmpdir("shim");
        {
            let store = IntermediateStore::open(&dir, 1 << 20).unwrap();
            store.put(Signature(4), &sample_output(10)).unwrap();
        }
        let store = IntermediateStore::open_with_shards(&dir, 1 << 20, 3).unwrap();
        assert_eq!(store.shard_count(), 3);
        assert_eq!(store.len(), 1);
        assert_eq!(store.durability(), Durability::Volatile);
    }

    #[test]
    fn missing_entry_errors() {
        let store = open_store(tmpdir("miss"), 1 << 20);
        assert!(store.get(Signature(1)).is_err());
        assert!(store.lookup(Signature(1)).is_none());
    }

    #[test]
    fn budget_enforced() {
        let store = open_store(tmpdir("budget"), 64);
        let out = sample_output(1000);
        let err = store.put(Signature(1), &out).unwrap_err();
        assert!(err.to_string().contains("budget"));
        assert_eq!(store.used_bytes(), 0);
    }

    #[test]
    fn overwrite_replaces_budget_share() {
        let dir = tmpdir("overwrite");
        let store = open_store(&dir, 1 << 20);
        store.put(Signature(9), &sample_output(100)).unwrap();
        let used_first = store.used_bytes();
        store.put(Signature(9), &sample_output(100)).unwrap();
        assert_eq!(store.used_bytes(), used_first);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn reopen_rescans_entries() {
        let dir = tmpdir("reopen");
        {
            let store = open_store(&dir, 1 << 20);
            store.put(Signature(3), &sample_output(10)).unwrap();
        }
        let store = open_store(&dir, 1 << 20);
        assert_eq!(store.len(), 1);
        let (out, ..) = store.get(Signature(3)).unwrap();
        assert_eq!(out, sample_output(10));
        assert!(store.used_bytes() > 0);
    }

    #[test]
    fn reopen_with_different_shard_count_sees_all_entries() {
        let dir = tmpdir("reshard");
        {
            let store = StoreOptions::new(&dir)
                .budget_bytes(1 << 20)
                .shards(4)
                .open()
                .unwrap();
            for i in 0..12 {
                store.put(Signature(i + 1), &sample_output(10)).unwrap();
            }
        }
        for shards in [1, 3, 16] {
            let store = StoreOptions::new(&dir)
                .budget_bytes(1 << 20)
                .shards(shards)
                .open()
                .unwrap();
            assert_eq!(store.shard_count(), shards);
            assert_eq!(store.len(), 12, "{shards} shards");
            for i in 0..12 {
                assert_eq!(store.get(Signature(i + 1)).unwrap().0, sample_output(10));
            }
        }
    }

    #[test]
    fn evict_frees_budget() {
        let store = open_store(tmpdir("evict"), 1 << 20);
        store.put(Signature(5), &sample_output(10)).unwrap();
        assert!(store.evict(Signature(5)).unwrap());
        assert!(!store.evict(Signature(5)).unwrap());
        assert_eq!(store.used_bytes(), 0);
        assert!(store.get(Signature(5)).is_err());
    }

    #[test]
    fn evict_failure_leaves_entry_and_ledger_intact() {
        // Force `remove_file` to fail by replacing the entry's file with
        // a non-empty directory of the same name. The failed evict must
        // not mutate the map or the budget ledger — otherwise the store's
        // view disagrees with the disk and a reopen rescan resurrects the
        // "evicted" entry.
        let store = open_store(tmpdir("evict-fail"), 1 << 20);
        store.put(Signature(9), &sample_output(10)).unwrap();
        let used_before = store.used_bytes();
        let path = store.path_for(Signature(9));
        std::fs::remove_file(&path).unwrap();
        std::fs::create_dir(&path).unwrap();
        std::fs::write(path.join("occupant"), b"x").unwrap();

        assert!(store.evict(Signature(9)).is_err());
        assert!(
            store.lookup(Signature(9)).is_some(),
            "failed evict must keep the entry"
        );
        assert_eq!(
            store.used_bytes(),
            used_before,
            "failed evict must not free budget"
        );

        // Once the obstruction is gone the same evict succeeds; the file
        // is already absent (NotFound), which counts as removed.
        std::fs::remove_dir_all(&path).unwrap();
        assert!(store.evict(Signature(9)).unwrap());
        assert_eq!(store.used_bytes(), 0);
    }

    #[test]
    fn evict_treats_missing_file_as_removed() {
        let store = open_store(tmpdir("evict-gone"), 1 << 20);
        store.put(Signature(3), &sample_output(10)).unwrap();
        std::fs::remove_file(store.path_for(Signature(3))).unwrap();
        assert!(store.evict(Signature(3)).unwrap());
        assert_eq!(store.used_bytes(), 0);
        assert!(store.lookup(Signature(3)).is_none());
    }

    #[test]
    fn signatures_lists_live_entries() {
        let store = open_store(tmpdir("sigs"), 1 << 20);
        for i in 1..=5 {
            store.put(Signature(i), &sample_output(4)).unwrap();
        }
        store.evict(Signature(3)).unwrap();
        let mut sigs: Vec<u64> = store.signatures().into_iter().map(|s| s.0).collect();
        sigs.sort_unstable();
        assert_eq!(sigs, vec![1, 2, 4, 5]);
    }

    #[test]
    fn clear_removes_everything() {
        let store = open_store(tmpdir("clear"), 1 << 20);
        store.put(Signature(1), &sample_output(5)).unwrap();
        store.put(Signature(2), &sample_output(5)).unwrap();
        store.clear().unwrap();
        assert!(store.is_empty());
        assert_eq!(store.remaining_bytes(), 1 << 20);
    }

    /// Bookkeeping invariant shared by the stress tests: the byte ledger
    /// must equal the sum of live entries and respect the budget.
    fn assert_ledger_consistent(store: &IntermediateStore, sigs: &[Signature]) {
        let summed: u64 = sigs
            .iter()
            .filter_map(|&s| store.lookup(s))
            .map(|m| m.bytes)
            .sum();
        assert_eq!(
            store.used_bytes(),
            summed,
            "ledger out of sync with entries"
        );
        assert!(
            store.used_bytes() <= store.budget_bytes(),
            "budget exceeded: {} > {}",
            store.used_bytes(),
            store.budget_bytes()
        );
    }

    /// The ledger of a reopened durable store must equal the bytes of the
    /// `.hlx` files actually in the directory — the acceptance check for
    /// "replay can never double-count budget".
    fn assert_matches_disk(store: &IntermediateStore) {
        let on_disk: u64 = std::fs::read_dir(store.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("hlx"))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert_eq!(store.used_bytes(), on_disk, "ledger != bytes on disk");
    }

    #[test]
    fn concurrent_puts_never_exceed_budget() {
        // Each entry is ~1.3 KiB encoded; a budget of ~8 entries with 32
        // threads racing means most puts must be rejected — and the
        // accepted set must exactly account for every used byte. Run at
        // several shard counts: with many shards the racing puts hold
        // *different* locks, so the ledger CAS is all that stands between
        // them and a joint overshoot.
        let one_entry = sample_output(100).encode().len() as u64;
        let budget = one_entry * 8 + one_entry / 2;
        for shards in [1, 4, 16] {
            let store = StoreOptions::new(tmpdir("race-budget"))
                .budget_bytes(budget)
                .shards(shards)
                .open()
                .unwrap();
            let sigs: Vec<Signature> = (0..32).map(|i| Signature(1000 + i)).collect();
            let accepted: usize = crossbeam::scope(|scope| {
                let handles: Vec<_> = sigs
                    .iter()
                    .map(|&sig| {
                        let store = &store;
                        scope.spawn(move |_| match store.put(sig, &sample_output(100)) {
                            Ok(_) => 1usize,
                            Err(HelixError::Store(_)) => 0usize,
                            Err(other) => panic!("unexpected error: {other}"),
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(
                accepted, 8,
                "{shards} shards: exactly the entries that fit are accepted"
            );
            assert_eq!(store.len(), 8, "{shards} shards");
            assert_ledger_consistent(&store, &sigs);
        }
    }

    #[test]
    fn puts_racing_eviction_never_corrupt_entries() {
        // Writers repeatedly put distinct signatures while an evictor
        // tears entries down; afterwards every surviving entry must decode
        // to exactly what its writer stored. Run durable so the WAL
        // append path is exercised under the same contention.
        let store = open_wal_store(tmpdir("race-evict"), 1 << 22);
        let per_writer = 24i64;
        let writers = 4i64;
        crossbeam::scope(|scope| {
            for w in 0..writers {
                let store = &store;
                scope.spawn(move |_| {
                    for k in 0..per_writer {
                        let sig = Signature((w * per_writer + k) as u64 + 1);
                        // Payload derived from the signature so readers can
                        // verify integrity without coordination.
                        store
                            .put(sig, &sample_output(10 + (sig.0 % 7) as i64))
                            .unwrap();
                    }
                });
            }
            let store = &store;
            scope.spawn(move |_| {
                for round in 0..64u64 {
                    let _ = store.evict(Signature(round % (writers * per_writer) as u64 + 1));
                }
            });
        })
        .unwrap();
        let sigs: Vec<Signature> = (0..writers * per_writer)
            .map(|i| Signature(i as u64 + 1))
            .collect();
        assert_ledger_consistent(&store, &sigs);
        let mut survivors = 0;
        for &sig in &sigs {
            if store.lookup(sig).is_some() {
                let (out, ..) = store.get(sig).unwrap();
                assert_eq!(
                    out,
                    sample_output(10 + (sig.0 % 7) as i64),
                    "entry {sig:?} corrupt"
                );
                survivors += 1;
            }
        }
        assert!(survivors > 0, "eviction should not have removed everything");
    }

    #[test]
    fn concurrent_readers_see_consistent_snapshots() {
        let store = open_store(tmpdir("race-read"), 1 << 22);
        for i in 0..8 {
            store.put(Signature(i + 1), &sample_output(50)).unwrap();
        }
        crossbeam::scope(|scope| {
            for _ in 0..8 {
                let store = &store;
                scope.spawn(move |_| {
                    for i in 0..8u64 {
                        let (out, bytes, _) = store.get(Signature(i + 1)).unwrap();
                        assert_eq!(out, sample_output(50));
                        assert!(bytes > 0);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(store.len(), 8);
    }

    #[test]
    fn failed_put_rolls_back_reservation() {
        // Force the write to fail by deleting the store directory out from
        // under it; the reservation must be rolled back so the budget is
        // not permanently leaked.
        let dir = tmpdir("rollback");
        let store = open_store(&dir, 1 << 20);
        std::fs::remove_dir_all(&dir).unwrap();
        let err = store.put(Signature(7), &sample_output(100)).unwrap_err();
        assert!(matches!(err, HelixError::Io(_)), "got: {err}");
        assert_eq!(store.used_bytes(), 0, "reservation must roll back");
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn shard_index_spreads_and_stays_in_range() {
        for shards in [1usize, 2, 5, 16] {
            let mut hit = vec![false; shards];
            for sig in 0..256u64 {
                let idx = shard_index(sig, shards);
                assert!(idx < shards);
                hit[idx] = true;
            }
            assert!(hit.iter().all(|&h| h), "{shards} shards all reachable");
        }
    }

    // ------------------------------------------------------------------
    // Durable tier
    // ------------------------------------------------------------------

    #[test]
    fn wal_reopen_restores_entries_and_ledger() {
        let dir = tmpdir("wal-reopen");
        let used;
        {
            let store = open_wal_store(&dir, 1 << 20);
            for i in 1..=6 {
                store
                    .put(Signature(i), &sample_output(10 + i as i64))
                    .unwrap();
            }
            store.evict(Signature(4)).unwrap();
            used = store.used_bytes();
            assert!(store.wal_bytes() > 0);
            assert!(store.last_snapshot_unix() > 0);
        }
        let store = open_wal_store(&dir, 1 << 20);
        assert_eq!(store.len(), 5);
        assert_eq!(store.used_bytes(), used);
        assert_eq!(store.recovery().recovered_entries, 5);
        assert_eq!(store.recovery().dropped_entries, 0);
        assert_eq!(store.recovery().torn_records, 0);
        assert_matches_disk(&store);
        for i in [1u64, 2, 3, 5, 6] {
            assert_eq!(
                store.get(Signature(i)).unwrap().0,
                sample_output(10 + i as i64)
            );
        }
        assert!(store.lookup(Signature(4)).is_none(), "evict must replay");
    }

    #[test]
    fn wal_replay_drops_entries_whose_file_is_missing() {
        let dir = tmpdir("wal-drop");
        {
            let store = open_wal_store(&dir, 1 << 20);
            for i in 1..=3 {
                store.put(Signature(i), &sample_output(10)).unwrap();
            }
        }
        // Simulate a crash window: the file is gone but its log records
        // survive (an evict whose record append never landed).
        std::fs::remove_file(dir.join(sig_file_name(2))).unwrap();
        let store = open_wal_store(&dir, 1 << 20);
        assert_eq!(store.len(), 2);
        assert_eq!(store.recovery().dropped_entries, 1);
        assert_matches_disk(&store);
    }

    #[test]
    fn wal_replay_repairs_size_mismatches_from_disk() {
        let dir = tmpdir("wal-repair");
        {
            let store = open_wal_store(&dir, 1 << 20);
            store.put(Signature(8), &sample_output(50)).unwrap();
        }
        // The file changed size behind the log's back — the file wins.
        std::fs::write(dir.join(sig_file_name(8)), b"short").unwrap();
        let store = open_wal_store(&dir, 1 << 20);
        assert_eq!(store.len(), 1);
        assert_eq!(store.recovery().repaired_sizes, 1);
        assert_eq!(store.used_bytes(), 5);
        assert_matches_disk(&store);
    }

    #[test]
    fn wal_open_adopts_files_from_a_volatile_store() {
        let dir = tmpdir("wal-adopt");
        {
            let store = open_store(&dir, 1 << 20);
            for i in 1..=4 {
                store.put(Signature(i), &sample_output(10)).unwrap();
            }
        }
        let store = open_wal_store(&dir, 1 << 20);
        assert_eq!(store.len(), 4);
        assert_eq!(store.recovery().adopted_files, 4);
        assert_eq!(store.recovery().recovered_entries, 4);
        assert_matches_disk(&store);
        // The adoption is now snapshotted: a second reopen replays it
        // from the log instead.
        drop(store);
        let store = open_wal_store(&dir, 1 << 20);
        assert_eq!(store.recovery().adopted_files, 0);
        assert_eq!(store.recovery().recovered_entries, 4);
    }

    #[test]
    fn torn_wal_tail_is_truncated_with_a_warning() {
        let dir = tmpdir("wal-torn");
        {
            let store = StoreOptions::new(&dir)
                .budget_bytes(1 << 20)
                .shards(1)
                .durability(Durability::wal())
                .open()
                .unwrap();
            for i in 1..=3 {
                store.put(Signature(i), &sample_output(10)).unwrap();
            }
        }
        // Append a torn record (no closing brace, no newline) as a crash
        // mid-append would leave.
        let wal = dir.join("wal").join("shard-0.wal");
        let mut file = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        file.write_all(b"{\"v\":1,\"op\":\"put\",\"sig\":\"00000000000000ff\",\"byt")
            .unwrap();
        drop(file);
        let store = StoreOptions::new(&dir)
            .budget_bytes(1 << 20)
            .shards(1)
            .durability(Durability::wal())
            .open()
            .unwrap();
        assert_eq!(store.len(), 3, "torn tail must not lose committed entries");
        assert_eq!(store.recovery().torn_records, 1);
        assert_matches_disk(&store);
        // Open rewrote the snapshot, so the torn record is gone for good.
        drop(store);
        let store = StoreOptions::new(&dir)
            .budget_bytes(1 << 20)
            .shards(1)
            .durability(Durability::wal())
            .open()
            .unwrap();
        assert_eq!(store.recovery().torn_records, 0);
    }

    #[test]
    fn crash_between_rename_and_wal_append_cannot_double_count() {
        // Failpoint: the put's file rename lands but the WAL record is
        // never appended — the window the ISSUE's bugfix audit names.
        let dir = tmpdir("wal-fp-put");
        {
            let store = open_wal_store(&dir, 1 << 20);
            store.put(Signature(1), &sample_output(30)).unwrap();
            store
                .inner
                .fail_skip_wal_append
                .store(true, std::sync::atomic::Ordering::Relaxed);
            // An overwrite whose new size differs: the log still holds
            // the OLD size for sig 1, the disk holds the new file.
            store.put(Signature(1), &sample_output(90)).unwrap();
            // And a brand-new entry with no log record at all.
            store.put(Signature(2), &sample_output(20)).unwrap();
        }
        let store = open_wal_store(&dir, 1 << 20);
        assert_eq!(store.len(), 2);
        // sig 1's stale logged size was repaired from disk; sig 2 was
        // adopted from its file. Either way the ledger equals the disk —
        // counted once, not twice.
        assert_eq!(store.recovery().repaired_sizes, 1);
        assert_eq!(store.recovery().adopted_files, 1);
        assert_matches_disk(&store);
    }

    #[test]
    fn crash_during_clear_cannot_resurrect_entries() {
        // Failpoint: clear removes the files but dies before compacting
        // the WAL, leaving stale put records for deleted files.
        let dir = tmpdir("wal-fp-clear");
        {
            let store = open_wal_store(&dir, 1 << 20);
            for i in 1..=5 {
                store.put(Signature(i), &sample_output(10)).unwrap();
            }
            store
                .inner
                .fail_skip_clear_compaction
                .store(true, std::sync::atomic::Ordering::Relaxed);
            store.clear().unwrap();
        }
        let store = open_wal_store(&dir, 1 << 20);
        assert_eq!(store.len(), 0, "stale put records must not resurrect");
        assert_eq!(store.used_bytes(), 0);
        assert_eq!(store.recovery().dropped_entries, 5);
        assert_matches_disk(&store);
    }

    #[test]
    fn wal_compaction_caps_log_size() {
        let dir = tmpdir("wal-compact");
        let store = StoreOptions::new(&dir)
            .budget_bytes(1 << 22)
            .shards(1)
            .durability(Durability::Wal {
                fsync: false,
                compact_after_bytes: 512,
            })
            .open()
            .unwrap();
        for round in 0..40u64 {
            store
                .put(Signature(round % 4 + 1), &sample_output(20))
                .unwrap();
        }
        // 40 puts × ~100 bytes per record would be ~4 KiB of log; the
        // 512-byte threshold keeps it at snapshot size (4 live entries).
        assert!(
            store.wal_bytes() < 1024,
            "log should have compacted: {} bytes",
            store.wal_bytes()
        );
        assert!(store.last_snapshot_unix() > 0);
        drop(store);
        let store = open_wal_store(&dir, 1 << 22);
        assert_eq!(store.len(), 4);
        assert_matches_disk(&store);
    }

    #[test]
    fn snapshot_now_is_a_noop_for_volatile_stores() {
        let store = open_store(tmpdir("vol-snap"), 1 << 20);
        store.put(Signature(1), &sample_output(5)).unwrap();
        store.snapshot_now().unwrap();
        assert_eq!(store.wal_bytes(), 0);
        assert_eq!(store.last_snapshot_unix(), 0);
        assert_eq!(store.recovery(), RecoveryInfo::default());
    }

    #[test]
    fn wal_reopen_across_shard_counts_drops_stale_logs() {
        let dir = tmpdir("wal-reshard");
        {
            let store = StoreOptions::new(&dir)
                .budget_bytes(1 << 20)
                .shards(8)
                .durability(Durability::wal())
                .open()
                .unwrap();
            for i in 1..=10 {
                store.put(Signature(i), &sample_output(10)).unwrap();
            }
        }
        let store = StoreOptions::new(&dir)
            .budget_bytes(1 << 20)
            .shards(2)
            .durability(Durability::wal())
            .open()
            .unwrap();
        assert_eq!(store.len(), 10);
        assert_matches_disk(&store);
        let wal_files: Vec<String> = std::fs::read_dir(dir.join("wal"))
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".wal"))
            .collect();
        assert_eq!(
            wal_files.len(),
            2,
            "stale shard logs removed: {wal_files:?}"
        );
    }
}
