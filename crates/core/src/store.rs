//! The intermediate store: signature-keyed materializations on disk.
//!
//! Each materialized node output lives in one file named by its Merkle
//! signature (`<sig>.hlx`), so validity is purely a key-existence check:
//! any workflow change upstream of a node changes its signature and the
//! old file simply stops matching (it stays on disk and becomes reusable
//! again if the user reverts — the paper's version-rollback story).
//!
//! The store enforces the materialization optimizer's **storage budget**
//! (paper §2.3: "with a maximum storage constraint") and reports measured
//! I/O durations to the cost model.

use crate::ops::NodeOutput;
use crate::signature::Signature;
use crate::{HelixError, Result};
use helix_dataflow::fx::FxHashMap;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::Instant;

/// Metadata for one stored entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryMeta {
    /// On-disk size in bytes.
    pub bytes: u64,
}

/// On-disk store with budget accounting.
#[derive(Debug)]
pub struct IntermediateStore {
    dir: PathBuf,
    budget_bytes: u64,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: FxHashMap<u64, EntryMeta>,
    used_bytes: u64,
}

impl IntermediateStore {
    /// Opens (or creates) a store rooted at `dir`, scanning existing
    /// entries so prior iterations' materializations are visible.
    pub fn open(dir: impl Into<PathBuf>, budget_bytes: u64) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut inner = Inner::default();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("hlx") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(sig) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            let bytes = entry.metadata()?.len();
            inner.entries.insert(sig, EntryMeta { bytes });
            inner.used_bytes += bytes;
        }
        Ok(IntermediateStore {
            dir,
            budget_bytes,
            inner: Mutex::new(inner),
        })
    }

    /// The storage budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used_bytes
    }

    /// Bytes still available under the budget.
    pub fn remaining_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        self.budget_bytes.saturating_sub(inner.used_bytes)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the entry for `sig`, if present.
    pub fn lookup(&self, sig: Signature) -> Option<EntryMeta> {
        self.inner.lock().entries.get(&sig.0).copied()
    }

    fn path_for(&self, sig: Signature) -> PathBuf {
        self.dir.join(format!("{}.hlx", sig.hex()))
    }

    /// Writes an output under `sig`, enforcing the budget.
    ///
    /// Returns `(bytes_written, seconds)` on success. Writing is atomic
    /// (temp file + rename) so a crash cannot leave a torn entry behind.
    ///
    /// # Errors
    /// [`HelixError::Store`] if the entry would exceed the budget.
    pub fn put(&self, sig: Signature, output: &NodeOutput) -> Result<(u64, f64)> {
        let started = Instant::now();
        // Encoding is part of the materialization cost the optimizer
        // trades off, so it is inside the timed region.
        let bytes = output.encode();
        let size = bytes.len() as u64;
        {
            let inner = self.inner.lock();
            let existing = inner.entries.get(&sig.0).map(|m| m.bytes).unwrap_or(0);
            if inner.used_bytes - existing + size > self.budget_bytes {
                return Err(HelixError::Store(format!(
                    "materializing {size} bytes would exceed the {}-byte budget ({} used)",
                    self.budget_bytes, inner.used_bytes
                )));
            }
        }
        let tmp = self.dir.join(format!("{}.tmp", sig.hex()));
        {
            let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            file.write_all(&bytes)?;
            file.flush()?;
        }
        std::fs::rename(&tmp, self.path_for(sig))?;
        let secs = started.elapsed().as_secs_f64();
        let mut inner = self.inner.lock();
        let previous = inner.entries.insert(sig.0, EntryMeta { bytes: size });
        inner.used_bytes = inner.used_bytes - previous.map(|m| m.bytes).unwrap_or(0) + size;
        Ok((size, secs))
    }

    /// Reads the output stored under `sig`.
    ///
    /// Returns `(output, bytes_read, seconds)`.
    ///
    /// # Errors
    /// [`HelixError::Store`] if the entry is missing or corrupt.
    pub fn get(&self, sig: Signature) -> Result<(NodeOutput, u64, f64)> {
        if self.lookup(sig).is_none() {
            return Err(HelixError::Store(format!(
                "no entry for signature {}",
                sig.hex()
            )));
        }
        let started = Instant::now();
        let mut bytes = Vec::new();
        let mut file = std::io::BufReader::new(std::fs::File::open(self.path_for(sig))?);
        file.read_to_end(&mut bytes)?;
        let output = NodeOutput::decode(&bytes)?;
        let secs = started.elapsed().as_secs_f64();
        Ok((output, bytes.len() as u64, secs))
    }

    /// Deletes the entry for `sig` if present, freeing budget.
    pub fn evict(&self, sig: Signature) -> Result<bool> {
        let mut inner = self.inner.lock();
        if let Some(meta) = inner.entries.remove(&sig.0) {
            inner.used_bytes -= meta.bytes;
            drop(inner);
            std::fs::remove_file(self.path_for(sig))?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Deletes everything (used between benchmark scenarios).
    pub fn clear(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let sigs: Vec<u64> = inner.entries.keys().copied().collect();
        for sig in sigs {
            inner.entries.remove(&sig);
            let _ = std::fs::remove_file(self.dir.join(format!("{sig:016x}.hlx")));
        }
        inner.used_bytes = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_dataflow::{DataCollection, DataType, Row, Schema, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_output(n: i64) -> NodeOutput {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rows = (0..n).map(|i| Row(vec![Value::Int(i)])).collect();
        NodeOutput::Data(DataCollection::new(schema, rows).unwrap())
    }

    #[test]
    fn put_get_round_trip() {
        let store = IntermediateStore::open(tmpdir("rt"), 1 << 20).unwrap();
        let out = sample_output(100);
        let (written, _) = store.put(Signature(7), &out).unwrap();
        assert!(written > 0);
        assert_eq!(store.len(), 1);
        let (back, read, _) = store.get(Signature(7)).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, out);
    }

    #[test]
    fn missing_entry_errors() {
        let store = IntermediateStore::open(tmpdir("miss"), 1 << 20).unwrap();
        assert!(store.get(Signature(1)).is_err());
        assert!(store.lookup(Signature(1)).is_none());
    }

    #[test]
    fn budget_enforced() {
        let store = IntermediateStore::open(tmpdir("budget"), 64).unwrap();
        let out = sample_output(1000);
        let err = store.put(Signature(1), &out).unwrap_err();
        assert!(err.to_string().contains("budget"));
        assert_eq!(store.used_bytes(), 0);
    }

    #[test]
    fn overwrite_replaces_budget_share() {
        let dir = tmpdir("overwrite");
        let store = IntermediateStore::open(&dir, 1 << 20).unwrap();
        store.put(Signature(9), &sample_output(100)).unwrap();
        let used_first = store.used_bytes();
        store.put(Signature(9), &sample_output(100)).unwrap();
        assert_eq!(store.used_bytes(), used_first);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn reopen_rescans_entries() {
        let dir = tmpdir("reopen");
        {
            let store = IntermediateStore::open(&dir, 1 << 20).unwrap();
            store.put(Signature(3), &sample_output(10)).unwrap();
        }
        let store = IntermediateStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(store.len(), 1);
        let (out, ..) = store.get(Signature(3)).unwrap();
        assert_eq!(out, sample_output(10));
        assert!(store.used_bytes() > 0);
    }

    #[test]
    fn evict_frees_budget() {
        let store = IntermediateStore::open(tmpdir("evict"), 1 << 20).unwrap();
        store.put(Signature(5), &sample_output(10)).unwrap();
        assert!(store.evict(Signature(5)).unwrap());
        assert!(!store.evict(Signature(5)).unwrap());
        assert_eq!(store.used_bytes(), 0);
        assert!(store.get(Signature(5)).is_err());
    }

    #[test]
    fn clear_removes_everything() {
        let store = IntermediateStore::open(tmpdir("clear"), 1 << 20).unwrap();
        store.put(Signature(1), &sample_output(5)).unwrap();
        store.put(Signature(2), &sample_output(5)).unwrap();
        store.clear().unwrap();
        assert!(store.is_empty());
        assert_eq!(store.remaining_bytes(), 1 << 20);
    }
}
