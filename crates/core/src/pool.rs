//! A persistent worker pool for the ready-queue scheduler.
//!
//! PR 3's executor spawned a scoped thread pool per `Engine::run`, which
//! priced every iteration with thread construction and teardown — one of
//! the reasons parallel runs trailed sequential ones on cheap DAGs. This
//! pool is created once (owned by `Engine`, or process-global for
//! standalone `execute_plan` callers), parks idle threads on a condvar,
//! and hands jobs only to threads that can take them immediately:
//!
//! * [`WorkerPool::try_spawn`] assigns the job to an idle parked thread,
//!   or spawns a new thread while under the thread cap. If neither is
//!   possible it returns `false` and the caller proceeds without that
//!   helper — the scheduler's calling thread always drives the merge
//!   cursor and helps execute, so a run degrades gracefully to fewer
//!   workers instead of queueing behind other runs.
//! * Threads park on a condvar between jobs; an idle pool costs nothing
//!   but memory.
//! * Dropping the pool flags shutdown, wakes every thread, and joins them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work handed to a pool thread (for the scheduler: one
/// worker's entire run-the-ready-queue loop).
pub type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct PoolState {
    queue: VecDeque<Job>,
    /// Threads parked on the condvar, not yet claimed by a queued job.
    idle: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

/// A growable pool of persistent worker threads with idle parking.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    max_threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .field("idle", &crate::lock(&self.shared.state).idle)
            .field("max_threads", &self.max_threads)
            .finish()
    }
}

/// Default thread cap: generous enough that concurrent sessions each get
/// their helpers, bounded so runaway concurrency cannot fork-bomb.
fn default_max_threads() -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    (cores * 4).max(16)
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool with the default thread cap. Threads spawn
    /// lazily on demand and persist until the pool is dropped.
    pub fn new() -> Self {
        WorkerPool::with_max_threads(default_max_threads())
    }

    /// Creates an empty pool capped at `max_threads` (min 1).
    pub fn with_max_threads(max_threads: usize) -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState::default()),
                work_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            handles: Mutex::new(Vec::new()),
            max_threads: max_threads.max(1),
        }
    }

    /// Number of threads currently alive.
    pub fn threads(&self) -> usize {
        crate::lock(&self.handles).len()
    }

    /// Hands `job` to a worker that can start it immediately: an idle
    /// parked thread if one exists, else a freshly spawned thread while
    /// under the cap. Returns `false` (without queueing) when every
    /// thread is busy and the pool is at its cap — the caller should run
    /// without this helper rather than wait.
    pub fn try_spawn(&self, job: Job) -> bool {
        let job = {
            let mut state = crate::lock(&self.shared.state);
            // Parking and job pickup also happen under this lock, so
            // `queue.len() < idle` exactly means "a parked thread remains
            // unclaimed by the jobs already queued".
            if state.queue.len() < state.idle {
                state.queue.push_back(job);
                drop(state);
                self.shared.work_cv.notify_one();
                return true;
            }
            job
        };
        // No idle thread: grow the pool if the cap allows.
        let mut handles = crate::lock(&self.handles);
        if handles.len() >= self.max_threads {
            return false;
        }
        let shared = Arc::clone(&self.shared);
        let name = format!("helix-worker-{}", handles.len());
        let spawned = std::thread::Builder::new()
            .name(name)
            .spawn(move || worker_loop(&shared, Some(job)));
        match spawned {
            Ok(handle) => {
                handles.push(handle);
                true
            }
            Err(_) => false,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        let handles = std::mem::take(&mut *crate::lock(&self.handles));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, first: Option<Job>) {
    if let Some(job) = first {
        job();
    }
    loop {
        let job = {
            let mut state = crate::lock(&shared.state);
            state.idle += 1;
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = state.queue.pop_front() {
                    state.idle -= 1;
                    break job;
                }
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_threads_are_reused() {
        let pool = WorkerPool::with_max_threads(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            // Run jobs one at a time so each lands on a parked thread. The
            // previous worker may still be re-parking, so retry briefly.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                let tx = tx.clone();
                if pool.try_spawn(Box::new(move || tx.send(i).unwrap())) {
                    break;
                }
                assert!(std::time::Instant::now() < deadline, "try_spawn starved");
                std::thread::yield_now();
            }
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), i);
        }
        assert!(
            pool.threads() <= 2,
            "sequential jobs must reuse parked threads, spawned {}",
            pool.threads()
        );
    }

    #[test]
    fn refuses_beyond_cap_when_all_busy() {
        let pool = WorkerPool::with_max_threads(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (tx, rx) = mpsc::channel();
        let g = Arc::clone(&gate);
        assert!(pool.try_spawn(Box::new(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            tx.send(()).unwrap();
        })));
        // The only thread is blocked on the gate: no helper available.
        assert!(!pool.try_spawn(Box::new(|| {})));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
    }

    #[test]
    fn drop_joins_idle_threads() {
        let pool = WorkerPool::with_max_threads(4);
        let (tx, rx) = mpsc::channel();
        for _ in 0..3 {
            let tx = tx.clone();
            assert!(pool.try_spawn(Box::new(move || tx.send(()).unwrap())));
        }
        for _ in 0..3 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        drop(pool); // must not hang with threads parked
    }
}
