//! Workflow versioning: history, metric trends, and version diffs.
//!
//! Backs the demo's Versions and Metrics tabs (§3.1): every executed
//! iteration is recorded as a version with a DAG snapshot, its metrics and
//! runtime, a git-log-style browser, "best version" shortcuts, and
//! git-like diffs between any two versions.

use crate::ops::Stage;
use crate::report::IterationReport;
use crate::workflow::Workflow;
use std::sync::Arc;

/// An immutable snapshot of one node's definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// Node name.
    pub name: String,
    /// Operator tag (`train`, `csv_scan`, …).
    pub tag: String,
    /// Canonical parameter string.
    pub params: String,
    /// Parent node names, in wiring order.
    pub parents: Vec<String>,
    /// Workflow stage.
    pub stage: Stage,
}

/// An immutable snapshot of a whole workflow DAG.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DagSnapshot {
    /// Node snapshots in id order.
    pub nodes: Vec<NodeSnapshot>,
    /// Output node names.
    pub outputs: Vec<String>,
}

impl DagSnapshot {
    /// Captures a workflow.
    pub fn capture(workflow: &Workflow) -> DagSnapshot {
        let nodes = workflow
            .nodes()
            .iter()
            .map(|node| NodeSnapshot {
                name: node.name.clone(),
                tag: node.kind.tag().to_string(),
                params: node.kind.params_string(),
                parents: node
                    .parents
                    .iter()
                    .map(|p| workflow.node(*p).name.clone())
                    .collect(),
                stage: node.kind.stage(),
            })
            .collect();
        let outputs = workflow
            .outputs()
            .iter()
            .map(|o| workflow.node(*o).name.clone())
            .collect();
        DagSnapshot { nodes, outputs }
    }

    /// Finds a node snapshot by name.
    pub fn node(&self, name: &str) -> Option<&NodeSnapshot> {
        self.nodes.iter().find(|n| n.name == name)
    }
}

/// One executed workflow version.
#[derive(Debug, Clone)]
pub struct WorkflowVersion {
    /// Sequential version id within this store (the engine's global
    /// history numbers versions across all sessions; a session's own
    /// store numbers its lineage from 0).
    pub id: usize,
    /// Name of the session that ran the iteration, when one did.
    pub session: Option<String>,
    /// The DAG as executed. Shared (`Arc`) because the same iteration is
    /// typically recorded twice — once in the engine's global history and
    /// once in the session's private store.
    pub snapshot: Arc<DagSnapshot>,
    /// Metrics harvested from Evaluate nodes.
    pub metrics: Vec<(String, f64)>,
    /// End-to-end runtime.
    pub total_secs: f64,
    /// One-line change summary vs the previous version.
    pub change_summary: String,
}

/// Differences between two versions' DAGs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionDiff {
    /// Node names only in the newer version.
    pub added: Vec<String>,
    /// Node names only in the older version.
    pub removed: Vec<String>,
    /// `(name, old, new)` for nodes whose params or wiring changed.
    pub changed: Vec<(String, String, String)>,
}

impl VersionDiff {
    /// Whether the two versions are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }
}

/// In-memory history of executed versions.
#[derive(Debug, Clone, Default)]
pub struct VersionStore {
    versions: Vec<WorkflowVersion>,
}

impl VersionStore {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an executed iteration (DAG snapshot, metrics, runtime,
    /// session, and change summary all come from the report); returns
    /// the new version id. Stores recording the same iteration (the
    /// engine's global history and a session's private one) share the
    /// report's snapshot allocation.
    pub fn record(&mut self, report: &IterationReport) -> usize {
        let id = self.versions.len();
        self.versions.push(WorkflowVersion {
            id,
            session: report.session.clone(),
            snapshot: Arc::clone(&report.snapshot),
            metrics: report.metrics.clone(),
            total_secs: report.total_secs,
            change_summary: report.change_summary.clone(),
        });
        id
    }

    /// Rebuilds a history from persisted versions (the durable tier's
    /// recovery path). Ids are re-sequenced to match their position so a
    /// partially recovered file still yields a self-consistent store.
    pub fn from_versions(versions: Vec<WorkflowVersion>) -> VersionStore {
        let versions = versions
            .into_iter()
            .enumerate()
            .map(|(id, mut v)| {
                v.id = id;
                v
            })
            .collect();
        VersionStore { versions }
    }

    /// Number of versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether no version was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// A version by id.
    pub fn get(&self, id: usize) -> Option<&WorkflowVersion> {
        self.versions.get(id)
    }

    /// The most recent version.
    pub fn latest(&self) -> Option<&WorkflowVersion> {
        self.versions.last()
    }

    /// All versions, oldest first.
    pub fn all(&self) -> &[WorkflowVersion] {
        &self.versions
    }

    /// The version with the highest value of `metric` (the demo's "best
    /// version" shortcut).
    pub fn best_by_metric(&self, metric: &str) -> Option<&WorkflowVersion> {
        self.versions
            .iter()
            .filter_map(|v| {
                v.metrics
                    .iter()
                    .find(|(m, _)| m == metric)
                    .map(|(_, value)| (v, *value))
            })
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(v, _)| v)
    }

    /// Metric trend across iterations: `(version id, value)` pairs.
    pub fn metric_trend(&self, metric: &str) -> Vec<(usize, f64)> {
        self.versions
            .iter()
            .filter_map(|v| {
                v.metrics
                    .iter()
                    .find(|(m, _)| m == metric)
                    .map(|(_, value)| (v.id, *value))
            })
            .collect()
    }

    /// Structural diff between two versions.
    pub fn diff(&self, old_id: usize, new_id: usize) -> Option<VersionDiff> {
        let old = self.get(old_id)?;
        let new = self.get(new_id)?;
        Some(diff_snapshots(&old.snapshot, &new.snapshot))
    }
}

/// Computes the git-like diff between two DAG snapshots.
pub fn diff_snapshots(old: &DagSnapshot, new: &DagSnapshot) -> VersionDiff {
    let mut diff = VersionDiff::default();
    for node in &new.nodes {
        match old.node(&node.name) {
            None => diff.added.push(node.name.clone()),
            Some(prev) => {
                if prev.params != node.params
                    || prev.parents != node.parents
                    || prev.tag != node.tag
                {
                    let old_desc = format!(
                        "{}({}) <- {}",
                        prev.tag,
                        prev.params,
                        prev.parents.join(",")
                    );
                    let new_desc = format!(
                        "{}({}) <- {}",
                        node.tag,
                        node.params,
                        node.parents.join(",")
                    );
                    diff.changed.push((node.name.clone(), old_desc, new_desc));
                }
            }
        }
    }
    for node in &old.nodes {
        if new.node(&node.name).is_none() {
            diff.removed.push(node.name.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ExtractorKind, LearnerSpec};
    use crate::recompute::NodeState;
    use crate::signature::ChangeKind;

    fn workflow(reg: f64) -> Workflow {
        let mut w = Workflow::new("t");
        let src = w.csv_source("data", "train.csv", None::<&str>).unwrap();
        let rows = w
            .csv_scanner("rows", &src, &[("x", helix_dataflow::DataType::Int)])
            .unwrap();
        let x = w
            .field_extractor("x", &rows, "x", ExtractorKind::Numeric)
            .unwrap();
        let y = w
            .field_extractor("y", &rows, "x", ExtractorKind::Numeric)
            .unwrap();
        let income = w.assemble("income", &rows, &[&x], &y).unwrap();
        let preds = w
            .learner(
                "preds",
                &income,
                LearnerSpec {
                    reg_param: reg,
                    ..Default::default()
                },
            )
            .unwrap();
        w.output(&preds);
        w
    }

    fn fake_report(
        w: &Workflow,
        iteration: usize,
        acc: f64,
        secs: f64,
        summary: &str,
    ) -> IterationReport {
        IterationReport {
            iteration,
            workflow_name: "t".into(),
            snapshot: Arc::new(DagSnapshot::capture(w)),
            session: None,
            change_summary: summary.into(),
            total_secs: secs,
            optimizer_secs: 0.0,
            materialize_secs: 0.0,
            nodes: vec![crate::report::NodeReport {
                name: "preds".into(),
                stage: Stage::MachineLearning,
                state: NodeState::Compute,
                change: ChangeKind::Unchanged,
                wave: Some(0),
                duration_secs: secs,
                output_bytes: 0,
                materialized: false,
                chunks_loaded: 0,
                decision_source: crate::memo::DecisionSource::Estimate,
            }],
            waves: vec![],
            metrics: vec![("accuracy".into(), acc)],
        }
    }

    #[test]
    fn record_and_lookup() {
        let mut vs = VersionStore::new();
        let w = workflow(0.1);
        let id0 = vs.record(&fake_report(&w, 0, 0.8, 1.0, "initial"));
        let id1 = vs.record(&fake_report(&w, 1, 0.85, 0.5, "tweak"));
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.latest().unwrap().id, 1);
        assert_eq!(vs.get(0).unwrap().change_summary, "initial");
    }

    #[test]
    fn best_by_metric_and_trend() {
        let mut vs = VersionStore::new();
        let w = workflow(0.1);
        vs.record(&fake_report(&w, 0, 0.80, 1.0, "a"));
        vs.record(&fake_report(&w, 1, 0.91, 1.0, "b"));
        vs.record(&fake_report(&w, 2, 0.86, 1.0, "c"));
        assert_eq!(vs.best_by_metric("accuracy").unwrap().id, 1);
        assert!(vs.best_by_metric("f1").is_none());
        assert_eq!(
            vs.metric_trend("accuracy"),
            vec![(0, 0.80), (1, 0.91), (2, 0.86)]
        );
    }

    #[test]
    fn diff_detects_param_changes() {
        let mut vs = VersionStore::new();
        vs.record(&fake_report(&workflow(0.1), 0, 0.8, 1.0, "a"));
        vs.record(&fake_report(&workflow(0.9), 1, 0.8, 1.0, "b"));
        let diff = vs.diff(0, 1).unwrap();
        assert!(diff.added.is_empty());
        assert!(diff.removed.is_empty());
        // Both the Train node and its (unchanged-params) Apply node: only
        // the Train node differs.
        assert_eq!(diff.changed.len(), 1);
        assert_eq!(diff.changed[0].0, "preds__model");
        assert!(diff.changed[0].2.contains("reg=0.9"));
    }

    #[test]
    fn diff_detects_structure_changes() {
        let mut vs = VersionStore::new();
        let w1 = workflow(0.1);
        let mut w2 = workflow(0.1);
        let rows = w2.node_ref("rows").unwrap();
        let x = w2.node_ref("x").unwrap();
        let y = w2.node_ref("y").unwrap();
        let ms = w2
            .field_extractor("ms", &rows, "x", ExtractorKind::Categorical)
            .unwrap();
        w2.rewire("income", &[&rows, &x, &ms, &y]).unwrap();
        vs.record(&fake_report(&w1, 0, 0.8, 1.0, "a"));
        vs.record(&fake_report(&w2, 1, 0.8, 1.0, "b"));
        let diff = vs.diff(0, 1).unwrap();
        assert_eq!(diff.added, vec!["ms".to_string()]);
        assert_eq!(diff.changed.len(), 1, "income rewired");
        let back = vs.diff(1, 0).unwrap();
        assert_eq!(back.removed, vec!["ms".to_string()]);
    }

    #[test]
    fn identical_versions_diff_empty() {
        let mut vs = VersionStore::new();
        vs.record(&fake_report(&workflow(0.1), 0, 0.8, 1.0, "a"));
        vs.record(&fake_report(&workflow(0.1), 1, 0.8, 1.0, "b"));
        assert!(vs.diff(0, 1).unwrap().is_empty());
        assert!(vs.diff(0, 9).is_none());
    }

    #[test]
    fn snapshot_captures_outputs_and_stages() {
        let w = workflow(0.1);
        let snap = DagSnapshot::capture(&w);
        assert_eq!(snap.outputs, vec!["preds".to_string()]);
        assert_eq!(
            snap.node("preds__model").unwrap().stage,
            Stage::MachineLearning
        );
        assert_eq!(snap.node("rows").unwrap().stage, Stage::DataPreProcessing);
    }

    #[test]
    fn recorded_version_keeps_metrics_not_report() {
        let mut vs = VersionStore::new();
        vs.record(&fake_report(&workflow(0.1), 0, 0.77, 2.5, "a"));
        let v = vs.get(0).unwrap();
        assert_eq!(v.metrics, vec![("accuracy".to_string(), 0.77)]);
        assert_eq!(v.total_secs, 2.5);
    }
}
