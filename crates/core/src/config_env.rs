//! One home for every `HELIX_*` environment knob.
//!
//! The engine used to read `std::env::var` at scattered call sites; this
//! module is now the only place core consults the environment, and
//! [`crate::EngineConfig::from_env`] is the documented entry point that
//! folds every knob into a config at once. The knob table lives in
//! docs/API.md § "Environment variables".
//!
//! | Variable                   | Meaning                                   |
//! |----------------------------|-------------------------------------------|
//! | `HELIX_PARALLELISM`        | Worker threads (≥ 1); default = cores     |
//! | `HELIX_STORE_SHARDS`       | Store shard count (≥ 1); default = 16     |
//! | `HELIX_PARTITION_ROWS`     | Rows per operator partition (≥ 1)         |
//! | `HELIX_DURABILITY`         | `volatile` \| `wal` \| `wal-nosync`       |
//! | `HELIX_WAL_SNAPSHOT_BYTES` | Per-shard WAL compaction threshold (≥ 1)  |
//! | `HELIX_REPLAN_FACTOR`      | Adaptive re-plan divergence factor (≥ 1)  |
//! | `HELIX_DATA_CHUNK_ROWS`    | Rows per data chunk (≥ 1); default = 512  |
//! | `HELIX_MEMO_DECAY_RUNS`    | Runs before memo observations decay (≥ 1) |

use crate::store::{Durability, DEFAULT_STORE_SHARDS};

/// Parses an environment variable as a positive integer; `None` when
/// unset, unparseable, or zero.
fn positive(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// `HELIX_PARALLELISM`, defaulting to the machine's available
/// parallelism. (The CI equivalence matrix forces `1` and `2` this way.)
pub fn parallelism() -> usize {
    positive("HELIX_PARALLELISM").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// `HELIX_STORE_SHARDS`, defaulting to
/// [`crate::store::DEFAULT_STORE_SHARDS`].
pub fn store_shards() -> usize {
    positive("HELIX_STORE_SHARDS").unwrap_or(DEFAULT_STORE_SHARDS)
}

/// `HELIX_PARTITION_ROWS`, defaulting to
/// [`DEFAULT_PARTITION_ROWS`](crate::scheduler::DEFAULT_PARTITION_ROWS).
pub fn partition_rows() -> usize {
    positive("HELIX_PARTITION_ROWS").unwrap_or(crate::scheduler::DEFAULT_PARTITION_ROWS)
}

/// `HELIX_DURABILITY` (`volatile` | `wal` | `wal-nosync`), defaulting to
/// [`Durability::Volatile`]. An unrecognized value warns and falls back
/// to volatile rather than refusing to start. When the tier is a WAL,
/// `HELIX_WAL_SNAPSHOT_BYTES` overrides the per-shard compaction
/// threshold (background snapshot on size, not just at open and on
/// `POST /admin/snapshot`).
pub fn durability() -> Durability {
    let tier = match std::env::var("HELIX_DURABILITY") {
        Ok(value) => Durability::from_env_value(&value).unwrap_or_else(|| {
            eprintln!(
                "helix: unrecognized HELIX_DURABILITY value `{value}` \
                 (expected volatile | wal | wal-nosync); using volatile"
            );
            Durability::Volatile
        }),
        Err(_) => Durability::Volatile,
    };
    match wal_snapshot_bytes() {
        Some(bytes) => tier.with_compact_after_bytes(bytes),
        None => tier,
    }
}

/// `HELIX_WAL_SNAPSHOT_BYTES`: per-shard WAL compaction threshold in
/// bytes; `None` when unset, unparseable, or zero (keeping
/// [`Durability::DEFAULT_COMPACT_AFTER_BYTES`]).
pub fn wal_snapshot_bytes() -> Option<u64> {
    std::env::var("HELIX_WAL_SNAPSHOT_BYTES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n >= 1)
}

/// `HELIX_REPLAN_FACTOR`: the adaptive re-plan divergence factor,
/// defaulting to [`DEFAULT_REPLAN_FACTOR`]. Values below 1 (and
/// unparseable ones) warn and fall back to the default; `0` or `inf`
/// disable re-planning via [`f64::INFINITY`].
pub fn replan_factor() -> f64 {
    match std::env::var("HELIX_REPLAN_FACTOR") {
        Ok(value) => match value.parse::<f64>() {
            Ok(n) if n == 0.0 || n.is_infinite() => f64::INFINITY,
            Ok(n) if n.is_finite() && n >= 1.0 => n,
            _ => {
                eprintln!(
                    "helix: unrecognized HELIX_REPLAN_FACTOR value `{value}` \
                     (expected a number ≥ 1, or 0/inf to disable); using {DEFAULT_REPLAN_FACTOR}"
                );
                DEFAULT_REPLAN_FACTOR
            }
        },
        Err(_) => DEFAULT_REPLAN_FACTOR,
    }
}

/// `HELIX_DATA_CHUNK_ROWS`: non-blank lines per data chunk for
/// incremental signing (see [`crate::data`]), defaulting to
/// [`crate::data::DEFAULT_DATA_CHUNK_ROWS`].
pub fn data_chunk_rows() -> usize {
    positive("HELIX_DATA_CHUNK_ROWS").unwrap_or(crate::data::DEFAULT_DATA_CHUNK_ROWS)
}

/// `HELIX_MEMO_DECAY_RUNS`: memo observations older than this many
/// logical runs are down-weighted when aggregating compute history (see
/// [`crate::memo::MemoTable::observed_compute_secs`]), defaulting to
/// [`DEFAULT_MEMO_DECAY_RUNS`].
pub fn memo_decay_runs() -> u64 {
    positive("HELIX_MEMO_DECAY_RUNS")
        .map(|n| n as u64)
        .unwrap_or(DEFAULT_MEMO_DECAY_RUNS)
}

/// Fallback for [`memo_decay_runs`] when `HELIX_MEMO_DECAY_RUNS` is
/// unset: long enough that a typical iteration session never decays,
/// short enough that stale timings from a long-gone machine state stop
/// dominating plans within one working day of runs.
pub const DEFAULT_MEMO_DECAY_RUNS: u64 = 32;

/// Fallback for [`replan_factor`] when `HELIX_REPLAN_FACTOR` is unset:
/// re-plan only on a 4× divergence between observed and estimated cost —
/// large enough that ordinary timing noise never churns plans, small
/// enough that a badly mis-estimated operator is corrected after one
/// sighting.
pub const DEFAULT_REPLAN_FACTOR: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_values_parse() {
        assert_eq!(
            Durability::from_env_value("volatile"),
            Some(Durability::Volatile)
        );
        assert_eq!(Durability::from_env_value("WAL"), Some(Durability::wal()));
        assert_eq!(
            Durability::from_env_value("wal-nosync"),
            Some(Durability::wal_nosync())
        );
        assert_eq!(Durability::from_env_value("bogus"), None);
    }

    #[test]
    fn compact_threshold_override_applies_only_to_wal() {
        assert_eq!(
            Durability::wal().with_compact_after_bytes(4096),
            Durability::Wal {
                fsync: true,
                compact_after_bytes: 4096
            }
        );
        assert_eq!(
            Durability::wal_nosync().with_compact_after_bytes(0),
            Durability::Wal {
                fsync: false,
                compact_after_bytes: 1
            }
        );
        assert_eq!(
            Durability::Volatile.with_compact_after_bytes(4096),
            Durability::Volatile
        );
    }
}
