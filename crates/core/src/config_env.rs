//! One home for every `HELIX_*` environment knob.
//!
//! The engine used to read `std::env::var` at scattered call sites; this
//! module is now the only place core consults the environment, and
//! [`crate::EngineConfig::from_env`] is the documented entry point that
//! folds every knob into a config at once. The knob table lives in
//! docs/API.md § "Environment variables".
//!
//! | Variable              | Meaning                                   |
//! |-----------------------|-------------------------------------------|
//! | `HELIX_PARALLELISM`   | Worker threads (≥ 1); default = cores     |
//! | `HELIX_STORE_SHARDS`  | Store shard count (≥ 1); default = 16     |
//! | `HELIX_PARTITION_ROWS`| Rows per operator partition (≥ 1)         |
//! | `HELIX_DURABILITY`    | `volatile` \| `wal` \| `wal-nosync`       |

use crate::store::{Durability, DEFAULT_STORE_SHARDS};

/// Parses an environment variable as a positive integer; `None` when
/// unset, unparseable, or zero.
fn positive(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// `HELIX_PARALLELISM`, defaulting to the machine's available
/// parallelism. (The CI equivalence matrix forces `1` and `2` this way.)
pub fn parallelism() -> usize {
    positive("HELIX_PARALLELISM").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// `HELIX_STORE_SHARDS`, defaulting to
/// [`crate::store::DEFAULT_STORE_SHARDS`].
pub fn store_shards() -> usize {
    positive("HELIX_STORE_SHARDS").unwrap_or(DEFAULT_STORE_SHARDS)
}

/// `HELIX_PARTITION_ROWS`, defaulting to
/// [`DEFAULT_PARTITION_ROWS`](crate::scheduler::DEFAULT_PARTITION_ROWS).
pub fn partition_rows() -> usize {
    positive("HELIX_PARTITION_ROWS").unwrap_or(crate::scheduler::DEFAULT_PARTITION_ROWS)
}

/// `HELIX_DURABILITY` (`volatile` | `wal` | `wal-nosync`), defaulting to
/// [`Durability::Volatile`]. An unrecognized value warns and falls back
/// to volatile rather than refusing to start.
pub fn durability() -> Durability {
    match std::env::var("HELIX_DURABILITY") {
        Ok(value) => Durability::from_env_value(&value).unwrap_or_else(|| {
            eprintln!(
                "helix: unrecognized HELIX_DURABILITY value `{value}` \
                 (expected volatile | wal | wal-nosync); using volatile"
            );
            Durability::Volatile
        }),
        Err(_) => Durability::Volatile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_values_parse() {
        assert_eq!(
            Durability::from_env_value("volatile"),
            Some(Durability::Volatile)
        );
        assert_eq!(Durability::from_env_value("WAL"), Some(Durability::wal()));
        assert_eq!(
            Durability::from_env_value("wal-nosync"),
            Some(Durability::wal_nosync())
        );
        assert_eq!(Durability::from_env_value("bogus"), None);
    }
}
