//! Durable-tier codecs: JSON serialization for the engine's cross-run
//! state (cost model, global version history, session records) plus the
//! atomic-replace file writer every snapshot goes through.
//!
//! The store's per-entry WAL lives in [`crate::store`]; this module covers
//! everything *above* the store: what a restarted engine needs to resume
//! every session's lineage. All files are single JSON documents written
//! via temp-file + rename ([`write_atomic`]), so readers only ever observe
//! a complete old or a complete new state — never a torn one. Parse
//! errors surface as `String`s; recovery callers warn and start fresh
//! rather than refuse to open (see `docs/ARCHITECTURE.md`, "Durability").

use crate::cost::CostModel;
use crate::engine::Lineage;
use crate::memo::{MemoEntry, MemoTable, Observation};
use crate::ops::Stage;
use crate::session::WorkflowEdit;
use crate::signature::Signature;
use crate::version::{DagSnapshot, NodeSnapshot, VersionStore, WorkflowVersion};
use helix_dataflow::fx::FxHashMap;
use helix_json::Json;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Format version stamped into every persisted document.
const FORMAT_V: f64 = 1.0;

// ---------------------------------------------------------------------------
// Paths and atomic writes
// ---------------------------------------------------------------------------

/// Directory holding engine- and session-level metadata, beside the
/// store's payload files.
pub(crate) fn meta_dir(store_dir: &Path) -> PathBuf {
    store_dir.join("meta")
}

/// Engine-wide state: cost model plus global version history.
pub(crate) fn engine_meta_path(store_dir: &Path) -> PathBuf {
    meta_dir(store_dir).join("engine.json")
}

/// Directory of per-session records.
pub(crate) fn sessions_dir(store_dir: &Path) -> PathBuf {
    meta_dir(store_dir).join("sessions")
}

/// Record path for one named session. The file name percent-encodes the
/// session name so arbitrary names (slashes, dots, unicode) can never
/// escape the sessions directory; the real name is stored inside the
/// record.
pub(crate) fn session_path(store_dir: &Path, name: &str) -> PathBuf {
    sessions_dir(store_dir).join(format!("{}.json", encode_name(name)))
}

/// Injective percent-encoding over `[A-Za-z0-9_-]`: every other byte
/// becomes `%XX`, so distinct names never collide and no encoded name
/// contains a path separator.
pub(crate) fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for byte in name.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(byte as char),
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `text` to `path` atomically: unique temp file in the same
/// directory, flush + fsync, then rename over the target. A crash at any
/// point leaves either the previous file or the new one, plus at worst a
/// stray `*.tmp` that [`sweep_tmp`] removes on the next open.
pub(crate) fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let token = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "state".to_string());
    let tmp = dir.join(format!("{file_name}.{}-{token}.tmp", std::process::id()));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Removes stray `*.tmp` files left by a crash mid-[`write_atomic`].
pub(crate) fn sweep_tmp(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            let _ = std::fs::remove_file(&path);
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive helpers
// ---------------------------------------------------------------------------

fn u64_hex(v: u64) -> String {
    format!("{v:016x}")
}

fn hex_u64(text: &str) -> Result<u64, String> {
    u64::from_str_radix(text, 16).map_err(|e| format!("bad hex `{text}`: {e}"))
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(Json::str).collect())
}

fn field<'j>(obj: &'j Json, key: &str) -> Result<&'j Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    field(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, String> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

fn arr_field<'j>(obj: &'j Json, key: &str) -> Result<&'j [Json], String> {
    field(obj, key)?
        .as_array()
        .ok_or_else(|| format!("field `{key}` is not an array"))
}

fn string_list(obj: &Json, key: &str) -> Result<Vec<String>, String> {
    arr_field(obj, key)?
        .iter()
        .map(|j| {
            j.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{key}` entry is not a string"))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// DAG snapshots and versions
// ---------------------------------------------------------------------------

fn node_to_json(node: &NodeSnapshot) -> Json {
    Json::obj([
        ("name", Json::str(&node.name)),
        ("tag", Json::str(&node.tag)),
        ("params", Json::str(&node.params)),
        ("parents", str_arr(&node.parents)),
        ("stage", Json::str(node.stage.to_string())),
    ])
}

fn node_from_json(json: &Json) -> Result<NodeSnapshot, String> {
    let stage_name = str_field(json, "stage")?;
    Ok(NodeSnapshot {
        name: str_field(json, "name")?,
        tag: str_field(json, "tag")?,
        params: str_field(json, "params")?,
        parents: string_list(json, "parents")?,
        stage: Stage::from_name(&stage_name)
            .ok_or_else(|| format!("unknown stage `{stage_name}`"))?,
    })
}

fn snapshot_to_json(snapshot: &DagSnapshot) -> Json {
    Json::obj([
        (
            "nodes",
            Json::Arr(snapshot.nodes.iter().map(node_to_json).collect()),
        ),
        ("outputs", str_arr(&snapshot.outputs)),
    ])
}

fn snapshot_from_json(json: &Json) -> Result<DagSnapshot, String> {
    Ok(DagSnapshot {
        nodes: arr_field(json, "nodes")?
            .iter()
            .map(node_from_json)
            .collect::<Result<_, _>>()?,
        outputs: string_list(json, "outputs")?,
    })
}

fn metrics_to_json(metrics: &[(String, f64)]) -> Json {
    Json::Arr(
        metrics
            .iter()
            .map(|(name, value)| Json::Arr(vec![Json::str(name), Json::Num(*value)]))
            .collect(),
    )
}

fn metrics_from_json(json: &Json, key: &str) -> Result<Vec<(String, f64)>, String> {
    arr_field(json, key)?
        .iter()
        .map(|pair| {
            let items = pair
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| format!("`{key}` entry is not a [name, value] pair"))?;
            let name = items[0]
                .as_str()
                .ok_or_else(|| format!("`{key}` name is not a string"))?;
            let value = items[1]
                .as_f64()
                .ok_or_else(|| format!("`{key}` value is not a number"))?;
            Ok((name.to_string(), value))
        })
        .collect()
}

fn version_to_json(version: &WorkflowVersion) -> Json {
    Json::obj([
        ("id", Json::Num(version.id as f64)),
        (
            "session",
            version
                .session
                .as_deref()
                .map(Json::str)
                .unwrap_or(Json::Null),
        ),
        ("snapshot", snapshot_to_json(&version.snapshot)),
        ("metrics", metrics_to_json(&version.metrics)),
        ("total_secs", Json::Num(version.total_secs)),
        ("change_summary", Json::str(&version.change_summary)),
    ])
}

fn version_from_json(json: &Json) -> Result<WorkflowVersion, String> {
    Ok(WorkflowVersion {
        id: f64_field(json, "id")? as usize,
        session: match field(json, "session")? {
            Json::Null => None,
            other => Some(
                other
                    .as_str()
                    .map(str::to_string)
                    .ok_or("field `session` is not a string or null")?,
            ),
        },
        snapshot: Arc::new(snapshot_from_json(field(json, "snapshot")?)?),
        metrics: metrics_from_json(json, "metrics")?,
        total_secs: f64_field(json, "total_secs")?,
        change_summary: str_field(json, "change_summary")?,
    })
}

fn versions_to_json(versions: &VersionStore) -> Json {
    Json::Arr(versions.all().iter().map(version_to_json).collect())
}

fn versions_from_json(json: &Json) -> Result<Vec<WorkflowVersion>, String> {
    json.as_array()
        .ok_or("versions is not an array")?
        .iter()
        .map(version_from_json)
        .collect()
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

fn cost_to_json(cost: &CostModel) -> Json {
    let mut observations: Vec<(&str, f64)> = cost.compute_observations().collect();
    observations.sort_by(|a, b| a.0.cmp(b.0));
    Json::obj([
        ("bytes_per_sec", Json::Num(cost.bytes_per_sec())),
        ("io_latency_sec", Json::Num(cost.io_latency_sec())),
        ("encode_ratio", Json::Num(cost.encode_ratio())),
        (
            "compute_secs",
            Json::Arr(
                observations
                    .into_iter()
                    .map(|(name, secs)| Json::Arr(vec![Json::str(name), Json::Num(secs)]))
                    .collect(),
            ),
        ),
    ])
}

fn cost_from_json(json: &Json) -> Result<CostModel, String> {
    let observations = metrics_from_json(json, "compute_secs")?;
    Ok(CostModel::from_parts(
        observations,
        f64_field(json, "bytes_per_sec")?,
        f64_field(json, "io_latency_sec")?,
        f64_field(json, "encode_ratio")?,
    ))
}

// ---------------------------------------------------------------------------
// Optimizer memo
// ---------------------------------------------------------------------------

fn observation_to_json(obs: &Observation) -> Json {
    Json::obj([
        ("secs", Json::Num(obs.exec_secs)),
        ("bytes", Json::Num(obs.output_bytes as f64)),
        ("loaded", Json::Bool(obs.loaded)),
        ("rows", Json::Num(obs.rows as f64)),
        ("run", Json::Num(obs.run as f64)),
    ])
}

fn observation_from_json(json: &Json) -> Result<Observation, String> {
    Ok(Observation {
        exec_secs: f64_field(json, "secs")?,
        output_bytes: f64_field(json, "bytes")? as u64,
        loaded: field(json, "loaded")?
            .as_bool()
            .ok_or("`loaded` is not a bool")?,
        rows: f64_field(json, "rows")? as u64,
        // Absent in memos persisted before decay existed: treat as run 0,
        // i.e. maximally stale.
        run: json.get("run").and_then(Json::as_u64).unwrap_or(0),
    })
}

fn memo_to_json(memo: &MemoTable) -> Json {
    let mut entries: Vec<(Signature, &MemoEntry)> = memo.entries().collect();
    entries.sort_by_key(|(sig, _)| sig.0);
    Json::obj([
        (
            "observations_recorded",
            Json::Num(memo.observations_recorded() as f64),
        ),
        ("current_run", Json::Num(memo.current_run() as f64)),
        (
            "entries",
            Json::Arr(
                entries
                    .into_iter()
                    .map(|(sig, entry)| {
                        Json::obj([
                            ("sig", Json::str(u64_hex(sig.0))),
                            ("name", Json::str(&entry.name)),
                            (
                                "parents",
                                Json::Arr(
                                    entry
                                        .parents
                                        .iter()
                                        .map(|p| Json::str(u64_hex(p.0)))
                                        .collect(),
                                ),
                            ),
                            ("reuse_hits", Json::Num(entry.reuse_hits as f64)),
                            ("runs", Json::Num(entry.runs as f64)),
                            (
                                "obs",
                                Json::Arr(
                                    entry.observations.iter().map(observation_to_json).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn memo_from_json(json: &Json) -> Result<MemoTable, String> {
    let recorded = f64_field(json, "observations_recorded")? as u64;
    let mut entries = Vec::new();
    for entry in arr_field(json, "entries")? {
        let sig = Signature(hex_u64(&str_field(entry, "sig")?)?);
        let parents = string_list(entry, "parents")?
            .iter()
            .map(|p| hex_u64(p).map(Signature))
            .collect::<Result<Vec<_>, _>>()?;
        let observations = arr_field(entry, "obs")?
            .iter()
            .map(observation_from_json)
            .collect::<Result<std::collections::VecDeque<_>, _>>()?;
        entries.push((
            sig,
            MemoEntry {
                name: str_field(entry, "name")?,
                parents,
                observations,
                reuse_hits: f64_field(entry, "reuse_hits")? as u64,
                runs: f64_field(entry, "runs")? as u64,
            },
        ));
    }
    let current_run = json.get("current_run").and_then(Json::as_u64).unwrap_or(0);
    Ok(MemoTable::from_parts(entries, recorded, current_run))
}

fn signature_list(json: &Json, key: &str) -> Result<Vec<Signature>, String> {
    string_list(json, key)?
        .iter()
        .map(|s| hex_u64(s).map(Signature))
        .collect()
}

// ---------------------------------------------------------------------------
// Lineage
// ---------------------------------------------------------------------------

fn lineage_to_json(lineage: &Lineage) -> Json {
    let previous = match lineage.previous_map() {
        None => Json::Null,
        Some(map) => {
            let mut entries: Vec<(&String, &(u64, Signature))> = map.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            Json::Arr(
                entries
                    .into_iter()
                    .map(|(node, &(local, sig))| {
                        Json::obj([
                            ("node", Json::str(node)),
                            ("local", Json::str(u64_hex(local))),
                            ("sig", Json::str(u64_hex(sig.0))),
                        ])
                    })
                    .collect(),
            )
        }
    };
    Json::obj([
        ("iteration", Json::Num(lineage.iteration() as f64)),
        ("previous", previous),
    ])
}

fn lineage_from_json(json: &Json) -> Result<Lineage, String> {
    let iteration = f64_field(json, "iteration")? as usize;
    let previous = match field(json, "previous")? {
        Json::Null => None,
        entries => {
            let entries = entries.as_array().ok_or("`previous` is not an array")?;
            let mut map = FxHashMap::default();
            for entry in entries {
                let node = str_field(entry, "node")?;
                let local = hex_u64(&str_field(entry, "local")?)?;
                let sig = Signature(hex_u64(&str_field(entry, "sig")?)?);
                map.insert(node, (local, sig));
            }
            Some(map)
        }
    };
    Ok(Lineage::from_parts(iteration, previous))
}

// ---------------------------------------------------------------------------
// Workflow edits
// ---------------------------------------------------------------------------

fn edit_to_json(edit: &WorkflowEdit) -> Json {
    match edit {
        WorkflowEdit::SetLearnerParam { learner, param } => Json::obj([
            ("kind", Json::str("set_learner_param")),
            ("learner", Json::str(learner)),
            ("param", Json::str(param)),
        ]),
        WorkflowEdit::ReplaceOperator { node, tag } => Json::obj([
            ("kind", Json::str("replace_operator")),
            ("node", Json::str(node)),
            ("tag", Json::str(tag)),
        ]),
        WorkflowEdit::Rewire { node, parents } => Json::obj([
            ("kind", Json::str("rewire")),
            ("node", Json::str(node)),
            ("parents", str_arr(parents)),
        ]),
        WorkflowEdit::AddOutput { node } => {
            Json::obj([("kind", Json::str("add_output")), ("node", Json::str(node))])
        }
        WorkflowEdit::Freeform { description } => Json::obj([
            ("kind", Json::str("freeform")),
            ("description", Json::str(description)),
        ]),
        WorkflowEdit::AppendData { source, rows } => Json::obj([
            ("kind", Json::str("append_data")),
            ("source", Json::str(source)),
            ("rows", Json::Num(*rows as f64)),
        ]),
    }
}

fn edit_from_json(json: &Json) -> Result<WorkflowEdit, String> {
    let kind = str_field(json, "kind")?;
    match kind.as_str() {
        "set_learner_param" => Ok(WorkflowEdit::SetLearnerParam {
            learner: str_field(json, "learner")?,
            param: str_field(json, "param")?,
        }),
        "replace_operator" => Ok(WorkflowEdit::ReplaceOperator {
            node: str_field(json, "node")?,
            tag: str_field(json, "tag")?,
        }),
        "rewire" => Ok(WorkflowEdit::Rewire {
            node: str_field(json, "node")?,
            parents: string_list(json, "parents")?,
        }),
        "add_output" => Ok(WorkflowEdit::AddOutput {
            node: str_field(json, "node")?,
        }),
        "freeform" => Ok(WorkflowEdit::Freeform {
            description: str_field(json, "description")?,
        }),
        "append_data" => Ok(WorkflowEdit::AppendData {
            source: str_field(json, "source")?,
            rows: json
                .get("rows")
                .and_then(Json::as_u64)
                .ok_or_else(|| "append_data edit missing `rows`".to_string())?
                as usize,
        }),
        other => Err(format!("unknown edit kind `{other}`")),
    }
}

fn edits_to_json(edits: &[WorkflowEdit]) -> Json {
    Json::Arr(edits.iter().map(edit_to_json).collect())
}

fn edits_from_json(json: &Json, key: &str) -> Result<Vec<WorkflowEdit>, String> {
    arr_field(json, key)?.iter().map(edit_from_json).collect()
}

// ---------------------------------------------------------------------------
// Engine meta (cost model + global history)
// ---------------------------------------------------------------------------

/// Engine-wide durable state loaded back on open.
pub(crate) struct EngineMeta {
    /// Recovered cost model.
    pub cost: CostModel,
    /// Recovered global version history.
    pub versions: Vec<WorkflowVersion>,
    /// Recovered optimizer memo (empty for pre-memo meta files).
    pub memo: MemoTable,
    /// Signatures pinned by the last offline Optimal pass.
    pub pinned: Vec<Signature>,
    /// Lifetime adaptive re-plan count.
    pub replans_triggered: u64,
    /// Unix timestamp of the last offline pass (0 = never ran).
    pub last_offline_unix: u64,
}

/// Serializes and atomically replaces the engine meta file.
pub(crate) fn save_engine_meta(
    path: &Path,
    cost: &CostModel,
    versions: &VersionStore,
    memo: &MemoTable,
    pinned: &[Signature],
    replans_triggered: u64,
    last_offline_unix: u64,
) -> Result<(), String> {
    let mut pinned: Vec<Signature> = pinned.to_vec();
    pinned.sort_unstable_by_key(|s| s.0);
    let doc = Json::obj([
        ("v", Json::Num(FORMAT_V)),
        ("cost", cost_to_json(cost)),
        ("versions", versions_to_json(versions)),
        ("memo", memo_to_json(memo)),
        (
            "pinned",
            Json::Arr(pinned.iter().map(|s| Json::str(u64_hex(s.0))).collect()),
        ),
        ("replans_triggered", Json::Num(replans_triggered as f64)),
        ("last_offline_unix", Json::Num(last_offline_unix as f64)),
    ]);
    write_atomic(path, &doc.to_string()).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Loads the engine meta file. `Ok(None)` when the file does not exist
/// (fresh directory); `Err` when it exists but cannot be parsed — the
/// caller warns and starts fresh (torn/corrupt policy: never refuse to
/// open).
pub(crate) fn load_engine_meta(path: &Path) -> Result<Option<EngineMeta>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    let doc = Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    // Optimizer fields default when absent: meta files written before the
    // memo existed must keep loading (forward rolls never refuse).
    let memo = match doc.get("memo") {
        Some(json) => memo_from_json(json)?,
        None => MemoTable::new(),
    };
    let pinned = match doc.get("pinned") {
        Some(_) => signature_list(&doc, "pinned")?,
        None => Vec::new(),
    };
    let replans_triggered = doc
        .get("replans_triggered")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64;
    let last_offline_unix = doc
        .get("last_offline_unix")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64;
    Ok(Some(EngineMeta {
        cost: cost_from_json(field(&doc, "cost")?)?,
        versions: versions_from_json(field(&doc, "versions")?)?,
        memo,
        pinned,
        replans_triggered,
        last_offline_unix,
    }))
}

// ---------------------------------------------------------------------------
// Session records
// ---------------------------------------------------------------------------

/// Everything needed to resume one named session after a restart: the
/// registry template it was built from, the replayable edit history, its
/// private lineage, and its version store.
pub(crate) struct SessionRecord {
    /// Session name (the registry key; the file name is an encoding of
    /// this, but this field is authoritative).
    pub name: String,
    /// Workflow template the session was created from, when known.
    pub template: Option<String>,
    /// Whether the live workflow can no longer be rebuilt from
    /// `template` + edits (wholesale replacement or a non-replayable
    /// edit happened). Recovery of such a session is degraded: lineage
    /// and history survive, the workflow resets to the template.
    pub workflow_replaced: bool,
    /// The session's private lineage.
    pub lineage: Lineage,
    /// Edits already folded into executed iterations, oldest first.
    pub applied_edits: Vec<WorkflowEdit>,
    /// Edits recorded since the last iteration.
    pub pending_edits: Vec<WorkflowEdit>,
    /// The session's private version history.
    pub versions: Vec<WorkflowVersion>,
}

/// Serializes and atomically replaces one session record.
pub(crate) fn save_session_record(path: &Path, record: &SessionRecord) -> Result<(), String> {
    let doc = Json::obj([
        ("v", Json::Num(FORMAT_V)),
        ("name", Json::str(&record.name)),
        (
            "template",
            record
                .template
                .as_deref()
                .map(Json::str)
                .unwrap_or(Json::Null),
        ),
        ("workflow_replaced", Json::Bool(record.workflow_replaced)),
        ("lineage", lineage_to_json(&record.lineage)),
        ("applied_edits", edits_to_json(&record.applied_edits)),
        ("pending_edits", edits_to_json(&record.pending_edits)),
        (
            "versions",
            Json::Arr(record.versions.iter().map(version_to_json).collect()),
        ),
    ]);
    write_atomic(path, &doc.to_string()).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Parses one session record file.
pub(crate) fn load_session_record(path: &Path) -> Result<SessionRecord, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    Ok(SessionRecord {
        name: str_field(&doc, "name")?,
        template: match field(&doc, "template")? {
            Json::Null => None,
            other => Some(
                other
                    .as_str()
                    .map(str::to_string)
                    .ok_or("field `template` is not a string or null")?,
            ),
        },
        workflow_replaced: field(&doc, "workflow_replaced")?
            .as_bool()
            .ok_or("field `workflow_replaced` is not a bool")?,
        lineage: lineage_from_json(field(&doc, "lineage")?)?,
        applied_edits: edits_from_json(&doc, "applied_edits")?,
        pending_edits: edits_from_json(&doc, "pending_edits")?,
        versions: versions_from_json(field(&doc, "versions")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_version(id: usize, session: Option<&str>) -> WorkflowVersion {
        WorkflowVersion {
            id,
            session: session.map(str::to_string),
            snapshot: Arc::new(DagSnapshot {
                nodes: vec![NodeSnapshot {
                    name: "rows".into(),
                    tag: "csv_scan".into(),
                    params: "age:int".into(),
                    parents: vec!["data".into()],
                    stage: Stage::DataPreProcessing,
                }],
                outputs: vec!["rows".into()],
            }),
            metrics: vec![("accuracy".into(), 0.91)],
            total_secs: 1.5,
            change_summary: "initial version".into(),
        }
    }

    #[test]
    fn cost_model_roundtrips() {
        let mut cost = CostModel::new();
        cost.observe_compute("rows", 0.25);
        cost.observe_io(1 << 20, 0.01);
        cost.observe_encode(100, 80);
        let json = cost_to_json(&cost);
        let back = cost_from_json(&json).unwrap();
        assert_eq!(back.compute_estimate_secs("rows"), Some(0.25));
        assert_eq!(back.bytes_per_sec(), cost.bytes_per_sec());
        assert_eq!(back.io_latency_sec(), cost.io_latency_sec());
        assert_eq!(back.encode_ratio(), cost.encode_ratio());
    }

    #[test]
    fn corrupt_cost_parameters_fall_back_to_defaults() {
        let defaults = CostModel::new();
        let restored = CostModel::from_parts(
            vec![("bad".into(), f64::NAN), ("ok".into(), 0.5)],
            -1.0,
            f64::INFINITY,
            0.0,
        );
        assert_eq!(restored.bytes_per_sec(), defaults.bytes_per_sec());
        assert_eq!(restored.io_latency_sec(), defaults.io_latency_sec());
        assert_eq!(restored.encode_ratio(), defaults.encode_ratio());
        assert_eq!(restored.compute_estimate_secs("bad"), None);
        assert_eq!(restored.compute_estimate_secs("ok"), Some(0.5));
    }

    #[test]
    fn versions_roundtrip_with_snapshot_and_metrics() {
        let store = VersionStore::from_versions(vec![
            sample_version(0, None),
            sample_version(1, Some("alice")),
        ]);
        let json = versions_to_json(&store);
        let back = VersionStore::from_versions(versions_from_json(&json).unwrap());
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(1).unwrap().session.as_deref(), Some("alice"));
        assert_eq!(
            back.get(0).unwrap().snapshot.nodes,
            store.get(0).unwrap().snapshot.nodes
        );
        assert_eq!(back.get(0).unwrap().metrics, store.get(0).unwrap().metrics);
    }

    #[test]
    fn lineage_roundtrips_including_full_u64_signatures() {
        let mut map = FxHashMap::default();
        // Values outside f64's exact-integer range must survive (hence hex
        // strings, not JSON numbers).
        map.insert("rows".to_string(), (u64::MAX - 1, Signature(u64::MAX)));
        map.insert("data".to_string(), (7, Signature(42)));
        let lineage = Lineage::from_parts(3, Some(map));
        let back = lineage_from_json(&lineage_to_json(&lineage)).unwrap();
        assert_eq!(back.iteration(), 3);
        let mut sigs: Vec<u64> = back.signatures().iter().map(|s| s.0).collect();
        sigs.sort_unstable();
        assert_eq!(sigs, vec![42, u64::MAX]);

        let fresh = lineage_from_json(&lineage_to_json(&Lineage::new())).unwrap();
        assert!(!fresh.has_history());
    }

    #[test]
    fn edits_roundtrip_every_variant() {
        let edits = vec![
            WorkflowEdit::SetLearnerParam {
                learner: "preds".into(),
                param: "reg_param=0.9".into(),
            },
            WorkflowEdit::ReplaceOperator {
                node: "checked".into(),
                tag: "evaluate".into(),
            },
            WorkflowEdit::Rewire {
                node: "income".into(),
                parents: vec!["rows".into(), "edu_f".into()],
            },
            WorkflowEdit::AddOutput {
                node: "income".into(),
            },
            WorkflowEdit::Freeform {
                description: "add age bucketizer".into(),
            },
            WorkflowEdit::AppendData {
                source: "data".into(),
                rows: 64,
            },
        ];
        let json = Json::obj([("edits", edits_to_json(&edits))]);
        let back = edits_from_json(&json, "edits").unwrap();
        assert_eq!(back, edits);
    }

    #[test]
    fn session_record_roundtrips_through_a_file() {
        let dir = tmpdir("session-record");
        let path = session_path(&dir, "alice/../etc");
        assert!(
            path.parent().unwrap().ends_with("meta/sessions"),
            "encoded name must not traverse out of the sessions dir"
        );
        let record = SessionRecord {
            name: "alice/../etc".into(),
            template: Some("census".into()),
            workflow_replaced: false,
            lineage: Lineage::from_parts(2, None),
            applied_edits: vec![WorkflowEdit::AddOutput {
                node: "income".into(),
            }],
            pending_edits: vec![],
            versions: vec![sample_version(0, Some("alice/../etc"))],
        };
        save_session_record(&path, &record).unwrap();
        let back = load_session_record(&path).unwrap();
        assert_eq!(back.name, record.name);
        assert_eq!(back.template.as_deref(), Some("census"));
        assert_eq!(back.lineage.iteration(), 2);
        assert_eq!(back.applied_edits, record.applied_edits);
        assert_eq!(back.versions.len(), 1);
    }

    #[test]
    fn engine_meta_roundtrips_and_absent_file_is_none() {
        let dir = tmpdir("engine-meta");
        let path = engine_meta_path(&dir);
        assert!(load_engine_meta(&path).unwrap().is_none());

        let mut cost = CostModel::new();
        cost.observe_compute("rows", 0.5);
        let versions = VersionStore::from_versions(vec![sample_version(0, None)]);
        let mut memo = MemoTable::new();
        memo.record(
            Signature(7),
            "rows",
            &[Signature(3)],
            Observation {
                exec_secs: 0.25,
                output_bytes: 2048,
                loaded: false,
                rows: 100,
                run: 0,
            },
        );
        memo.record(
            Signature(7),
            "rows",
            &[Signature(3)],
            Observation {
                exec_secs: 0.01,
                output_bytes: 1024,
                loaded: true,
                rows: 0,
                run: 0,
            },
        );
        let pinned = [Signature(7), Signature(3)];
        save_engine_meta(&path, &cost, &versions, &memo, &pinned, 5, 1234).unwrap();
        let meta = load_engine_meta(&path).unwrap().unwrap();
        assert_eq!(meta.cost.compute_estimate_secs("rows"), Some(0.5));
        assert_eq!(meta.versions.len(), 1);
        assert_eq!(meta.memo.len(), 1);
        assert_eq!(meta.memo.observations_recorded(), 2);
        assert_eq!(meta.memo.get(Signature(7)), memo.get(Signature(7)));
        assert_eq!(meta.pinned, vec![Signature(3), Signature(7)]);
        assert_eq!(meta.replans_triggered, 5);
        assert_eq!(meta.last_offline_unix, 1234);
    }

    #[test]
    fn pre_memo_engine_meta_still_loads() {
        // A meta file written before the optimizer memo existed (PR 8
        // format): the new fields must default, not fail the load.
        let dir = tmpdir("engine-meta-premem");
        let path = engine_meta_path(&dir);
        let cost = CostModel::new();
        let versions = VersionStore::new();
        let doc = Json::obj([
            ("v", Json::Num(1.0)),
            ("cost", cost_to_json(&cost)),
            ("versions", versions_to_json(&versions)),
        ]);
        write_atomic(&path, &doc.to_string()).unwrap();
        let meta = load_engine_meta(&path).unwrap().unwrap();
        assert!(meta.memo.is_empty());
        assert!(meta.pinned.is_empty());
        assert_eq!(meta.replans_triggered, 0);
        assert_eq!(meta.last_offline_unix, 0);
    }

    #[test]
    fn corrupt_engine_meta_is_an_error_not_a_panic() {
        let dir = tmpdir("engine-meta-corrupt");
        let path = engine_meta_path(&dir);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "{\"v\":1,\"cost\":tr").unwrap();
        assert!(load_engine_meta(&path).is_err());
    }

    #[test]
    fn write_atomic_replaces_and_sweep_removes_tmp() {
        let dir = tmpdir("atomic");
        let path = dir.join("state.json");
        write_atomic(&path, "one").unwrap();
        write_atomic(&path, "two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");

        std::fs::write(dir.join("state.json.999-0.tmp"), "torn").unwrap();
        sweep_tmp(&dir);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        assert!(!dir.join("state.json.999-0.tmp").exists());
    }

    #[test]
    fn encode_name_is_injective_and_path_safe() {
        let names = ["alice", "a/b", "a%2Fb", "день", "a.b", "a_b-c"];
        let encoded: Vec<String> = names.iter().map(|n| encode_name(n)).collect();
        for (i, enc) in encoded.iter().enumerate() {
            for (j, other) in encoded.iter().enumerate() {
                if i != j {
                    assert_ne!(enc, other, "{} vs {}", names[i], names[j]);
                }
            }
            assert!(!enc.contains('/') && !enc.contains('\\') && !enc.contains(".."));
        }
    }
}
