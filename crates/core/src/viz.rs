//! DAG visualization: Graphviz DOT, ASCII plans, and version diffs.
//!
//! Mirrors the demo's visual vocabulary (Fig. 1b): data-pre-processing
//! operators purple, ML orange, evaluation green; pruned operators grayed
//! out; loaded nodes marked with a left "drum", materialized nodes with a
//! right one (rendered as `[disk→]` / `[→disk]` in text).

use crate::ops::Stage;
use crate::recompute::NodeState;
use crate::report::IterationReport;
use crate::version::VersionDiff;
use crate::workflow::Workflow;
use std::fmt::Write as _;

/// Per-node execution annotations for rendering.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeAnnotation {
    /// Plan state, if a plan exists.
    pub state: Option<NodeState>,
    /// Whether the node was materialized this iteration.
    pub materialized: bool,
}

fn stage_color(stage: Stage) -> &'static str {
    match stage {
        Stage::DataPreProcessing => "#9467bd", // purple
        Stage::MachineLearning => "#ff7f0e",   // orange
        Stage::Evaluation => "#2ca02c",        // green
    }
}

/// Renders the workflow as Graphviz DOT, optionally annotated with plan
/// states (pruned nodes gray, loads/materializations marked).
pub fn to_dot(workflow: &Workflow, annotations: Option<&[NodeAnnotation]>) -> String {
    let mut dot = String::from("digraph helix {\n  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"Helvetica\"];\n");
    for (i, node) in workflow.nodes().iter().enumerate() {
        let ann = annotations
            .and_then(|a| a.get(i))
            .copied()
            .unwrap_or_default();
        let pruned = ann.state == Some(NodeState::Prune);
        let color = if pruned {
            "#d3d3d3"
        } else {
            stage_color(node.kind.stage())
        };
        let mut label = node.name.clone();
        match ann.state {
            Some(NodeState::Load) => label.push_str("\\n[disk→]"),
            Some(NodeState::Compute) if ann.materialized => label.push_str("\\n[→disk]"),
            _ => {}
        }
        let _ = writeln!(
            dot,
            "  n{i} [label=\"{label}\", fillcolor=\"{color}\"{}];",
            if pruned {
                ", fontcolor=\"#777777\""
            } else {
                ""
            }
        );
    }
    for (i, node) in workflow.nodes().iter().enumerate() {
        for parent in &node.parents {
            let _ = writeln!(dot, "  n{} -> n{i};", parent.index());
        }
    }
    for output in workflow.outputs() {
        let _ = writeln!(dot, "  n{} [peripheries=2];", output.index());
    }
    dot.push_str("}\n");
    dot
}

/// Renders an executed plan as fixed-width text, one node per line in
/// topological order — the CLI stand-in for the demo's DAG pane.
pub fn ascii_plan(workflow: &Workflow, report: &IterationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:<8} {:<22} {:>10} {:>12}  flags",
        "node", "stage", "state", "secs", "bytes"
    );
    let order = workflow.topo_order().unwrap_or_else(|_| {
        (0..workflow.len())
            .map(|i| crate::workflow::NodeId(i as u32))
            .collect()
    });
    for id in order {
        let node = workflow.node(id);
        let Some(nr) = report.nodes.get(id.index()) else {
            continue;
        };
        let stage = match node.kind.stage() {
            Stage::DataPreProcessing => "prep",
            Stage::MachineLearning => "ml",
            Stage::Evaluation => "eval",
        };
        let state = match nr.state {
            NodeState::Load => "load [disk→]",
            NodeState::Compute => "compute",
            NodeState::Prune => "prune (grayed out)",
        };
        let mut flags = String::new();
        if nr.materialized {
            flags.push_str("[→disk] ");
        }
        let _ = writeln!(
            out,
            "{:<24} {:<8} {:<22} {:>10.4} {:>12}  {}",
            node.name, stage, state, nr.duration_secs, nr.output_bytes, flags
        );
    }
    out
}

/// Renders a git-log-style version history (the Versions tab).
pub fn version_log(store: &crate::version::VersionStore) -> String {
    let mut out = String::new();
    let best_acc = store.best_by_metric("accuracy").map(|v| v.id);
    for v in store.all().iter().rev() {
        let mut badges = String::new();
        if let Some(session) = &v.session {
            badges.push_str(&format!(" [{session}]"));
        }
        if Some(v.id) == best_acc {
            badges.push_str(" (best accuracy)");
        }
        if Some(v.id) == store.latest().map(|l| l.id) {
            badges.push_str(" (latest)");
        }
        let metrics: Vec<String> = v
            .metrics
            .iter()
            .map(|(m, x)| format!("{m}={x:.4}"))
            .collect();
        let _ = writeln!(
            out,
            "version {}{badges}\n  runtime: {:.3}s  {}\n  changes: {}\n",
            v.id,
            v.total_secs,
            metrics.join("  "),
            v.change_summary
        );
    }
    out
}

/// Renders a version diff with git-style +/−/~ markers (the comparison
/// view of Fig. 3).
pub fn diff_text(diff: &VersionDiff) -> String {
    if diff.is_empty() {
        return "no structural changes\n".to_string();
    }
    let mut out = String::new();
    for name in &diff.added {
        let _ = writeln!(out, "+ {name}");
    }
    for name in &diff.removed {
        let _ = writeln!(out, "- {name}");
    }
    for (name, old, new) in &diff.changed {
        let _ = writeln!(out, "~ {name}\n  - {old}\n  + {new}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ExtractorKind, LearnerSpec};
    use crate::report::NodeReport;
    use crate::signature::ChangeKind;
    use crate::version::VersionStore;

    fn workflow() -> Workflow {
        let mut w = Workflow::new("t");
        let src = w.csv_source("data", "train.csv", None::<&str>).unwrap();
        let rows = w
            .csv_scanner("rows", &src, &[("x", helix_dataflow::DataType::Int)])
            .unwrap();
        let x = w
            .field_extractor("x", &rows, "x", ExtractorKind::Numeric)
            .unwrap();
        let y = w
            .field_extractor("y", &rows, "x", ExtractorKind::Numeric)
            .unwrap();
        let income = w.assemble("income", &rows, &[&x], &y).unwrap();
        let preds = w.learner("preds", &income, LearnerSpec::default()).unwrap();
        w.output(&preds);
        w
    }

    fn full_report(w: &Workflow) -> IterationReport {
        IterationReport {
            iteration: 0,
            workflow_name: "t".into(),
            snapshot: std::sync::Arc::new(crate::version::DagSnapshot::capture(w)),
            session: Some("viz".into()),
            change_summary: "initial".into(),
            total_secs: 1.0,
            optimizer_secs: 0.0,
            materialize_secs: 0.0,
            nodes: w
                .nodes()
                .iter()
                .enumerate()
                .map(|(i, n)| NodeReport {
                    name: n.name.clone(),
                    stage: n.kind.stage(),
                    state: if i == 0 {
                        NodeState::Load
                    } else {
                        NodeState::Compute
                    },
                    change: ChangeKind::Unchanged,
                    wave: Some(0),
                    duration_secs: 0.1,
                    output_bytes: 123,
                    materialized: i == 1,
                    chunks_loaded: 0,
                    decision_source: crate::memo::DecisionSource::Estimate,
                })
                .collect(),
            waves: vec![],
            metrics: vec![("accuracy".into(), 0.9)],
        }
    }

    #[test]
    fn dot_contains_nodes_edges_and_colors() {
        let w = workflow();
        let dot = to_dot(&w, None);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("preds__model"));
        assert!(dot.contains("->"));
        assert!(dot.contains("#ff7f0e"), "ML nodes colored orange");
        assert!(dot.contains("#9467bd"), "prep nodes colored purple");
        assert!(dot.contains("peripheries=2"), "outputs double-bordered");
    }

    #[test]
    fn dot_annotations_mark_states() {
        let w = workflow();
        let mut anns = vec![NodeAnnotation::default(); w.len()];
        anns[0].state = Some(NodeState::Load);
        anns[1].state = Some(NodeState::Compute);
        anns[1].materialized = true;
        anns[2].state = Some(NodeState::Prune);
        let dot = to_dot(&w, Some(&anns));
        assert!(dot.contains("[disk→]"));
        assert!(dot.contains("[→disk]"));
        assert!(dot.contains("#d3d3d3"), "pruned node grayed");
    }

    #[test]
    fn ascii_plan_lists_all_nodes() {
        let w = workflow();
        let text = ascii_plan(&w, &full_report(&w));
        for node in w.nodes() {
            assert!(text.contains(&node.name), "missing {}", node.name);
        }
        assert!(text.contains("load [disk→]"));
        assert!(text.contains("[→disk]"));
    }

    #[test]
    fn version_log_flags_best_and_latest() {
        let w = workflow();
        let mut vs = VersionStore::new();
        vs.record(&full_report(&w));
        let mut better = full_report(&w);
        better.metrics = vec![("accuracy".into(), 0.95)];
        better.change_summary = "improved".into();
        vs.record(&better);
        let log = version_log(&vs);
        assert!(log.contains("(best accuracy)"));
        assert!(log.contains("(latest)"));
        assert!(log.contains("initial"));
        assert!(log.contains("[viz]"), "session attribution in the log");
    }

    #[test]
    fn diff_text_formats_markers() {
        let diff = VersionDiff {
            added: vec!["ms".into()],
            removed: vec!["race".into()],
            changed: vec![("model".into(), "reg=0.1".into(), "reg=0.9".into())],
        };
        let text = diff_text(&diff);
        assert!(text.contains("+ ms"));
        assert!(text.contains("- race"));
        assert!(text.contains("~ model"));
        assert_eq!(
            diff_text(&VersionDiff::default()),
            "no structural changes\n"
        );
    }
}
