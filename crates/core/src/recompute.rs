//! The recomputation optimizer: optimal `{load, compute, prune}` states.
//!
//! Paper §2.2, Equation (1): given per-node compute costs `c_i` and load
//! costs `l_i` (∞ when no valid materialization exists), choose states
//! minimizing total cost subject to the *prune constraint* — a computed
//! node's parents must be available — and to outputs being available.
//!
//! This cannot be solved by a DAG traversal (loading a node lets you prune
//! its ancestors, but their value depends on *their* other descendants), so
//! Helix reduces it to the Project Selection Problem:
//!
//! * project `a_i` — "make node *i* available", profit `−l_i`;
//! * project `b_i` — "compute node *i*", profit `l_i − c_i`,
//!   requiring `a_i` and `a_p` for every parent `p`.
//!
//! Selecting both means computing (net `−c_i`), selecting `a_i` alone means
//! loading (net `−l_i`), selecting neither means pruning (0). A node with
//! no valid materialization gets `l_i = L∞`, making the load-only choice
//! prohibitively bad while `a_i + b_i` still nets exactly `−c_i`. Outputs'
//! `a` projects are mandatory. One min-cut solves the whole instance.

use crate::workflow::{NodeId, Workflow};
use crate::Result;
use helix_mincut::{Project, ProjectSelection};

/// Sentinel load cost for "cannot be loaded" (unmaterialized or stale).
/// Far above any real cost (≈ 13 days in µs) yet far below the solver's
/// mandatory-project big-M, so the two never interfere.
pub const LOAD_INFEASIBLE_US: u64 = 1 << 40;

/// Per-node inputs to the optimizer, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCosts {
    /// Estimated cost to compute this node from its (available) parents.
    pub compute_us: u64,
    /// Estimated cost to load this node, or `None` when no valid
    /// materialization exists.
    pub load_us: Option<u64>,
}

impl NodeCosts {
    /// The effective load cost fed to the reduction.
    fn load_or_inf(&self) -> u64 {
        match self.load_us {
            Some(l) => l.min(LOAD_INFEASIBLE_US - 1),
            None => LOAD_INFEASIBLE_US,
        }
    }
}

/// The state assigned to a node by the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Read the materialized result from the store.
    Load,
    /// Execute the operator on its parents' results.
    Compute,
    /// Skip entirely: no descendant needs this node's result.
    Prune,
}

/// Which algorithm picks the states — the paper's optimum plus the
/// baselines used by `helix-baselines` and the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecomputationPolicy {
    /// The PSP/min-cut optimum (Helix).
    #[default]
    Optimal,
    /// Recompute every active node (KeystoneML-style, no cross-iteration
    /// reuse).
    ComputeAll,
    /// Load whatever has a valid materialization, compute the rest
    /// (DeepDive-style greedy reuse; never prunes redundant ancestors'
    /// compute when loads make them unnecessary — wait, it does: ancestors
    /// of loaded nodes still not needed are pruned by a reachability pass).
    LoadAllAvailable,
}

/// Computes states for the active subgraph.
///
/// `active[i]` marks nodes surviving program slicing; inactive nodes are
/// assigned [`NodeState::Prune`] unconditionally. `outputs` must be active.
///
/// # Errors
/// Propagates cycle errors; rejects inactive outputs.
pub fn plan_states(
    workflow: &Workflow,
    active: &[bool],
    costs: &[NodeCosts],
    policy: RecomputationPolicy,
) -> Result<Vec<NodeState>> {
    let n = workflow.len();
    assert_eq!(active.len(), n, "active mask length mismatch");
    assert_eq!(costs.len(), n, "costs length mismatch");
    for output in workflow.outputs() {
        if !active[output.index()] {
            return Err(crate::HelixError::Compile(format!(
                "output `{}` was sliced away",
                workflow.node(*output).name
            )));
        }
    }
    match policy {
        RecomputationPolicy::Optimal => plan_optimal(workflow, active, costs),
        RecomputationPolicy::ComputeAll => Ok(plan_compute_all(workflow, active)),
        RecomputationPolicy::LoadAllAvailable => Ok(plan_load_all(workflow, active, costs)),
    }
}

fn plan_optimal(
    workflow: &Workflow,
    active: &[bool],
    costs: &[NodeCosts],
) -> Result<Vec<NodeState>> {
    let n = workflow.len();
    let mut psp = ProjectSelection::new();
    // Project ids: a_i = 2*i, b_i = 2*i + 1 (inactive nodes get dummy
    // never-selected projects to keep indexing simple).
    let is_output = {
        let mut mask = vec![false; n];
        for o in workflow.outputs() {
            mask[o.index()] = true;
        }
        mask
    };
    for i in 0..n {
        if !active[i] {
            // Dummy projects with strongly negative profit.
            psp.add_project(Project::new(-(LOAD_INFEASIBLE_US as i64)));
            psp.add_project(Project::new(-(LOAD_INFEASIBLE_US as i64)));
            continue;
        }
        let l = costs[i].load_or_inf() as i64;
        let c = costs[i].compute_us as i64;
        let a = if is_output[i] {
            Project::mandatory(-l)
        } else {
            Project::new(-l)
        };
        psp.add_project(a);
        psp.add_project(Project::new(l - c));
    }
    for (i, node) in workflow.nodes().iter().enumerate() {
        if !active[i] {
            continue;
        }
        let b = 2 * i + 1;
        psp.require(b, 2 * i);
        for parent in &node.parents {
            psp.require(b, 2 * parent.index());
        }
    }
    let solution = psp.solve();
    let mut states = Vec::with_capacity(n);
    for (i, &is_active) in active.iter().enumerate().take(n) {
        let state = if !is_active {
            NodeState::Prune
        } else if solution.selected[2 * i + 1] {
            NodeState::Compute
        } else if solution.selected[2 * i] {
            NodeState::Load
        } else {
            NodeState::Prune
        };
        states.push(state);
    }
    Ok(states)
}

fn plan_compute_all(workflow: &Workflow, active: &[bool]) -> Vec<NodeState> {
    (0..workflow.len())
        .map(|i| {
            if active[i] {
                NodeState::Compute
            } else {
                NodeState::Prune
            }
        })
        .collect()
}

/// Load every loadable node; compute the rest; then prune nodes nothing
/// depends on (ancestors fully shadowed by loads).
fn plan_load_all(workflow: &Workflow, active: &[bool], costs: &[NodeCosts]) -> Vec<NodeState> {
    let n = workflow.len();
    let mut states: Vec<NodeState> = (0..n)
        .map(|i| {
            if !active[i] {
                NodeState::Prune
            } else if costs[i].load_us.is_some() {
                NodeState::Load
            } else {
                NodeState::Compute
            }
        })
        .collect();
    // A node is needed if it is an output, or a parent of a needed Compute
    // node. Walk backwards from outputs.
    let mut needed = vec![false; n];
    let mut stack: Vec<NodeId> = workflow.outputs().to_vec();
    while let Some(id) = stack.pop() {
        let i = id.index();
        if needed[i] {
            continue;
        }
        needed[i] = true;
        if states[i] == NodeState::Compute {
            stack.extend(workflow.node(id).parents.iter().copied());
        }
    }
    for i in 0..n {
        if !needed[i] {
            states[i] = NodeState::Prune;
        }
    }
    states
}

/// Dependency level ("wave") per node: `None` for pruned nodes, `Some(0)`
/// for loads and for computes with no unpruned parents, and
/// `1 + max(parent level)` for other computes. All nodes in one wave are
/// mutually independent, so the parallel scheduler may run them
/// concurrently; loads sit in wave 0 because the store satisfies them
/// without upstream results.
pub fn wave_levels(workflow: &Workflow, states: &[NodeState]) -> Vec<Option<usize>> {
    let n = workflow.len();
    assert_eq!(states.len(), n, "states length mismatch");
    let mut levels: Vec<Option<usize>> = vec![None; n];
    // `rewire` can point an early node at a later one, so walk in
    // topological order rather than id order. A cyclic workflow cannot
    // reach execution (compilation rejects it), so fall back to id order.
    let order = workflow
        .topo_order()
        .unwrap_or_else(|_| (0..n as u32).map(NodeId).collect());
    for id in order {
        let i = id.index();
        match states[i] {
            NodeState::Prune => {}
            NodeState::Load => levels[i] = Some(0),
            NodeState::Compute => {
                let level = workflow
                    .node(id)
                    .parents
                    .iter()
                    .filter_map(|p| levels[p.index()])
                    .map(|l| l + 1)
                    .max()
                    .unwrap_or(0);
                levels[i] = Some(level);
            }
        }
    }
    levels
}

/// Partitions a plan's non-pruned nodes into dependency waves, preserving
/// `order` within each wave: wave *k* holds exactly the nodes whose
/// [`wave_levels`] level is `k`.
///
/// The executor no longer runs wave-by-wave (see `crate::scheduler` for
/// the ready-queue model); waves survive as the unit of the critical-path
/// cost estimate ([`plan_wave_cost_us`]) and of the derived per-wave
/// timings in iteration reports.
pub fn build_waves(
    workflow: &Workflow,
    order: &[NodeId],
    states: &[NodeState],
) -> Vec<Vec<NodeId>> {
    let levels = wave_levels(workflow, states);
    let n_waves = levels.iter().flatten().copied().max().map_or(0, |l| l + 1);
    let mut waves: Vec<Vec<NodeId>> = vec![Vec::new(); n_waves];
    for &id in order {
        if let Some(level) = levels[id.index()] {
            waves[level].push(id);
        }
    }
    waves
}

/// Estimated makespan of the plan in µs under unbounded parallelism: the
/// per-wave maximum of member costs, summed over waves. The gap between
/// this and [`plan_cost_us`] is the speedup ceiling a parallel executor
/// can extract from the plan.
pub fn plan_wave_cost_us(workflow: &Workflow, states: &[NodeState], costs: &[NodeCosts]) -> u64 {
    let levels = wave_levels(workflow, states);
    let mut wave_max: Vec<u64> = Vec::new();
    for (i, level) in levels.iter().enumerate() {
        let Some(level) = level else { continue };
        if *level >= wave_max.len() {
            wave_max.resize(level + 1, 0);
        }
        let cost = match states[i] {
            NodeState::Compute => costs[i].compute_us,
            NodeState::Load => costs[i].load_or_inf(),
            NodeState::Prune => 0,
        };
        wave_max[*level] = wave_max[*level].max(cost);
    }
    wave_max.iter().sum()
}

/// Per-node downstream critical-path estimate in µs: the node's own cost
/// plus the most expensive chain of *compute* descendants hanging off it
/// (`0` for pruned nodes). A node with a deep or expensive tail is the
/// one to start first — the ready-queue scheduler uses these as pop
/// priorities when more than one node is ready (see `crate::scheduler`),
/// reusing the same per-node cost data as [`plan_wave_cost_us`]. Load
/// children do not extend a parent's path: they read the store, not the
/// parent's output.
pub fn critical_path_priority_us(
    workflow: &Workflow,
    states: &[NodeState],
    costs: &[NodeCosts],
) -> Vec<u64> {
    let n = workflow.len();
    assert_eq!(states.len(), n, "states length mismatch");
    assert_eq!(costs.len(), n, "costs length mismatch");
    let children = workflow.children();
    let order = workflow
        .topo_order()
        .unwrap_or_else(|_| (0..n as u32).map(NodeId).collect());
    let mut priority = vec![0u64; n];
    for id in order.iter().rev() {
        let i = id.index();
        let own = match states[i] {
            NodeState::Prune => continue,
            NodeState::Compute => costs[i].compute_us,
            NodeState::Load => costs[i].load_us.unwrap_or(1),
        };
        let tail = children[i]
            .iter()
            .filter(|c| states[c.index()] == NodeState::Compute)
            .map(|c| priority[c.index()])
            .max()
            .unwrap_or(0);
        priority[i] = own.saturating_add(tail);
    }
    priority
}

/// Total plan cost in µs under the given states (∞-loads count as the
/// sentinel; used by tests and the ablation benches).
pub fn plan_cost_us(states: &[NodeState], costs: &[NodeCosts]) -> u64 {
    states
        .iter()
        .zip(costs)
        .map(|(s, c)| match s {
            NodeState::Compute => c.compute_us,
            NodeState::Load => c.load_or_inf(),
            NodeState::Prune => 0,
        })
        .sum()
}

/// Checks plan feasibility: outputs available, computed nodes have
/// available parents, loads only where a materialization exists.
pub fn validate_plan(
    workflow: &Workflow,
    states: &[NodeState],
    costs: &[NodeCosts],
) -> std::result::Result<(), String> {
    for output in workflow.outputs() {
        if states[output.index()] == NodeState::Prune {
            return Err(format!("output `{}` pruned", workflow.node(*output).name));
        }
    }
    for (i, node) in workflow.nodes().iter().enumerate() {
        match states[i] {
            NodeState::Compute => {
                for parent in &node.parents {
                    if states[parent.index()] == NodeState::Prune {
                        return Err(format!(
                            "`{}` computed but parent `{}` pruned",
                            node.name,
                            workflow.node(*parent).name
                        ));
                    }
                }
            }
            NodeState::Load => {
                if costs[i].load_us.is_none() {
                    return Err(format!("`{}` loaded without materialization", node.name));
                }
            }
            NodeState::Prune => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OperatorKind;
    use crate::workflow::{NodeRef, Workflow};

    /// Builds a workflow shaped like a random DAG using inert UDF nodes
    /// (the optimizer never executes anything, it only needs shape).
    fn dag_workflow(n: usize, edges: &[(usize, usize)], outputs: &[usize]) -> Workflow {
        let mut w = Workflow::new("t");
        let mut refs: Vec<NodeRef> = Vec::new();
        for i in 0..n {
            let parents: Vec<&NodeRef> = edges
                .iter()
                .filter(|&&(_, dst)| dst == i)
                .map(|&(src, _)| &refs[src])
                .collect();
            let udf = crate::ops::Udf::new("v1", |inputs: &[&helix_dataflow::DataCollection]| {
                Ok(inputs.first().map(|dc| (*dc).clone()).unwrap_or_else(|| {
                    helix_dataflow::DataCollection::empty(helix_dataflow::Schema::of(&[]))
                }))
            });
            let r = w
                .add(format!("n{i}"), OperatorKind::UserDefined(udf), &parents)
                .unwrap();
            refs.push(r);
        }
        for &o in outputs {
            let r = refs[o];
            w.output(&r);
        }
        w
    }

    fn all_active(w: &Workflow) -> Vec<bool> {
        vec![true; w.len()]
    }

    /// Brute force over all 3^n assignments (feasible ones only).
    fn brute_force(w: &Workflow, costs: &[NodeCosts]) -> u64 {
        let n = w.len();
        assert!(n <= 10);
        let mut best = u64::MAX;
        let mut states = vec![NodeState::Prune; n];
        fn rec(
            w: &Workflow,
            costs: &[NodeCosts],
            states: &mut Vec<NodeState>,
            i: usize,
            best: &mut u64,
        ) {
            if i == states.len() {
                if validate_plan(w, states, costs).is_ok() {
                    *best = (*best).min(plan_cost_us(states, costs));
                }
                return;
            }
            for s in [NodeState::Load, NodeState::Compute, NodeState::Prune] {
                // Skip infeasible loads early.
                if s == NodeState::Load && costs[i].load_us.is_none() {
                    continue;
                }
                states[i] = s;
                rec(w, costs, states, i + 1, best);
            }
            states[i] = NodeState::Prune;
        }
        rec(w, costs, &mut states, 0, &mut best);
        best
    }

    #[test]
    fn chain_prefers_loading_cheap_tail() {
        // a -> b -> c (output). c materialized & cheap to load: optimal is
        // load c, prune a and b.
        let w = dag_workflow(3, &[(0, 1), (1, 2)], &[2]);
        let costs = vec![
            NodeCosts {
                compute_us: 100,
                load_us: None,
            },
            NodeCosts {
                compute_us: 100,
                load_us: None,
            },
            NodeCosts {
                compute_us: 100,
                load_us: Some(10),
            },
        ];
        let states =
            plan_states(&w, &all_active(&w), &costs, RecomputationPolicy::Optimal).unwrap();
        assert_eq!(
            states,
            vec![NodeState::Prune, NodeState::Prune, NodeState::Load]
        );
    }

    #[test]
    fn expensive_load_recomputes_instead() {
        // Loading the output costs more than recomputing the whole chain.
        let w = dag_workflow(3, &[(0, 1), (1, 2)], &[2]);
        let costs = vec![
            NodeCosts {
                compute_us: 10,
                load_us: None,
            },
            NodeCosts {
                compute_us: 10,
                load_us: None,
            },
            NodeCosts {
                compute_us: 10,
                load_us: Some(1_000),
            },
        ];
        let states =
            plan_states(&w, &all_active(&w), &costs, RecomputationPolicy::Optimal).unwrap();
        assert_eq!(states, vec![NodeState::Compute; 3]);
    }

    #[test]
    fn paper_counterexample_keeps_shared_parent() {
        // The §2.2 example: loading n_i would prune ancestor n_j, but n_j
        // has another child n_k with huge load cost, so the optimum keeps
        // n_j computed and computes n_k from it.
        //   j -> i (output), j -> k (output)
        let w = dag_workflow(3, &[(0, 1), (0, 2)], &[1, 2]);
        let costs = vec![
            // n_j: moderately expensive to compute, no materialization.
            NodeCosts {
                compute_us: 50,
                load_us: None,
            },
            // n_i: cheap to load.
            NodeCosts {
                compute_us: 40,
                load_us: Some(5),
            },
            // n_k: load far pricier than compute (l_k >> c_k).
            NodeCosts {
                compute_us: 20,
                load_us: Some(10_000),
            },
        ];
        let states =
            plan_states(&w, &all_active(&w), &costs, RecomputationPolicy::Optimal).unwrap();
        assert_eq!(states[0], NodeState::Compute, "shared parent must stay");
        assert_eq!(states[1], NodeState::Load);
        assert_eq!(states[2], NodeState::Compute);
    }

    #[test]
    fn diamond_matches_brute_force() {
        let w = dag_workflow(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], &[3]);
        let costs = vec![
            NodeCosts {
                compute_us: 30,
                load_us: Some(25),
            },
            NodeCosts {
                compute_us: 50,
                load_us: Some(10),
            },
            NodeCosts {
                compute_us: 70,
                load_us: None,
            },
            NodeCosts {
                compute_us: 20,
                load_us: Some(200),
            },
        ];
        let states =
            plan_states(&w, &all_active(&w), &costs, RecomputationPolicy::Optimal).unwrap();
        validate_plan(&w, &states, &costs).unwrap();
        assert_eq!(plan_cost_us(&states, &costs), brute_force(&w, &costs));
    }

    #[test]
    fn inactive_nodes_always_pruned() {
        let w = dag_workflow(3, &[(0, 1)], &[1]);
        let mut active = all_active(&w);
        active[2] = false;
        let costs = vec![
            NodeCosts {
                compute_us: 1,
                load_us: None
            };
            3
        ];
        for policy in [
            RecomputationPolicy::Optimal,
            RecomputationPolicy::ComputeAll,
            RecomputationPolicy::LoadAllAvailable,
        ] {
            let states = plan_states(&w, &active, &costs, policy).unwrap();
            assert_eq!(states[2], NodeState::Prune, "{policy:?}");
        }
    }

    #[test]
    fn compute_all_never_loads() {
        let w = dag_workflow(3, &[(0, 1), (1, 2)], &[2]);
        let costs = vec![
            NodeCosts {
                compute_us: 10,
                load_us: Some(1)
            };
            3
        ];
        let states =
            plan_states(&w, &all_active(&w), &costs, RecomputationPolicy::ComputeAll).unwrap();
        assert_eq!(states, vec![NodeState::Compute; 3]);
    }

    #[test]
    fn load_all_prunes_shadowed_ancestors() {
        let w = dag_workflow(3, &[(0, 1), (1, 2)], &[2]);
        let costs = vec![
            NodeCosts {
                compute_us: 10,
                load_us: None,
            },
            NodeCosts {
                compute_us: 10,
                load_us: None,
            },
            NodeCosts {
                compute_us: 10,
                load_us: Some(10_000),
            },
        ];
        // Greedy loads node 2 even though recomputing would be cheaper,
        // then prunes its ancestors — exactly DeepDive's behaviour.
        let states = plan_states(
            &w,
            &all_active(&w),
            &costs,
            RecomputationPolicy::LoadAllAvailable,
        )
        .unwrap();
        assert_eq!(
            states,
            vec![NodeState::Prune, NodeState::Prune, NodeState::Load]
        );
    }

    #[test]
    fn pruned_output_detected() {
        let w = dag_workflow(2, &[(0, 1)], &[1]);
        let mut active = all_active(&w);
        active[1] = false;
        let costs = vec![
            NodeCosts {
                compute_us: 1,
                load_us: None
            };
            2
        ];
        assert!(plan_states(&w, &active, &costs, RecomputationPolicy::Optimal).is_err());
    }

    #[test]
    fn wave_levels_partition_diamond() {
        // 0 -> {1, 2} -> 3: waves are {0}, {1, 2}, {3}.
        let w = dag_workflow(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], &[3]);
        let states = vec![NodeState::Compute; 4];
        let levels = wave_levels(&w, &states);
        assert_eq!(levels, vec![Some(0), Some(1), Some(1), Some(2)]);
    }

    #[test]
    fn loads_sit_in_wave_zero_and_prunes_have_none() {
        let w = dag_workflow(3, &[(0, 1), (1, 2)], &[2]);
        let states = vec![NodeState::Prune, NodeState::Load, NodeState::Compute];
        let levels = wave_levels(&w, &states);
        assert_eq!(levels, vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn build_waves_partitions_by_level_in_order() {
        let w = dag_workflow(5, &[(0, 1), (0, 2), (1, 3), (2, 3)], &[3, 4]);
        let states = vec![NodeState::Compute; 5];
        let order: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        let waves = build_waves(&w, &order, &states);
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0], vec![NodeId(0), NodeId(4)]);
        assert_eq!(waves[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(waves[2], vec![NodeId(3)]);
        let total: usize = waves.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn wave_cost_is_critical_path_not_total() {
        let w = dag_workflow(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], &[3]);
        let states = vec![NodeState::Compute; 4];
        let costs: Vec<NodeCosts> = [10, 40, 70, 20]
            .iter()
            .map(|&c| NodeCosts {
                compute_us: c,
                load_us: None,
            })
            .collect();
        // Waves: {0} max 10, {1,2} max 70, {3} max 20.
        assert_eq!(plan_wave_cost_us(&w, &states, &costs), 100);
        assert_eq!(plan_cost_us(&states, &costs), 140);
    }

    #[test]
    fn critical_path_priorities_favor_deep_chains() {
        // 0 -> 1 -> 2 (deep chain) and 3 (shallow, expensive-ish): the
        // chain head must outrank the standalone node even though its own
        // cost is smaller, because its downstream tail dominates.
        let w = dag_workflow(4, &[(0, 1), (1, 2)], &[2, 3]);
        let states = vec![NodeState::Compute; 4];
        let costs: Vec<NodeCosts> = [10, 50, 40, 60]
            .iter()
            .map(|&c| NodeCosts {
                compute_us: c,
                load_us: None,
            })
            .collect();
        let prio = critical_path_priority_us(&w, &states, &costs);
        assert_eq!(prio, vec![100, 90, 40, 60]);
        assert!(prio[0] > prio[3], "chain head beats shallow node");
    }

    #[test]
    fn critical_path_priorities_skip_prunes_and_load_children() {
        // 0 -> 1 -> 2 with node 1 loaded: the load severs node 0's tail
        // (a Load never consumes its parent's output), and a pruned node
        // contributes nothing.
        let w = dag_workflow(4, &[(0, 1), (1, 2), (0, 3)], &[2]);
        let states = vec![
            NodeState::Compute,
            NodeState::Load,
            NodeState::Compute,
            NodeState::Prune,
        ];
        let costs: Vec<NodeCosts> = [10, 5, 40, 99]
            .iter()
            .map(|&c| NodeCosts {
                compute_us: c,
                load_us: Some(7),
            })
            .collect();
        let prio = critical_path_priority_us(&w, &states, &costs);
        assert_eq!(prio[3], 0, "pruned nodes carry no priority");
        assert_eq!(prio[1], 7 + 40, "load cost plus compute tail");
        assert_eq!(prio[0], 10, "load child does not extend the parent");
    }

    #[test]
    fn wave_cost_never_exceeds_sequential_cost() {
        let w = dag_workflow(5, &[(0, 2), (1, 2), (2, 3), (2, 4)], &[3, 4]);
        let costs = vec![
            NodeCosts {
                compute_us: 25,
                load_us: Some(5),
            };
            5
        ];
        for policy in [
            RecomputationPolicy::Optimal,
            RecomputationPolicy::ComputeAll,
            RecomputationPolicy::LoadAllAvailable,
        ] {
            let states = plan_states(&w, &all_active(&w), &costs, policy).unwrap();
            assert!(
                plan_wave_cost_us(&w, &states, &costs) <= plan_cost_us(&states, &costs),
                "{policy:?}"
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// (node count, forward edges, per-node (compute, load) costs).
        type ArbInstance = (usize, Vec<(usize, usize)>, Vec<(u64, Option<u64>)>);

        fn arb_instance() -> impl Strategy<Value = ArbInstance> {
            (2usize..8).prop_flat_map(|n| {
                let edges = proptest::collection::vec((0..n, 0..n), 0..12).prop_map(move |pairs| {
                    pairs
                        .into_iter()
                        .filter(|&(a, b)| a < b)
                        .collect::<Vec<_>>()
                });
                let costs =
                    proptest::collection::vec((1u64..200, proptest::option::of(1u64..200)), n);
                (Just(n), edges, costs)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The min-cut plan is always feasible and exactly matches the
            /// exhaustive optimum on random DAGs.
            #[test]
            fn optimal_matches_brute_force((n, edges, raw_costs) in arb_instance()) {
                // Every sink is an output; ensures at least one output.
                let has_child: Vec<bool> = (0..n)
                    .map(|i| edges.iter().any(|&(src, _)| src == i))
                    .collect();
                let outputs: Vec<usize> =
                    (0..n).filter(|&i| !has_child[i]).collect();
                let w = dag_workflow(n, &edges, &outputs);
                let costs: Vec<NodeCosts> = raw_costs
                    .iter()
                    .map(|&(c, l)| NodeCosts { compute_us: c, load_us: l })
                    .collect();
                let states = plan_states(
                    &w,
                    &vec![true; n],
                    &costs,
                    RecomputationPolicy::Optimal,
                ).unwrap();
                prop_assert!(validate_plan(&w, &states, &costs).is_ok());
                prop_assert_eq!(
                    plan_cost_us(&states, &costs),
                    brute_force(&w, &costs)
                );
            }

            /// Baselines are feasible and never beat the optimum.
            #[test]
            fn baselines_feasible_and_dominated((n, edges, raw_costs) in arb_instance()) {
                let has_child: Vec<bool> = (0..n)
                    .map(|i| edges.iter().any(|&(src, _)| src == i))
                    .collect();
                let outputs: Vec<usize> = (0..n).filter(|&i| !has_child[i]).collect();
                let w = dag_workflow(n, &edges, &outputs);
                let costs: Vec<NodeCosts> = raw_costs
                    .iter()
                    .map(|&(c, l)| NodeCosts { compute_us: c, load_us: l })
                    .collect();
                let optimal = plan_states(&w, &vec![true; n], &costs, RecomputationPolicy::Optimal).unwrap();
                let opt_cost = plan_cost_us(&optimal, &costs);
                for policy in [RecomputationPolicy::ComputeAll, RecomputationPolicy::LoadAllAvailable] {
                    let states = plan_states(&w, &vec![true; n], &costs, policy).unwrap();
                    prop_assert!(validate_plan(&w, &states, &costs).is_ok(), "{:?}", policy);
                    prop_assert!(plan_cost_us(&states, &costs) >= opt_cost, "{:?}", policy);
                }
            }
        }
    }
}
