//! Per-iteration execution reports.

use crate::ops::Stage;
use crate::recompute::NodeState;
use crate::signature::ChangeKind;
use crate::version::DagSnapshot;
use std::sync::Arc;

/// What happened to one node during an iteration.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node name.
    pub name: String,
    /// Workflow stage (for Fig.-2-style attribution).
    pub stage: Stage,
    /// Planned (and executed) state.
    pub state: NodeState,
    /// How the node differed from the previous version.
    pub change: ChangeKind,
    /// The node's dependency level in the plan (`None` for pruned
    /// nodes): 0 for loads and dependency-free computes, one more than
    /// the deepest parent otherwise. Purely descriptive — the ready-queue
    /// executor does not run level-by-level.
    pub wave: Option<usize>,
    /// Wall-clock seconds spent computing or loading (0 for pruned).
    /// This is the primary timing record; per-wave figures are derived
    /// from it.
    pub duration_secs: f64,
    /// Output size estimate in bytes (0 for pruned).
    pub output_bytes: u64,
    /// Whether the output was newly materialized this iteration.
    pub materialized: bool,
    /// Data-chunk partitions served from the store while computing this
    /// node (the incremental-data fast path; 0 for loads and chunk-free
    /// computes).
    pub chunks_loaded: usize,
    /// Where the node's planning cost came from: the name-keyed estimate,
    /// or per-signature observed history via the adaptive re-plan.
    pub decision_source: crate::memo::DecisionSource,
}

/// Derived timing for one dependency level ("wave") of the plan — a set
/// of mutually independent nodes. The executor is barrier-free (see
/// `crate::scheduler`), so these are summaries computed from per-node
/// durations, not measured wall-clock phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveReport {
    /// Nodes executed at this dependency level.
    pub nodes: usize,
    /// At `parallelism = 1`, the sum of member durations; at higher
    /// thread counts, the slowest member's duration (the level's
    /// contribution to an idealized critical path).
    pub secs: f64,
}

/// The result of executing one workflow iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// 0-based iteration number within the lineage (session) that ran it.
    pub iteration: usize,
    /// Workflow name.
    pub workflow_name: String,
    /// Name of the session that ran the iteration, when one did (`None`
    /// for direct [`crate::Engine::run`] calls).
    pub session: Option<String>,
    /// One-line description of what changed since the previous iteration
    /// of this lineage: the session's typed edit log when edits were
    /// recorded, otherwise a summary derived from the signature diff.
    pub change_summary: String,
    /// End-to-end wall time, including optimization and store traffic.
    pub total_secs: f64,
    /// Seconds spent inside the compiler/optimizers.
    pub optimizer_secs: f64,
    /// Seconds spent writing materializations.
    pub materialize_secs: f64,
    /// Per-node details, in [`crate::workflow::NodeId`] index order —
    /// the primary execution record.
    pub nodes: Vec<NodeReport>,
    /// Per-dependency-level timings derived from the node durations, in
    /// level order.
    pub waves: Vec<WaveReport>,
    /// Metric values harvested from Evaluate nodes.
    pub metrics: Vec<(String, f64)>,
    /// The DAG as executed, captured once per run. Shared (`Arc`) with
    /// every version-history record of this iteration — the engine's
    /// global store and a session's private store hold the same
    /// allocation.
    pub snapshot: Arc<DagSnapshot>,
}

impl IterationReport {
    /// Nodes loaded from the store.
    pub fn loaded(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Load)
            .count()
    }

    /// Nodes computed.
    pub fn computed(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Compute)
            .count()
    }

    /// Nodes pruned (sliced away or shadowed by loads).
    pub fn pruned(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Prune)
            .count()
    }

    /// Fraction of non-pruned nodes that were reused (loaded), the
    /// headline number behind Helix's near-zero post-processing iterations.
    pub fn reuse_rate(&self) -> f64 {
        let touched = self.loaded() + self.computed();
        if touched == 0 {
            return 0.0;
        }
        self.loaded() as f64 / touched as f64
    }

    /// Data-chunk partitions served from the store across all computed
    /// nodes — the upstream-reuse count of an incremental (data-delta)
    /// run. Zero when the dataset is new or every node loaded whole.
    pub fn chunks_reused(&self) -> usize {
        self.nodes.iter().map(|n| n.chunks_loaded).sum()
    }

    /// Depth of the plan's dependency-level decomposition (number of
    /// derived waves).
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }

    /// Total seconds of node execution work (the sum of per-node
    /// durations — CPU-time-like, not wall-clock when parallel).
    pub fn exec_secs(&self) -> f64 {
        self.nodes.iter().map(|n| n.duration_secs).sum()
    }

    /// Idealized critical-path seconds: the per-level summaries summed
    /// over levels. With unbounded parallelism an iteration cannot beat
    /// this; the gap to [`IterationReport::exec_secs`] is the speedup the
    /// ready-queue executor can extract.
    pub fn critical_path_secs(&self) -> f64 {
        self.waves.iter().map(|w| w.secs).sum()
    }

    /// Value of a named metric, if an Evaluate node produced it.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(m, _)| m == name)
            .map(|(_, v)| *v)
    }

    /// Seconds attributed to a given workflow stage.
    pub fn stage_secs(&self, stage: Stage) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.stage == stage)
            .map(|n| n.duration_secs)
            .sum()
    }

    /// One-line summary for logs and the demo UI.
    pub fn summary(&self) -> String {
        format!(
            "iter {} [{}]: {:.3}s total ({} loaded, {} computed, {} pruned, reuse {:.0}%)",
            self.iteration,
            self.workflow_name,
            self.total_secs,
            self.loaded(),
            self.computed(),
            self.pruned(),
            self.reuse_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, state: NodeState, secs: f64, stage: Stage) -> NodeReport {
        NodeReport {
            name: name.into(),
            stage,
            state,
            change: ChangeKind::Unchanged,
            wave: (state != NodeState::Prune).then_some(0),
            duration_secs: secs,
            output_bytes: 0,
            materialized: false,
            chunks_loaded: 0,
            decision_source: crate::memo::DecisionSource::Estimate,
        }
    }

    fn report() -> IterationReport {
        IterationReport {
            iteration: 3,
            workflow_name: "census".into(),
            snapshot: Arc::default(),
            session: Some("analyst".into()),
            change_summary: "no changes".into(),
            total_secs: 1.5,
            optimizer_secs: 0.01,
            materialize_secs: 0.2,
            nodes: vec![
                node("a", NodeState::Load, 0.1, Stage::DataPreProcessing),
                node("b", NodeState::Compute, 1.0, Stage::MachineLearning),
                node("c", NodeState::Prune, 0.0, Stage::DataPreProcessing),
                node("d", NodeState::Compute, 0.4, Stage::Evaluation),
            ],
            waves: vec![
                WaveReport {
                    nodes: 1,
                    secs: 0.1,
                },
                WaveReport {
                    nodes: 1,
                    secs: 1.0,
                },
                WaveReport {
                    nodes: 1,
                    secs: 0.4,
                },
            ],
            metrics: vec![("accuracy".into(), 0.83)],
        }
    }

    #[test]
    fn counts_and_reuse() {
        let r = report();
        assert_eq!(r.loaded(), 1);
        assert_eq!(r.computed(), 2);
        assert_eq!(r.pruned(), 1);
        assert!((r.reuse_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn metric_lookup() {
        let r = report();
        assert_eq!(r.metric("accuracy"), Some(0.83));
        assert_eq!(r.metric("f1"), None);
    }

    #[test]
    fn stage_attribution() {
        let r = report();
        assert!((r.stage_secs(Stage::DataPreProcessing) - 0.1).abs() < 1e-12);
        assert!((r.stage_secs(Stage::MachineLearning) - 1.0).abs() < 1e-12);
        assert!((r.stage_secs(Stage::Evaluation) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_counts() {
        let s = report().summary();
        assert!(s.contains("1 loaded"));
        assert!(s.contains("2 computed"));
        assert!(s.contains("census"));
    }

    #[test]
    fn empty_report_reuse_rate_is_zero() {
        let r = IterationReport {
            iteration: 0,
            workflow_name: "x".into(),
            snapshot: Arc::default(),
            session: None,
            change_summary: "initial version".into(),
            total_secs: 0.0,
            optimizer_secs: 0.0,
            materialize_secs: 0.0,
            nodes: vec![],
            waves: vec![],
            metrics: vec![],
        };
        assert_eq!(r.reuse_rate(), 0.0);
        assert_eq!(r.wave_count(), 0);
        assert_eq!(r.exec_secs(), 0.0);
        assert_eq!(r.critical_path_secs(), 0.0);
    }

    #[test]
    fn wave_aggregation() {
        let r = report();
        assert_eq!(r.wave_count(), 3);
        assert!((r.exec_secs() - 1.5).abs() < 1e-12, "sum of node durations");
        assert!((r.critical_path_secs() - 1.5).abs() < 1e-12);
    }
}
