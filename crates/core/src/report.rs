//! Per-iteration execution reports.

use crate::ops::Stage;
use crate::recompute::NodeState;
use crate::signature::ChangeKind;

/// What happened to one node during an iteration.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node name.
    pub name: String,
    /// Workflow stage (for Fig.-2-style attribution).
    pub stage: Stage,
    /// Planned (and executed) state.
    pub state: NodeState,
    /// How the node differed from the previous version.
    pub change: ChangeKind,
    /// Wall-clock seconds spent computing or loading (0 for pruned).
    pub duration_secs: f64,
    /// Output size estimate in bytes (0 for pruned).
    pub output_bytes: u64,
    /// Whether the output was newly materialized this iteration.
    pub materialized: bool,
}

/// Timing for one scheduler wave (a set of mutually independent nodes the
/// engine executed concurrently).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveReport {
    /// Nodes executed in this wave.
    pub nodes: usize,
    /// Wall-clock seconds of the wave. At `parallelism = 1` this is the
    /// sum of member durations; at higher thread counts it approaches the
    /// slowest member's duration.
    pub secs: f64,
}

/// The result of executing one workflow iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// 0-based iteration number within the engine's history.
    pub iteration: usize,
    /// Workflow name.
    pub workflow_name: String,
    /// End-to-end wall time, including optimization and store traffic.
    pub total_secs: f64,
    /// Seconds spent inside the compiler/optimizers.
    pub optimizer_secs: f64,
    /// Seconds spent writing materializations.
    pub materialize_secs: f64,
    /// Per-node details, in [`crate::workflow::NodeId`] index order.
    pub nodes: Vec<NodeReport>,
    /// Per-wave timings from the scheduler, in execution order.
    pub waves: Vec<WaveReport>,
    /// Metric values harvested from Evaluate nodes.
    pub metrics: Vec<(String, f64)>,
}

impl IterationReport {
    /// Nodes loaded from the store.
    pub fn loaded(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Load)
            .count()
    }

    /// Nodes computed.
    pub fn computed(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Compute)
            .count()
    }

    /// Nodes pruned (sliced away or shadowed by loads).
    pub fn pruned(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Prune)
            .count()
    }

    /// Fraction of non-pruned nodes that were reused (loaded), the
    /// headline number behind Helix's near-zero post-processing iterations.
    pub fn reuse_rate(&self) -> f64 {
        let touched = self.loaded() + self.computed();
        if touched == 0 {
            return 0.0;
        }
        self.loaded() as f64 / touched as f64
    }

    /// Number of scheduler waves the iteration executed in — the depth of
    /// the plan's dependency-level decomposition.
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }

    /// Wall-clock seconds spent executing nodes, summed over waves (the
    /// parallel analogue of summing node durations).
    pub fn exec_secs(&self) -> f64 {
        self.waves.iter().map(|w| w.secs).sum()
    }

    /// Value of a named metric, if an Evaluate node produced it.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(m, _)| m == name)
            .map(|(_, v)| *v)
    }

    /// Seconds attributed to a given workflow stage.
    pub fn stage_secs(&self, stage: Stage) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.stage == stage)
            .map(|n| n.duration_secs)
            .sum()
    }

    /// One-line summary for logs and the demo UI.
    pub fn summary(&self) -> String {
        format!(
            "iter {} [{}]: {:.3}s total ({} loaded, {} computed, {} pruned, reuse {:.0}%)",
            self.iteration,
            self.workflow_name,
            self.total_secs,
            self.loaded(),
            self.computed(),
            self.pruned(),
            self.reuse_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, state: NodeState, secs: f64, stage: Stage) -> NodeReport {
        NodeReport {
            name: name.into(),
            stage,
            state,
            change: ChangeKind::Unchanged,
            duration_secs: secs,
            output_bytes: 0,
            materialized: false,
        }
    }

    fn report() -> IterationReport {
        IterationReport {
            iteration: 3,
            workflow_name: "census".into(),
            total_secs: 1.5,
            optimizer_secs: 0.01,
            materialize_secs: 0.2,
            nodes: vec![
                node("a", NodeState::Load, 0.1, Stage::DataPreProcessing),
                node("b", NodeState::Compute, 1.0, Stage::MachineLearning),
                node("c", NodeState::Prune, 0.0, Stage::DataPreProcessing),
                node("d", NodeState::Compute, 0.4, Stage::Evaluation),
            ],
            waves: vec![
                WaveReport {
                    nodes: 1,
                    secs: 0.1,
                },
                WaveReport {
                    nodes: 1,
                    secs: 1.0,
                },
                WaveReport {
                    nodes: 1,
                    secs: 0.4,
                },
            ],
            metrics: vec![("accuracy".into(), 0.83)],
        }
    }

    #[test]
    fn counts_and_reuse() {
        let r = report();
        assert_eq!(r.loaded(), 1);
        assert_eq!(r.computed(), 2);
        assert_eq!(r.pruned(), 1);
        assert!((r.reuse_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn metric_lookup() {
        let r = report();
        assert_eq!(r.metric("accuracy"), Some(0.83));
        assert_eq!(r.metric("f1"), None);
    }

    #[test]
    fn stage_attribution() {
        let r = report();
        assert!((r.stage_secs(Stage::DataPreProcessing) - 0.1).abs() < 1e-12);
        assert!((r.stage_secs(Stage::MachineLearning) - 1.0).abs() < 1e-12);
        assert!((r.stage_secs(Stage::Evaluation) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_counts() {
        let s = report().summary();
        assert!(s.contains("1 loaded"));
        assert!(s.contains("2 computed"));
        assert!(s.contains("census"));
    }

    #[test]
    fn empty_report_reuse_rate_is_zero() {
        let r = IterationReport {
            iteration: 0,
            workflow_name: "x".into(),
            total_secs: 0.0,
            optimizer_secs: 0.0,
            materialize_secs: 0.0,
            nodes: vec![],
            waves: vec![],
            metrics: vec![],
        };
        assert_eq!(r.reuse_rate(), 0.0);
        assert_eq!(r.wave_count(), 0);
        assert_eq!(r.exec_secs(), 0.0);
    }

    #[test]
    fn wave_aggregation() {
        let r = report();
        assert_eq!(r.wave_count(), 3);
        assert!((r.exec_secs() - 1.5).abs() < 1e-12);
    }
}
