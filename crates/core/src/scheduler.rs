//! Wave-scheduled parallel plan execution.
//!
//! The compiled plan's topological `order` hides abundant inter-operator
//! parallelism: Census fans one scan out into several extractors, and the
//! IE pipeline runs five independent feature UDFs over the same candidate
//! set. This module partitions the non-pruned nodes into *waves*
//! ([`crate::recompute::wave_levels`]): all loads plus computes whose
//! parents are satisfied form wave 0, their dependents wave 1, and so on.
//! Nodes within a wave are mutually independent and execute concurrently
//! on a scoped worker pool capped at [`crate::EngineConfig::parallelism`]
//! threads.
//!
//! # Determinism
//!
//! Parallel execution must be observationally identical to sequential
//! execution — the paper's reuse correctness argument ("a materialized
//! result must equal its recomputation") extends to the scheduler. Raw
//! node execution (compute or load) is free of side effects, so waves may
//! run in any interleaving; everything stateful — cost-model observations,
//! the online materialization decision (which consults the evolving
//! storage budget), and metric harvesting — happens in the `merge`
//! callback, which this module invokes **strictly in plan order**: a
//! cursor walks `plan.order` and stalls at the first node whose raw result
//! is not yet available. The merged outcome stream is therefore identical
//! at any thread count, including 1.
//!
//! On a *failed* run, both paths surface the plan-order-earliest failure
//! and commit merges only for nodes preceding it in plan order. The
//! sequential path additionally executes (and may materialize)
//! later-wave nodes that sit before the failing node in plan order —
//! work a parallel run never starts — so post-failure store contents are
//! identical only up to that best-effort prefix; successful runs are
//! always byte-identical.

use crate::compiler::CompiledPlan;
use crate::ops::NodeOutput;
use crate::recompute::{wave_levels, NodeState};
use crate::report::WaveReport;
use crate::store::IntermediateStore;
use crate::workflow::{NodeId, Workflow};
use crate::{HelixError, Result};
use helix_dataflow::par::panic_message;
use std::time::Instant;

/// How many worker threads the engine should use by default: the
/// `HELIX_PARALLELISM` environment variable when set to a positive
/// integer (the CI equivalence matrix forces `1` this way), otherwise the
/// machine's available parallelism.
pub fn default_parallelism() -> usize {
    std::env::var("HELIX_PARALLELISM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The raw, side-effect-free result of running one node.
#[derive(Debug)]
pub struct ExecutedNode {
    /// Wall-clock seconds spent computing or loading this node.
    pub secs: f64,
    /// `Some(bytes_read)` when the node was loaded from the store,
    /// `None` when it was computed.
    pub loaded_bytes: Option<u64>,
}

/// Everything [`execute_plan`] hands back to the engine.
#[derive(Debug)]
pub struct ExecutionResult {
    /// Node outputs by [`NodeId::index`] (`None` for pruned nodes).
    pub outputs: Vec<Option<NodeOutput>>,
    /// Per-wave timings, in wave order (landed verbatim in
    /// [`crate::report::IterationReport::waves`]).
    pub waves: Vec<WaveReport>,
}

/// Raw per-node result held until the merge cursor reaches it.
struct RawResult {
    output: NodeOutput,
    executed: ExecutedNode,
}

/// Executes a compiled plan, invoking `merge` once per non-pruned node in
/// plan order with the node's raw result.
///
/// The merge callback owns every stateful step (cost observation,
/// materialization, metric harvesting); see the module docs for why that
/// split makes parallel execution deterministic. `parallelism = 1` runs
/// the classic sequential loop: each node executes and merges before the
/// next starts.
///
/// # Errors
/// Propagates node execution failures (the plan-order-earliest failure
/// when several nodes of one wave fail) and merge failures.
pub fn execute_plan<M>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    parallelism: usize,
    mut merge: M,
) -> Result<ExecutionResult>
where
    M: FnMut(NodeId, &ExecutedNode, &NodeOutput) -> Result<()>,
{
    let waves = build_waves(workflow, plan);
    if parallelism <= 1 {
        return execute_sequential(workflow, plan, store, &waves, merge);
    }

    let n = workflow.len();
    let mut outputs: Vec<Option<NodeOutput>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<Option<RawResult>> = (0..n).map(|_| None).collect();
    let mut wave_stats = Vec::with_capacity(waves.len());
    let mut cursor = 0usize;

    for wave in &waves {
        let started = Instant::now();
        let results = run_wave(workflow, plan, store, &outputs, &pending, wave, parallelism);
        wave_stats.push(WaveReport {
            nodes: wave.len(),
            secs: started.elapsed().as_secs_f64(),
        });
        // Surface the plan-order-earliest failure so error behavior does
        // not depend on thread interleaving.
        let mut failure: Option<(usize, HelixError)> = None;
        for (i, result) in results {
            match result {
                Ok(raw) => pending[i] = Some(raw),
                Err(err) => {
                    let pos = plan_position(plan, i);
                    if failure.as_ref().is_none_or(|(p, _)| pos < *p) {
                        failure = Some((pos, err));
                    }
                }
            }
        }

        // Drain the merge cursor as far as results allow — on failure,
        // only up to the failing node's plan position, so side effects
        // (materializations, cost observations) match what the
        // sequential path commits before erroring at that same node.
        let limit = failure
            .as_ref()
            .map_or(plan.order.len(), |(pos, _)| (*pos).min(plan.order.len()));
        while cursor < limit {
            let id = plan.order[cursor];
            let i = id.index();
            if plan.states[i] == NodeState::Prune {
                cursor += 1;
                continue;
            }
            let Some(raw) = pending[i].take() else { break };
            merge(id, &raw.executed, &raw.output)?;
            outputs[i] = Some(raw.output);
            cursor += 1;
        }
        if let Some((_, err)) = failure {
            return Err(err);
        }
    }
    debug_assert_eq!(cursor, plan.order.len(), "merge cursor left nodes behind");

    Ok(ExecutionResult {
        outputs,
        waves: wave_stats,
    })
}

/// Partitions the plan's non-pruned nodes into waves, preserving plan
/// order within each wave.
pub fn build_waves(workflow: &Workflow, plan: &CompiledPlan) -> Vec<Vec<NodeId>> {
    let levels = wave_levels(workflow, &plan.states);
    let n_waves = levels.iter().flatten().copied().max().map_or(0, |l| l + 1);
    let mut waves: Vec<Vec<NodeId>> = vec![Vec::new(); n_waves];
    for &id in &plan.order {
        if let Some(level) = levels[id.index()] {
            waves[level].push(id);
        }
    }
    waves
}

fn plan_position(plan: &CompiledPlan, index: usize) -> usize {
    plan.order
        .iter()
        .position(|id| id.index() == index)
        .unwrap_or(usize::MAX)
}

/// The sequential path: execute and merge one node at a time in plan
/// order — exactly the engine's historical iteration loop. Wave stats are
/// still reported (durations summed per wave) so reports keep one shape.
fn execute_sequential<M>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    waves: &[Vec<NodeId>],
    mut merge: M,
) -> Result<ExecutionResult>
where
    M: FnMut(NodeId, &ExecutedNode, &NodeOutput) -> Result<()>,
{
    let levels = wave_levels(workflow, &plan.states);
    let mut outputs: Vec<Option<NodeOutput>> = (0..workflow.len()).map(|_| None).collect();
    let mut wave_stats: Vec<WaveReport> = waves
        .iter()
        .map(|wave| WaveReport {
            nodes: wave.len(),
            secs: 0.0,
        })
        .collect();
    for &id in &plan.order {
        let i = id.index();
        if plan.states[i] == NodeState::Prune {
            continue;
        }
        let raw = run_node(workflow, plan, store, id, |p| outputs[p.index()].as_ref())?;
        if let Some(level) = levels[i] {
            wave_stats[level].secs += raw.executed.secs;
        }
        merge(id, &raw.executed, &raw.output)?;
        outputs[i] = Some(raw.output);
    }
    Ok(ExecutionResult {
        outputs,
        waves: wave_stats,
    })
}

/// Executes one wave's nodes on up to `parallelism` scoped threads,
/// returning `(node_index, result)` pairs in unspecified order.
fn run_wave(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    outputs: &[Option<NodeOutput>],
    pending: &[Option<RawResult>],
    wave: &[NodeId],
    parallelism: usize,
) -> Vec<(usize, Result<RawResult>)> {
    // Parent results live in `outputs` once merged, or in `pending` when
    // the merge cursor is stalled behind an unrelated slower node.
    let parent_output = |p: NodeId| -> Option<&NodeOutput> {
        outputs[p.index()]
            .as_ref()
            .or_else(|| pending[p.index()].as_ref().map(|raw| &raw.output))
    };

    let workers = parallelism.min(wave.len()).max(1);
    if workers <= 1 {
        return wave
            .iter()
            .map(|&id| {
                (
                    id.index(),
                    run_node(workflow, plan, store, id, parent_output),
                )
            })
            .collect();
    }

    // Round-robin assignment keeps neighbouring (often similar-cost)
    // nodes on different workers.
    let shares: Vec<Vec<NodeId>> = (0..workers)
        .map(|w| wave.iter().skip(w).step_by(workers).copied().collect())
        .collect();
    let mut results: Vec<(usize, Result<RawResult>)> = Vec::with_capacity(wave.len());
    let joined = crossbeam::scope(|scope| {
        let handles: Vec<_> = shares
            .iter()
            .map(|share| {
                let parent_output = &parent_output;
                scope.spawn(move |_| {
                    share
                        .iter()
                        .map(|&id| {
                            (
                                id.index(),
                                run_node(workflow, plan, store, id, parent_output),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut collected = Vec::with_capacity(wave.len());
        for handle in handles {
            match handle.join() {
                Ok(share_results) => collected.extend(share_results),
                Err(payload) => collected.push((
                    usize::MAX,
                    Err(HelixError::Exec(format!(
                        "scheduler worker panicked: {}",
                        panic_message(&payload)
                    ))),
                )),
            }
        }
        collected
    });
    match joined {
        Ok(collected) => results.extend(collected),
        Err(payload) => results.push((
            usize::MAX,
            Err(HelixError::Exec(format!(
                "scheduler scope panicked: {}",
                panic_message(&payload)
            ))),
        )),
    }
    results
}

/// Executes a single node (load or compute), timing it. A panicking
/// operator is converted to [`HelixError::Exec`] *here* — not at thread
/// joins — so a UDF panic produces the same error whether the node ran
/// inline, in a singleton wave, or fanned out across workers.
fn run_node<'a>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    id: NodeId,
    parent_output: impl Fn(NodeId) -> Option<&'a NodeOutput>,
) -> Result<RawResult> {
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_node_inner(workflow, plan, store, id, parent_output)
    }));
    unwound.unwrap_or_else(|payload| {
        Err(HelixError::Exec(format!(
            "node `{}` panicked: {}",
            workflow.node(id).name,
            panic_message(&payload)
        )))
    })
}

fn run_node_inner<'a>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    id: NodeId,
    parent_output: impl Fn(NodeId) -> Option<&'a NodeOutput>,
) -> Result<RawResult> {
    let i = id.index();
    match plan.states[i] {
        NodeState::Prune => Err(HelixError::Exec(format!(
            "pruned node `{}` scheduled (plan bug)",
            workflow.node(id).name
        ))),
        NodeState::Load => {
            let (output, bytes, secs) = store.get(plan.signatures[i])?;
            Ok(RawResult {
                output,
                executed: ExecutedNode {
                    secs,
                    loaded_bytes: Some(bytes),
                },
            })
        }
        NodeState::Compute => {
            let node = workflow.node(id);
            let mut parent_outputs: Vec<&NodeOutput> = Vec::with_capacity(node.parents.len());
            for parent in &node.parents {
                parent_outputs.push(parent_output(*parent).ok_or_else(|| {
                    HelixError::Exec(format!(
                        "parent `{}` of `{}` unavailable (plan bug)",
                        workflow.node(*parent).name,
                        node.name
                    ))
                })?);
            }
            let started = Instant::now();
            let output = crate::exec::execute(&node.kind, &node.name, &parent_outputs)?;
            Ok(RawResult {
                output,
                executed: ExecutedNode {
                    secs: started.elapsed().as_secs_f64(),
                    loaded_bytes: None,
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::cost::CostModel;
    use crate::ops::{OperatorKind, Udf};
    use crate::recompute::RecomputationPolicy;
    use crate::workflow::NodeRef;
    use helix_dataflow::{DataCollection, DataType, Row, Schema, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn tmp_store(tag: &str) -> IntermediateStore {
        let dir =
            std::env::temp_dir().join(format!("helix-scheduler-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        IntermediateStore::open(dir, 1 << 24).unwrap()
    }

    fn int_rows(values: &[i64]) -> DataCollection {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rows = values.iter().map(|&v| Row(vec![Value::Int(v)])).collect();
        DataCollection::from_rows_unchecked(schema, rows)
    }

    /// A deterministic UDF: sums all parent cells and appends `salt`.
    fn sum_udf(salt: i64) -> Udf {
        Udf::new(format!("sum:{salt}"), move |inputs| {
            let mut total = salt;
            for dc in inputs {
                for row in dc.rows() {
                    total += row.get(0).as_int().unwrap_or(0);
                }
            }
            Ok(int_rows(&[total]))
        })
    }

    /// Random-ish DAG: node i gets edges from the given pairs.
    fn dag(n: usize, edges: &[(usize, usize)], outputs: &[usize]) -> Workflow {
        let mut w = Workflow::new("sched-test");
        let mut refs: Vec<NodeRef> = Vec::new();
        for i in 0..n {
            let parents: Vec<&NodeRef> = edges
                .iter()
                .filter(|&&(_, dst)| dst == i)
                .map(|&(src, _)| &refs[src])
                .collect();
            let r = w
                .add(
                    format!("n{i}"),
                    OperatorKind::UserDefined(sum_udf(i as i64 + 1)),
                    &parents,
                )
                .unwrap();
            refs.push(r);
        }
        for &o in outputs {
            w.output(&refs[o]);
        }
        w
    }

    fn run(w: &Workflow, parallelism: usize) -> (ExecutionResult, Vec<NodeId>) {
        let store = tmp_store(&format!("run-{parallelism}-{}", w.len()));
        let cm = CostModel::new();
        let plan = compile(w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let mut merged = Vec::new();
        let result = execute_plan(w, &plan, &store, parallelism, |id, _, _| {
            merged.push(id);
            Ok(())
        })
        .unwrap();
        (result, merged)
    }

    #[test]
    fn parallel_outputs_match_sequential() {
        let w = dag(
            6,
            &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 5), (4, 5)],
            &[5],
        );
        let (seq, seq_merged) = run(&w, 1);
        let (par, par_merged) = run(&w, 4);
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq_merged, par_merged, "merge order must be plan order");
    }

    #[test]
    fn merge_order_is_plan_order_even_when_waves_interleave() {
        // 0 -> 1 (output), 0 -> 2 -> 3 (output), with node 2 materialized
        // so it plans as a wave-0 Load. Plan order is [0, 1, 2, 3] but
        // waves are {0, 2}, {1, 3}: after wave 0 the cursor merges 0 and
        // stalls at the unexecuted 1, leaving 2 executed-but-unmerged —
        // wave 1's node 3 must read its parent 2 from the pending buffer,
        // and 2 still merges in plan position.
        let w = dag(4, &[(0, 1), (0, 2), (2, 3)], &[1, 3]);
        let store = tmp_store("interleave");
        let mut cm = CostModel::new();
        for node in w.nodes() {
            cm.observe_compute(&node.name, 1.0);
        }
        let sigs = crate::signature::compute_signatures(&w).unwrap();
        // Node 2's recorded output: salt 3 + parent 0's output (salt 1).
        store
            .put(sigs[2], &NodeOutput::Data(int_rows(&[4])))
            .unwrap();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        assert_eq!(plan.order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(plan.states[2], NodeState::Load);
        let waves = build_waves(&w, &plan);
        assert_eq!(waves[0], vec![NodeId(0), NodeId(2)]);
        assert_eq!(waves[1], vec![NodeId(1), NodeId(3)]);
        let mut merged = Vec::new();
        let result = execute_plan(&w, &plan, &store, 4, |id, _, _| {
            merged.push(id);
            Ok(())
        })
        .unwrap();
        assert_eq!(merged, plan.order, "merge must follow plan order");
        // Node 3 = salt 4 + loaded parent value 4.
        assert_eq!(result.outputs[3], Some(NodeOutput::Data(int_rows(&[8]))));
    }

    #[test]
    fn waves_partition_all_unpruned_nodes() {
        let w = dag(5, &[(0, 1), (0, 2), (1, 3), (2, 3)], &[3, 4]);
        let store = tmp_store("waves");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let waves = build_waves(&w, &plan);
        let total: usize = waves.iter().map(Vec::len).sum();
        assert_eq!(total, plan.compute_count() + plan.load_count());
        // Wave 0 holds both roots (0 and the independent 4).
        assert_eq!(waves[0], vec![NodeId(0), NodeId(4)]);
    }

    #[test]
    fn worker_errors_surface_deterministically() {
        let mut w = Workflow::new("err");
        let root = w
            .add("root", OperatorKind::UserDefined(sum_udf(0)), &[])
            .unwrap();
        // Two failing siblings: the plan-order-earlier one must win
        // regardless of which thread finishes first.
        for tag in ["fail_a", "fail_b"] {
            let udf = Udf::new(
                format!("boom:{tag}"),
                move |_inputs: &[&DataCollection]| -> crate::Result<DataCollection> {
                    Err(HelixError::Exec(format!("{tag} failed")))
                },
            );
            let r = w
                .add(tag, OperatorKind::UserDefined(udf), &[&root])
                .unwrap();
            w.output(&r);
        }
        let store = tmp_store("err");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let mut merged_by_mode: Vec<Vec<NodeId>> = Vec::new();
        for parallelism in [1, 4] {
            let mut merged = Vec::new();
            let err = execute_plan(&w, &plan, &store, parallelism, |id, _, _| {
                merged.push(id);
                Ok(())
            })
            .expect_err("failing UDF must propagate");
            assert!(
                err.to_string().contains("fail_a failed"),
                "expected fail_a first at parallelism {parallelism}, got: {err}"
            );
            merged_by_mode.push(merged);
        }
        // Both modes commit the same plan-order prefix before erroring:
        // the successful root, nothing at or after the failing node.
        assert_eq!(merged_by_mode[0], merged_by_mode[1]);
        assert_eq!(merged_by_mode[0], vec![NodeId(0)]);
    }

    #[test]
    fn worker_panic_becomes_error() {
        let mut w = Workflow::new("panic");
        let root = w
            .add("root", OperatorKind::UserDefined(sum_udf(0)), &[])
            .unwrap();
        // Enough panicking siblings that the wave actually fans out.
        for i in 0..4 {
            let udf = Udf::new(
                format!("panic:{i}"),
                move |_inputs: &[&DataCollection]| -> crate::Result<DataCollection> {
                    panic!("kaboom {i}")
                },
            );
            let r = w
                .add(format!("p{i}"), OperatorKind::UserDefined(udf), &[&root])
                .unwrap();
            w.output(&r);
        }
        let store = tmp_store("panic");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let err = execute_plan(&w, &plan, &store, 4, |_, _, _| Ok(()))
            .expect_err("panicking UDF must become an error");
        assert!(err.to_string().contains("kaboom"), "got: {err}");
    }

    #[test]
    fn singleton_wave_and_sequential_panics_become_errors_too() {
        // A panicking node that sits alone in its wave (like every
        // learner/evaluate node) must yield the same Err at every thread
        // count — not unwind at parallelism 1 and Err at 4.
        let mut w = Workflow::new("panic-singleton");
        let root = w
            .add("root", OperatorKind::UserDefined(sum_udf(0)), &[])
            .unwrap();
        let udf = Udf::new(
            "panic:solo",
            move |_inputs: &[&DataCollection]| -> crate::Result<DataCollection> {
                panic!("solo kaboom")
            },
        );
        let r = w
            .add("solo", OperatorKind::UserDefined(udf), &[&root])
            .unwrap();
        w.output(&r);
        let store = tmp_store("panic-solo");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        for parallelism in [1, 4] {
            let err = execute_plan(&w, &plan, &store, parallelism, |_, _, _| Ok(()))
                .expect_err("panic must become an error at any thread count");
            assert!(
                err.to_string().contains("solo kaboom"),
                "parallelism {parallelism}: {err}"
            );
        }
    }

    #[test]
    fn parallelism_cap_limits_concurrency() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        LIVE.store(0, Ordering::SeqCst);
        PEAK.store(0, Ordering::SeqCst);
        let mut w = Workflow::new("cap");
        for i in 0..8 {
            let udf = Udf::new(format!("slow:{i}"), move |_inputs: &[&DataCollection]| {
                let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK.fetch_max(live, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(20));
                LIVE.fetch_sub(1, Ordering::SeqCst);
                Ok(int_rows(&[i]))
            });
            let r = w
                .add(format!("s{i}"), OperatorKind::UserDefined(udf), &[])
                .unwrap();
            w.output(&r);
        }
        let store = tmp_store("cap");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        execute_plan(&w, &plan, &store, 2, |_, _, _| Ok(())).unwrap();
        let peak = PEAK.load(Ordering::SeqCst);
        assert!(peak <= 2, "parallelism 2 must cap live workers, saw {peak}");
        assert!(peak >= 2, "wave of 8 should actually use both workers");
    }

    #[test]
    fn loads_execute_in_wave_zero() {
        // Materialize a mid-chain node, then recompile: the load must land
        // in wave 0 and downstream computes stack above it.
        let w = dag(3, &[(0, 1), (1, 2)], &[2]);
        let store = tmp_store("load");
        let mut cm = CostModel::new();
        for node in w.nodes() {
            cm.observe_compute(&node.name, 1.0);
        }
        let sigs = crate::signature::compute_signatures(&w).unwrap();
        store
            .put(sigs[1], &NodeOutput::Data(int_rows(&[42])))
            .unwrap();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        assert_eq!(plan.states[1], NodeState::Load);
        let waves = build_waves(&w, &plan);
        assert_eq!(waves[0], vec![NodeId(1)]);
        let result = execute_plan(&w, &plan, &store, 4, |_, _, _| Ok(())).unwrap();
        assert_eq!(result.outputs[1], Some(NodeOutput::Data(int_rows(&[42]))));
        assert_eq!(result.waves.len(), 2);
    }

    #[test]
    fn merge_failure_propagates() {
        let w = dag(2, &[(0, 1)], &[1]);
        let store = tmp_store("mergefail");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let err = execute_plan(&w, &plan, &store, 4, |_, _, _| {
            Err(HelixError::Exec("merge refused".into()))
        })
        .expect_err("merge error must propagate");
        assert!(err.to_string().contains("merge refused"));
    }

    #[test]
    fn wide_fanout_is_faster_with_threads() {
        // Smoke-level perf sanity (the real comparison lives in
        // benches/scheduler.rs): 6 independent 15 ms nodes at 6 threads
        // should beat 1 thread comfortably.
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 4 {
            return;
        }
        let build = || {
            let mut w = Workflow::new("fan");
            for i in 0..6 {
                let udf = Udf::new(
                    format!("sleep:{i}"),
                    move |_inputs: &[&DataCollection]| {
                        std::thread::sleep(std::time::Duration::from_millis(15));
                        Ok(int_rows(&[i]))
                    },
                );
                let r = w
                    .add(format!("f{i}"), OperatorKind::UserDefined(udf), &[])
                    .unwrap();
                w.output(&r);
            }
            w
        };
        let w = build();
        let store = tmp_store("fan");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let t1 = Instant::now();
        execute_plan(&w, &plan, &store, 1, |_, _, _| Ok(())).unwrap();
        let sequential = t1.elapsed();
        let t2 = Instant::now();
        execute_plan(&w, &plan, &store, 6, |_, _, _| Ok(())).unwrap();
        let parallel = t2.elapsed();
        assert!(
            parallel < sequential,
            "6-wide wave at 6 threads ({parallel:?}) should beat 1 thread ({sequential:?})"
        );
    }

    #[test]
    fn shared_udf_state_is_threadsafe() {
        // UDFs capturing shared state must see a consistent picture.
        let counter = Arc::new(AtomicUsize::new(0));
        let mut w = Workflow::new("shared");
        for i in 0..8 {
            let counter = Arc::clone(&counter);
            let udf = Udf::new(
                format!("count:{i}"),
                move |_inputs: &[&DataCollection]| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    Ok(int_rows(&[i]))
                },
            );
            let r = w
                .add(format!("c{i}"), OperatorKind::UserDefined(udf), &[])
                .unwrap();
            w.output(&r);
        }
        let store = tmp_store("shared");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        execute_plan(&w, &plan, &store, 4, |_, _, _| Ok(())).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }
}
